"""Batched PHY engine: one matrix pass per channel stage for a fleet window.

The committed 10-node profile pins ``link.node`` at ~0.50 of an uncached
transaction with CPU/wall ~0.99 — pure GIL-bound compute, which is why
the thread-pool fleet engine *loses* to cached-sequential on a single
core.  This module takes the other road ROADMAP open item 1 calls for:
instead of running N exchanges concurrently, it runs the fleet's
waveform work as stacked (N, samples) ndarray passes, then lets the
ordinary sequential rounds *replay* those results through the leg memo,
byte-for-byte.

Architecture — a predictive prepass, not a parallel executor
------------------------------------------------------------

:class:`BatchedLinkEngine.prewarm_round` runs before the reader's
sequential loop.  Once every ``window`` rounds it plans the coming
*window* of rounds in one shot:

* **Plan** (phase A): for each pollable address, dry-run the
  deterministic half of every exchange the node will run this window —
  power-up, query decode, command execution, reply framing — against
  the link's own node, snapshotting the node + noise RNG state first
  and restoring it after.  The dry run discovers exactly which leg-memo
  keys each live exchange will need (downlink envelope, carrier leg,
  uplink tail) and which are missing.  Planning a whole window is what
  defeats group fragmentation: a fleet's per-node analysis segments all
  have different lengths (different propagation delays), but the same
  node's segments across rounds are identical, so every batched stage
  below sees groups of ``window`` rows or more.
* **Batch** (phase B): compute every missing leg as grouped matrix
  kernels — stacked downlink envelopes through one band-pass/low-pass
  ``sosfiltfilt`` per group, one ``fftconvolve`` over an (N, samples)
  matrix per channel stage, one batched rfft/irfft for the re-radiation
  filters — and seed the per-link leg memos with the results.  Every
  batched primitive is bit-identical to its per-row form (asserted in
  ``tests/perf/test_batch.py``), so a seeded memo entry is
  indistinguishable from one the sequential path would have computed.
* **Demodulate** (phase B2): with the quiet mixtures known, draw each
  link's ambient noise from its own seeded stream — one segment per
  planned exchange, in round order, restoring the RNG afterwards so the
  live rounds still observe the exact same stream positions — run the
  fleet-wide demod front-end as batched downconvert + filter passes
  plus fleet-wide FM0 preamble correlations, finish each row's
  data-dependent decode tail, and stash the result as a *hint* keyed
  ``(uplink key, noise RNG token)`` on the link.
* **Over-provision for retries**: a retransmission rebuilds the node's
  reply and draws the next noise segment, so it consumes the *next*
  planned exchange's hint — reading stream and noise stream shift in
  lockstep — and the shortfall surfaces as uncovered exchanges at the
  window's end.  The planner therefore dry-runs a few surplus
  exchanges per node past the window, resized each replan from the
  hints the node actually left unconsumed, so a retrying fleet's tail
  stays covered by precomputed work.

The live sequential rounds then simply hit the seeded memos, and
``BackscatterLink._run_stages_cached`` consumes a hint only when the
exchange is about to draw the very noise samples the prepass drew.  Any
divergence — an injected fault, a MAC retry, a mid-round
reconfiguration, a checkpoint restore — misses the token and falls back
to inline computation, so digest identity is structural rather than
proven case-by-case: the engine can only ever *pre-compute* what the
sequential path was going to compute anyway, and a wrong prediction
costs speed, never bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.fft
from scipy.signal import fftconvolve, hilbert

from repro.core.link import BackscatterLink
from repro.dsp.filters import butter_bandpass, butter_lowpass, envelope_detect
from repro.dsp.sync import batched_preamble_correlation, correct_cfo, estimate_cfo
from repro.dsp.waveforms import downconvert
from repro.net.health import HealthState
from repro.net.messages import Command, Query
from repro.obs.probe import get_probes
from repro.obs.trace import get_tracer
from repro.perf.cache import cache_enabled


def resolve_link(transact, *, max_depth: int = 16) -> BackscatterLink | None:
    """The :class:`BackscatterLink` behind a transport callable, if any.

    Mirrors the duck typing of :mod:`repro.resilience.snapshot`: bound
    methods resolve through ``__self__``, fault-injector chains through
    their ``inner`` link.  ``None`` for test doubles and other
    transports with no waveform link behind them — the prepass then
    leaves that node entirely to the sequential path.
    """
    obj = transact
    for _ in range(max_depth):
        target = getattr(obj, "__self__", obj)
        if isinstance(target, BackscatterLink):
            return target
        obj = getattr(target, "inner", None)
        if obj is None:
            return None
    return None


@dataclass
class _NodePlan:
    """What the dry run learned about one upcoming exchange."""

    addr: int
    link: BackscatterLink
    query: Query
    round_offset: int                   # rounds ahead of the live round
    chips: np.ndarray | None = None
    bitrate: float | None = None
    mode: int | None = None
    uplink_format: object = None
    uplink_key: tuple | None = None
    carrier_key: tuple | None = None
    carrier_missing: bool = False
    uplink_missing: bool = False
    # Phase B scratch:
    leg: tuple | None = None
    mixture: np.ndarray | None = None
    analysis_start: int = 0


@dataclass
class _DemodRow:
    """One noise draw + recording headed for the batched demodulator.

    ``token``/``after`` bracket the noise stream position the row
    mirrors; ``demod`` is filled in by :meth:`_demod_rows` (``None``
    until then, and left ``None`` when the front-end refuses the row).
    """

    plan: _NodePlan
    dem: object
    seg: np.ndarray
    token: object
    after: dict
    demod: object = None


@dataclass
class _NodeWindow:
    """One node's dry-run through the window's rounds.

    ``queries[k]`` is the query the node is predicted to receive in
    round ``k`` of the window, or ``None`` when the live round will skip
    the node entirely (quarantine backoff).  ``snapshot`` is held while
    the dry run is paused waiting for its batched downlink envelope.
    """

    addr: int
    link: BackscatterLink
    queries: list
    snapshot: dict | None = None
    next_round: int = 0
    env_key: tuple | None = None
    env_band: tuple | None = None
    env_query: Query | None = None
    plans: list = field(default_factory=list)


@dataclass
class BatchStats:
    """Counters for ``repro profile`` / bench attribution."""

    windows: int = 0
    rounds: int = 0
    planned: int = 0
    env_batched: int = 0
    carriers_batched: int = 0
    tails_batched: int = 0
    tails_inline: int = 0
    demods_precomputed: int = 0
    demods_carried: int = 0
    retries_planned: int = 0
    groups: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "windows": self.windows,
            "rounds": self.rounds,
            "planned": self.planned,
            "env_batched": self.env_batched,
            "carriers_batched": self.carriers_batched,
            "tails_batched": self.tails_batched,
            "tails_inline": self.tails_inline,
            "demods_precomputed": self.demods_precomputed,
            "demods_carried": self.demods_carried,
            "retries_planned": self.retries_planned,
            "groups": dict(self.groups),
        }


def _restore_keeping_hints(link, snapshot: dict) -> None:
    """Rewind a dry-run mutation without dropping the link's hints.

    ``BackscatterLink.restore_state`` clears pending batch hints —
    right for checkpoint restores, which replace the timeline — but
    the dry run rewinds to the very state the hints were computed
    against, so here they stay (unconsumed ones roll over to the next
    window's plans).
    """
    hints = link._batch_hints
    link._batch_hints = {}  # restore_state clears its dict in place
    link.restore_state(snapshot)
    link._batch_hints = hints


def _grouped(items, key):
    """``{key(item): [items...]}`` preserving first-seen group order."""
    out: dict = {}
    for item in items:
        out.setdefault(key(item), []).append(item)
    return out


class BatchedLinkEngine:
    """Fleet-wide batched prepass for a :class:`ReaderController` campaign.

    Construct with the owning reader; call :meth:`prewarm_round` at the
    top of each sequential round.  Every ``window`` rounds the engine
    replans; in between it returns immediately (the hints for those
    rounds are already stashed).  The engine holds no campaign state
    beyond the replan countdown — hints and memos live on the links —
    so checkpoints and resumes need only :meth:`reset_window`.
    """

    #: Rounds planned per prepass.  Larger windows amortise the plan and
    #: build bigger matrix groups but waste more precompute when the
    #: campaign diverges (faults, retries, reconfigurations) mid-window.
    window: int = 8

    #: First-window surplus exchanges per node (see ``_retry_surplus``).
    initial_surplus: int = 2
    #: Upper bound on the per-node adaptive surplus.
    max_surplus: int = 12

    def __init__(self, reader) -> None:
        self.reader = reader
        self.stats = BatchStats()
        self._links: dict | None = None
        self._hinted_rounds = 0
        self._window_rounds = 0
        # Per-address retry over-provisioning: how many exchanges past
        # the window to plan, and how many rows the last window planned
        # (to tell "consumed everything" from "never planned").
        self._surplus: dict[int, int] = {}
        self._last_rows: dict[int, int] = {}

    # -- discovery -----------------------------------------------------------------

    def links(self) -> dict:
        """``{address: BackscatterLink}`` for resolvable transports."""
        if self._links is None:
            self._links = {}
            for addr, mac in self.reader._macs.items():
                link = resolve_link(mac.transact)
                if link is not None:
                    self._links[int(addr)] = link
        return self._links

    def reset_window(self) -> None:
        """Force a replan on the next round (after a checkpoint restore)."""
        self._hinted_rounds = 0

    def _adapt_surplus(self, links: dict) -> None:
        '''Resize each node's retry over-provisioning from last window.

        Zero leftover hints means every planned exchange (surplus
        included) was consumed — the node likely ran short and fell
        back inline, so the surplus grows.  More than one leftover
        means the window over-planned; the surplus shrinks by the
        excess.  Exactly one leftover is treated as on-target (the
        common steady state: surplus matched the retries plus the
        usual end-of-window remainder).  A wrong size is never a
        correctness matter — too small falls back inline, too large
        wastes prepass compute on hints that age out at the replan.
        '''
        for addr, planned in self._last_rows.items():
            link = links.get(addr)
            if link is None or planned <= 0:
                continue
            left = len(link._batch_hints)
            surplus = self._surplus.get(addr, self.initial_surplus)
            if left == 0:
                surplus = min(surplus + 2, self.max_surplus)
            elif left > 1:
                surplus = max(surplus - (left - 1), 0)
            self._surplus[addr] = surplus
        self._last_rows = {}

    # -- the prepass ---------------------------------------------------------------

    def prewarm_round(self, command: Command, remaining: int | None = None) -> int:
        """Precompute the coming window's legs and demods.

        Returns the number of exchanges planned (0 on the in-window
        rounds that were already hinted).  Safe to call unconditionally:
        bails out whenever the sequential path would not use the leg
        memo — caching disabled, tracing or probing enabled — because
        then there is nothing byte-identical to seed.  ``remaining``
        caps the window at the campaign rounds actually left.
        """
        if not cache_enabled() or get_tracer().enabled or get_probes().enabled:
            return 0
        if self._hinted_rounds > 0:
            self._hinted_rounds -= 1
            return 0
        links = self.links()
        self._adapt_surplus(links)
        window = self.window
        if remaining is not None:
            window = max(1, min(window, int(remaining)))
        self._window_rounds = window
        windows = self._plan_windows(command, links, window)
        self._hinted_rounds = window - 1
        if not windows:
            return 0
        self.stats.windows += 1
        self.stats.rounds += window
        pending = [w for w in windows if w.snapshot is not None]
        if pending:
            try:
                self._batch_downlink_envelopes(pending)
            finally:
                for w in pending:
                    if w.env_key is not None and w.env_key in w.link._leg_memo:
                        w.env_key = None
                        self._advance_window(w)
                    if w.snapshot is not None:
                        # Envelope never materialised (or the dry run
                        # paused twice): abandon this node's remaining
                        # rounds rather than leave it frozen mid-window.
                        _restore_keeping_hints(w.link, w.snapshot)
                        w.snapshot = None
        plans = [p for w in windows for p in w.plans]
        self.stats.planned += len(plans)
        if not plans:
            return 0
        self._batch_carrier_legs([p for p in plans if p.carrier_missing])
        self._batch_uplink_tails(plans)
        self._batch_demodulations(plans)
        return len(plans)

    # -- phase A: planning ----------------------------------------------------------

    def _plan_windows(self, command: Command, links: dict, window: int) -> list:
        """Dry-run every node's window of exchanges.

        Membership and per-round commands are predicted from the
        reader's *current* health state: quarantined nodes get a PING in
        the rounds where their probe backoff will have elapsed, healthy
        nodes get the campaign command every round.  Nodes the prepass
        cannot predict — shard-quarantined, pending bitrate downgrades
        (which splice an extra SET_BITRATE exchange in front of the
        sensing poll), ledgered firmware, unresolvable transports — are
        skipped; the sequential path computes them inline exactly as
        before.  A prediction the campaign later contradicts (a node
        fails mid-window, a probe succeeds) only wastes the stale hints.
        """
        reader = self.reader
        t = float(reader._round)
        windows: list[_NodeWindow] = []
        for addr in sorted(reader._macs):
            if addr in reader._quarantined_shards:
                continue
            record = reader.nodes[addr]
            health = record.health
            if (
                record.pending_downgrade
                and health.state is HealthState.DEGRADED
            ):
                continue
            link = links.get(addr)
            if link is None or link.node.firmware.ledger is not None:
                continue
            if health.state is HealthState.QUARANTINED:
                queries = [
                    Query(destination=addr, command=Command.PING)
                    if health.due_for_probe(t + k)
                    else None
                    for k in range(window)
                ]
            else:
                # Over-provision for retries: a retransmission rebuilds
                # the node's reply and draws the next noise segment, so
                # it consumes the *next* planned exchange's hint — the
                # whole window shifts left and the shortfall surfaces
                # as uncovered exchanges at the end.  Planning a few
                # exchanges past the window keeps a retrying node's
                # tail covered; the surplus is resized per node from
                # the leftovers the last window did not consume.
                surplus = self._surplus.get(addr, self.initial_surplus)
                queries = [
                    Query(destination=addr, command=command)
                ] * (window + surplus)
            if not any(q is not None for q in queries):
                continue
            w = _NodeWindow(addr=addr, link=link, queries=queries)
            self._advance_window(w)
            if w.plans or w.snapshot is not None:
                windows.append(w)
        return windows

    def _advance_window(self, w: _NodeWindow) -> None:
        """Dry-run ``w`` forward; restore the node unless paused.

        Pauses (keeping the snapshot held) when a round needs a downlink
        envelope that is not memoized yet — the caller batch-computes it
        and calls again.  Any other exit restores the held snapshot,
        even on an unexpected error: a half-mutated node would corrupt
        the live rounds, whereas a lost prediction only costs speed.
        """
        link = w.link
        if w.snapshot is None:
            w.snapshot = link.snapshot_state()
        paused = False
        try:
            paused = self._dry_run_rounds(w)
        finally:
            if not paused and w.snapshot is not None:
                _restore_keeping_hints(link, w.snapshot)
                w.snapshot = None

    def _dry_run_rounds(self, w: _NodeWindow) -> bool:
        """Run ``w``'s remaining rounds; True when paused for an envelope.

        Replicates, in order, every node-state mutation the live
        exchange makes before its uplink — ``try_power_up``, query
        decode, ``respond`` (which advances the sensor ADC RNGs), and
        ``response_sent`` — so round *k*'s predicted chips come from
        exactly the node state the live round *k* will see.
        """
        link = w.link
        memo = link._leg_memo
        node = link.node
        fs = link.sample_rate
        while w.next_round < len(w.queries):
            k = w.next_round
            query = w.queries[k]
            if query is None:
                w.next_round += 1
                continue
            mode = node.firmware.config.resonance_mode
            bitrate = node.bitrate
            budget = memo.get_or_compute(("budget", mode, bitrate), link.budget)
            powered = node.try_power_up(
                budget.incident_pressure_pa, link.projector.carrier_hz
            )
            if not powered:
                w.next_round += 1
                continue
            env_key = ("downlink", query, mode)
            if env_key not in memo:
                if w.env_key is not None:
                    # Second distinct envelope in one window — the
                    # single envelope batch has already run.  Abandon
                    # the remaining rounds (they run inline).
                    return False
                lo, hi = link._node_band()
                w.env_key = env_key
                w.env_band = (max(lo, 1.0), min(hi, fs / 2.0 - 1.0))
                w.env_query = query
                return True
            env = memo.get_or_compute(env_key, lambda: None)
            decode_key = ("downlink_decode", query, mode)
            if decode_key in memo:
                decoded = memo.get_or_compute(decode_key, lambda: None)
            else:
                decoded = node.receive_query(env, fs)
                memo.put(decode_key, decoded)
            if decoded is None:
                w.next_round += 1
                continue
            response = node.respond(decoded)
            if response is None:
                w.next_round += 1
                continue
            chips = node.uplink_chips(response)
            node.firmware.response_sent()
            bitrate = node.bitrate
            mode = node.firmware.config.resonance_mode
            plan = _NodePlan(
                addr=w.addr, link=link, query=query, round_offset=k,
                chips=chips, bitrate=bitrate, mode=mode,
                uplink_format=node.firmware.config.uplink_format,
            )
            plan.uplink_key = (
                "uplink", query, chips.tobytes(), bitrate, mode
            )
            plan.carrier_key = ("carrier", query, len(chips), bitrate)
            plan.uplink_missing = plan.uplink_key not in memo and not any(
                p.uplink_key == plan.uplink_key for p in w.plans
            )
            plan.carrier_missing = (
                plan.uplink_missing
                and plan.carrier_key not in memo
                and not any(
                    p.carrier_key == plan.carrier_key for p in w.plans
                )
            )
            w.plans.append(plan)
            w.next_round += 1
        return False

    # -- phase B: batched legs ------------------------------------------------------

    def _batch_downlink_envelopes(self, pending: list) -> None:
        """Stacked envelope detection for every missing downlink leg.

        Per group of equal-shape rows this is one (N, samples) channel
        convolution, one band-pass, one rectify + low-pass — each
        bit-identical to the sequential per-row computation (the
        convolution is the very ``fftconvolve`` the channel applies,
        handed the stacked matrix with ``axes=-1``).
        """
        rows = []
        for w in pending:
            link = w.link
            qw = link.projector.query_waveform(w.env_query, link.sample_rate)
            ir = link.ch_projector_node._impulse
            rows.append((w, qw, ir))
        groups = _grouped(
            rows,
            lambda r: (
                len(r[1]), len(r[2]), r[0].env_band,
                r[0].link.projector.carrier_hz, r[0].link.sample_rate,
            ),
        )
        self.stats.groups["downlink_env"] = (
            self.stats.groups.get("downlink_env", 0) + len(groups)
        )
        for (n, m, (lo, hi), f, fs), group in groups.items():
            tx = np.stack([qw for _w, qw, _ir in group])
            irs = np.stack([ir for _w, _qw, ir in group])
            gains = np.array(
                [w.link.beam_gain_node for w, _qw, _ir in group]
            )
            incident = gains[:, None] * fftconvolve(tx, irs, axes=-1)
            selective = butter_bandpass(incident, lo, hi, fs, order=2)
            envs = envelope_detect(selective, f, fs)
            for (w, _qw, _ir), env in zip(group, envs):
                w.link._leg_memo.put(w.env_key, env)
                self.stats.env_batched += 1

    def _batch_carrier_legs(self, plans: list) -> None:
        """Batched transmit-side legs: incident and direct channel stages.

        The projector waveform and the analytic (Hilbert) transform stay
        per-row — the hilbert transform gains nothing from stacking on
        one core — but both propagation convolutions run as one
        (N, samples) ``fftconvolve`` per equal-shape group, exactly as
        :meth:`BackscatterLink._carrier_leg` computes them row by row.
        """
        if not plans:
            return
        rows = []
        for plan in plans:
            link = plan.link
            fs = link.sample_rate
            chip_rate = 2.0 * plan.bitrate
            uplink_s = len(plan.chips) / chip_rate + link.UPLINK_MARGIN_S
            tx, uplink_start = link.projector.query_then_carrier(
                plan.query, uplink_s, fs
            )
            rows.append((plan, tx, uplink_start))
        groups = _grouped(
            rows,
            lambda r: (
                len(r[1]),
                len(r[0].link.ch_projector_node._impulse),
                len(r[0].link.ch_projector_hydrophone._impulse),
            ),
        )
        self.stats.groups["carrier"] = (
            self.stats.groups.get("carrier", 0) + len(groups)
        )
        for group in groups.values():
            tx_stack = np.stack([tx for _plan, tx, _s in group])
            ir_pn = np.stack(
                [p.link.ch_projector_node._impulse for p, _tx, _s in group]
            )
            ir_ph = np.stack(
                [
                    p.link.ch_projector_hydrophone._impulse
                    for p, _tx, _s in group
                ]
            )
            g_node = np.array(
                [p.link.beam_gain_node for p, _tx, _s in group]
            )
            g_hyd = np.array(
                [p.link.beam_gain_hydrophone for p, _tx, _s in group]
            )
            incidents = g_node[:, None] * fftconvolve(tx_stack, ir_pn, axes=-1)
            directs = g_hyd[:, None] * fftconvolve(tx_stack, ir_ph, axes=-1)
            for (plan, _tx, uplink_start), incident, direct in zip(
                group, incidents, directs
            ):
                link = plan.link
                fs = link.sample_rate
                delay_pn = int(
                    round(link.ch_projector_node.direct_path.delay_s * fs)
                )
                reply_start = (
                    uplink_start + delay_pn
                    + int(link.UPLINK_MARGIN_S / 2 * fs)
                )
                analytic = hilbert(np.asarray(incident, dtype=float))
                delay_ph = int(
                    round(
                        link.ch_projector_hydrophone.direct_path.delay_s * fs
                    )
                )
                analysis_start = (
                    uplink_start + delay_ph
                    + int(0.3 * link.UPLINK_MARGIN_S * fs)
                )
                link._leg_memo.put(
                    plan.carrier_key,
                    (analytic, direct, reply_start, analysis_start),
                )
                self.stats.carriers_batched += 1

    def _batch_uplink_tails(self, plans: list) -> None:
        """Chip-dependent tails: batched re-radiation + uplink channel.

        The re-radiation filter is the tail's dominant cost — its
        length is typically a *prime* sample count, so pocketfft runs a
        Bluestein transform an order of magnitude slower than a
        composite length — and the batching sweet spot: one stacked
        rfft, a per-row response multiply, one stacked irfft per
        equal-length group.  Rows of a drifting (Doppler) link fall
        back to the link's own per-row tail, and every plan ends
        holding its quiet mixture for the demod prepass.
        """
        tails, seen_inline = [], []
        for plan in plans:
            link = plan.link
            memo = link._leg_memo
            plan.leg = memo.get_or_compute(
                plan.carrier_key,
                lambda plan=plan: plan.link._carrier_leg(
                    plan.query, len(plan.chips), plan.bitrate
                ),
            )
            if not plan.uplink_missing:
                # Already memoized, or queued behind an identical plan
                # earlier in the window: resolved after the batch below.
                seen_inline.append(plan)
            elif link.node_velocity_mps:
                mixture, start = memo.get_or_compute(
                    plan.uplink_key,
                    lambda plan=plan: plan.link._finish_uplink_leg(
                        plan.leg, plan.chips, plan.bitrate
                    ),
                )
                plan.mixture, plan.analysis_start = mixture, start
                self.stats.tails_inline += 1
            else:
                tails.append(plan)
        if tails:
            groups = _grouped(
                tails,
                lambda p: (
                    len(p.leg[0]), len(p.link.ch_node_hydrophone._impulse)
                ),
            )
            self.stats.groups["uplink_tail"] = (
                self.stats.groups.get("uplink_tail", 0) + len(groups)
            )
            for (n, _m), group in groups.items():
                reflected = np.stack(
                    [
                        np.real(
                            p.link._gamma_trajectory(
                                n, p.chips, p.leg[2], p.bitrate
                            )
                            * p.leg[0]
                        )
                        for p in group
                    ]
                )
                responses = np.stack(
                    [p.link._reradiation_response(n) for p in group]
                )
                spectra = scipy.fft.rfft(reflected, axis=-1)
                filtered = scipy.fft.irfft(spectra * responses, n=n, axis=-1)
                ir_nh = np.stack(
                    [p.link.ch_node_hydrophone._impulse for p in group]
                )
                uplinks = fftconvolve(filtered, ir_nh, axes=-1)
                for plan, uplink in zip(group, uplinks):
                    direct = plan.leg[1]
                    total = max(len(direct), len(uplink))
                    mixture = np.zeros(total)
                    mixture[: len(direct)] += direct
                    mixture[: len(uplink)] += uplink
                    plan.link._leg_memo.put(
                        plan.uplink_key, (mixture, plan.leg[3])
                    )
                    plan.mixture = mixture
                    plan.analysis_start = plan.leg[3]
                    self.stats.tails_batched += 1
        for plan in seen_inline:
            mixture, start = plan.link._leg_memo.get_or_compute(
                plan.uplink_key,
                lambda plan=plan: plan.link._finish_uplink_leg(
                    plan.leg, plan.chips, plan.bitrate
                ),
            )
            plan.mixture, plan.analysis_start = mixture, start

    # -- phase B2: batched demodulation ----------------------------------------------


    # -- phase B2: batched demodulation ----------------------------------------------

    def _batch_demodulations(self, plans: list) -> None:
        """Precompute each exchange's decode against its known noise.

        Each link's ambient noise is drawn from its own seeded stream,
        one segment per planned exchange *in round order* (the stream is
        snapshotted before the first draw and restored after the last,
        so the live rounds see an untouched stream that will replay the
        very same positions).  The rows then run through
        :meth:`_demod_rows` — the batched demod front-end plus the
        per-row decode tail.  Surplus rows (round offsets past the live
        window) cover the retransmissions the MAC is predicted to
        issue; per-node leftovers recorded here feed the surplus
        controller at the next replan.
        """
        rows: list[_DemodRow] = []
        by_link = _grouped(plans, lambda p: id(p.link))
        for link_plans in by_link.values():
            link = link_plans[0].link
            fs = link.sample_rate
            before_all = link.noise.snapshot_state()
            # The previous window's unconsumed hints are not stale:
            # a leftover at stream position p is exactly the decode
            # this window's plan at position p would recompute (same
            # key, same token — else it simply won't match).  Swap in
            # a fresh dict and copy carried entries across, so valid
            # work rolls over and everything else ages out here.
            carried = link._batch_hints
            link._batch_hints = {}
            mine: list[_DemodRow] = []
            planned = 0
            try:
                for plan in link_plans:
                    if plan.mixture is None:
                        # No mixture means no live noise draw to mirror;
                        # later rounds' stream positions are unknowable.
                        break
                    token = link._noise_token()
                    planned += 1
                    hint = carried.get((plan.uplink_key, token))
                    if hint is not None:
                        link._batch_hints[(plan.uplink_key, token)] = hint
                        link.noise.restore_state(hint[0])
                        self.stats.demods_carried += 1
                        continue
                    # The stream must advance by the full recording
                    # length (live draws the whole mixture), but only
                    # the analysis tail is ever demodulated — and
                    # record() is elementwise, so slicing first is
                    # bit-identical.
                    noise = link.noise.generate(len(plan.mixture), fs)
                    after = link.noise.snapshot_state()
                    start = plan.analysis_start
                    seg = link.hydrophone.record(
                        plan.mixture[start:] + noise[start:]
                    )
                    dem = link.hydrophone.demodulator(
                        link.projector.carrier_hz,
                        plan.bitrate,
                        packet_format=plan.uplink_format,
                        detection_threshold=link.DETECTION_THRESHOLD,
                    )
                    mine.append(_DemodRow(plan, dem, seg, token, after))
            finally:
                link.noise.restore_state(before_all)
            if planned:
                self._last_rows[link_plans[0].addr] = planned
                self.stats.retries_planned += sum(
                    1
                    for plan in link_plans[:planned]
                    if plan.round_offset >= self._window_rounds
                )
            rows.extend(mine)
        self._demod_rows(rows)

    def _demod_rows(self, rows: list) -> None:
        """Demodulate a batch of rows and stash the results as hints.

        The demod front-end runs as one batched downconvert + low-pass
        per group — window planning guarantees each node contributes
        one equal-length row per round, so groups are ``window`` rows
        or more — the preamble search as one fleet-wide FM0 matrix
        correlation, and the data-dependent decode tail per row.
        Results are stashed as hints keyed ``(uplink key, noise
        token)``; the live exchange consumes a hint only when both
        match, and then advances its RNG to exactly where drawing the
        noise would have left it.
        """
        groups = _grouped(
            rows,
            lambda r: (
                len(r.seg), r.dem.carrier_hz, r.dem.bitrate,
                r.dem.sample_rate, r.dem.packet_format,
                r.dem.detection_threshold,
            ),
        )
        self.stats.groups["demod"] = (
            self.stats.groups.get("demod", 0) + len(groups)
        )
        for group in groups.values():
            dem = group[0].dem
            fs = dem.sample_rate
            segs = np.stack([row.seg for row in group])
            cutoff = min(
                max(2.5 * dem.chip_rate, 200.0), fs / 2.5
            )
            raw = butter_lowpass(
                downconvert(segs, dem.carrier_hz, fs), cutoff, fs
            )
            basebands = []
            modulations = []
            for row in raw:
                try:
                    cfo = estimate_cfo(row, fs)
                except ValueError:
                    # Sequential would raise here too — but only if the
                    # live exchange actually reaches the demod (a fault
                    # injector may fabricate first).  Leave the row to
                    # the live path rather than pre-raising.
                    basebands.append(None)
                    modulations.append(None)
                    continue
                baseband = correct_cfo(row, cfo, fs)
                basebands.append((baseband, cfo))
                modulations.append(dem.extract_modulation(baseband))
            good = [m for m in modulations if m is not None]
            corrs = iter(())
            if good:
                try:
                    corrs = iter(
                        batched_preamble_correlation(
                            np.stack(good),
                            dem.packet_format.preamble,
                            dem.chip_rate,
                            fs,
                        )
                    )
                except ValueError:
                    # Rows shorter than the preamble template: the
                    # per-row tail reports that exactly as sequential.
                    corrs = iter([None] * len(good))
            for row, bb, mod in zip(group, basebands, modulations):
                if bb is None:
                    continue
                baseband, cfo = bb
                demod = row.dem.demodulate_from_baseband(
                    baseband,
                    cfo,
                    max_candidates=5,
                    corr=next(corrs),
                    modulation=mod,
                )
                row.demod = demod
                row.plan.link._batch_hints[
                    (row.plan.uplink_key, row.token)
                ] = (row.after, demod)
                self.stats.demods_precomputed += 1

