"""Keyed, size-bounded memoization caches for the DSP hot path.

Every expensive intermediate in a PAB transaction that is a *pure
function of its configuration* gets recomputed on each exchange in the
naive pipeline: the PWM query template, the FM0 preamble correlation
template, Butterworth SOS designs, and the per-geometry channel impulse
response.  A polling campaign re-derives all of them hundreds of times
with identical inputs.

This module provides the shared cache substrate:

* :class:`LRUCache` — a thread-safe, size-bounded least-recently-used
  cache with hit/miss/eviction accounting;
* a process-global registry of *named* caches (:func:`get_cache`) so
  call sites in :mod:`repro.dsp`, :mod:`repro.core`,
  :mod:`repro.acoustics`, and :mod:`repro.node` share one home and one
  kill switch;
* :func:`caches_to_metrics` — exports the counters into a
  :class:`~repro.obs.metrics.MetricsRegistry` (``pab_cache_*``);
* :func:`caching_disabled` / :func:`set_cache_enabled` — a global
  bypass used by the ``repro bench`` baseline mode and by correctness
  tests that compare cached against uncached outputs.

Correctness contract: caching must be exact.  Cached values are the
very arrays the first computation produced (ndarray entries are marked
read-only before storing), so a cached decode is bit-identical to an
uncached one — asserted by ``tests/perf/test_cache.py``.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

#: Process-global enable flag (the bench baseline switches it off).
_enabled = True

#: Named process-global caches (strong refs).
_named_caches: dict = {}

#: Every live cache, including per-instance ones (e.g. link leg memos),
#: for aggregated stats.  Weak so short-lived caches don't leak.
_all_caches: "weakref.WeakSet[LRUCache]" = weakref.WeakSet()

# Reentrant: get_cache() constructs LRUCache instances (which register
# themselves in _all_caches) while holding it.
_registry_lock = threading.RLock()


@dataclass
class CacheStats:
    """Snapshot of one cache's accounting."""

    name: str
    hits: int
    misses: int
    evictions: int
    entries: int
    maxsize: int

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """Thread-safe size-bounded LRU cache with hit/miss counters.

    Parameters
    ----------
    name:
        Label under which the cache's counters aggregate (several
        instances may share a name — e.g. one leg memo per link).
    maxsize:
        Entry bound; the least recently used entry is evicted first.
    """

    def __init__(self, name: str, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        with _registry_lock:
            _all_caches.add(self)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        """Presence probe that does not touch counters or LRU order.

        The batched engine's planning pass uses this to decide which
        legs it must precompute; a probe is not a use, so it must not
        perturb hit/miss accounting (the bench reports those) or evict
        differently than the sequential schedule would.
        """
        if not _enabled:
            return False
        with self._lock:
            return key in self._data

    def put(self, key, value) -> None:
        """Seed ``key`` with an externally computed ``value``.

        Counts as a miss (the computation happened, just not inside
        :meth:`get_or_compute`) and evicts exactly like a computed
        store.  No-op while caching is globally disabled so the
        uncached baseline stays honest.
        """
        if not _enabled:
            return
        _freeze(value)
        with self._lock:
            self.misses += 1
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def get_or_compute(self, key, compute):
        """``cache[key]``, computing (and storing) on a miss.

        When caching is globally disabled the computation runs directly
        and the cache is neither consulted nor counted — the bypass
        used to time the uncached baseline.
        """
        if not _enabled:
            return compute()
        with self._lock:
            if key in self._data:
                self.hits += 1
                self._data.move_to_end(key)
                return self._data[key]
        value = self._timed_compute(compute)
        _freeze(value)
        with self._lock:
            self.misses += 1
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
        return value

    def _timed_compute(self, compute):
        """Run a miss's ``compute()``, timing it for an enabled profiler.

        The measured miss costs feed
        :meth:`repro.obs.profiler.CampaignProfiler.cache_report`'s
        per-cache time-saved estimates (hits x mean miss cost).  Only
        the miss path pays the profiler lookup; hits never reach here.
        """
        from repro.obs.profiler import get_profiler

        profiler = get_profiler()
        if not profiler.enabled:
            return compute()
        start = time.perf_counter()
        value = compute()
        profiler.record_cache_miss(self.name, time.perf_counter() - start)
        return value

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._data.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                name=self.name,
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                entries=len(self._data),
                maxsize=self.maxsize,
            )


def _freeze(value) -> None:
    """Mark ndarray cache entries read-only (shared across callers)."""
    if isinstance(value, np.ndarray):
        value.setflags(write=False)
    elif isinstance(value, tuple):
        for item in value:
            _freeze(item)


def get_cache(name: str, maxsize: int = 64) -> LRUCache:
    """The process-global cache registered under ``name`` (created on
    first use; ``maxsize`` only applies at creation)."""
    with _registry_lock:
        cache = _named_caches.get(name)
        if cache is None:
            cache = LRUCache(name, maxsize=maxsize)
            _named_caches[name] = cache
        return cache


def cache_stats() -> dict:
    """Aggregated ``{name: CacheStats}`` across every live cache.

    Instances sharing a name (per-link leg memos) sum their counters.
    """
    out: dict = {}
    with _registry_lock:
        caches = list(_all_caches)
    for cache in sorted(caches, key=lambda c: c.name):
        s = cache.stats()
        prev = out.get(s.name)
        if prev is None:
            out[s.name] = s
        else:
            out[s.name] = CacheStats(
                name=s.name,
                hits=prev.hits + s.hits,
                misses=prev.misses + s.misses,
                evictions=prev.evictions + s.evictions,
                entries=prev.entries + s.entries,
                maxsize=max(prev.maxsize, s.maxsize),
            )
    return out


def clear_all_caches() -> None:
    """Empty every live cache (named and per-instance)."""
    with _registry_lock:
        caches = list(_all_caches)
    for cache in caches:
        cache.clear()


def set_cache_enabled(flag: bool) -> None:
    """Globally enable/disable all caches (they bypass when disabled)."""
    global _enabled
    _enabled = bool(flag)


def cache_enabled() -> bool:
    """Whether the memoization layer is currently active."""
    return _enabled


@contextmanager
def caching_disabled():
    """Temporarily bypass every cache (bench baseline / A-B tests)."""
    global _enabled
    previous = _enabled
    _enabled = False
    try:
        yield
    finally:
        _enabled = previous


def caches_to_metrics(registry) -> None:
    """Export cache counters into a metrics registry.

    One-shot export (call at report time, like
    ``EnergyLedger.to_metrics``): hit/miss/eviction counters are
    incremented by the current totals, ``pab_cache_entries`` gauges
    carry the live entry counts, and ``pab_cache_capacity`` gauges the
    configured bound — entries/capacity is the live fill ratio, and a
    non-zero eviction rate against a full gauge pair is the
    working-set-too-big signal.
    """
    for name, s in sorted(cache_stats().items()):
        registry.counter("pab_cache_hits_total", cache=name).inc(s.hits)
        registry.counter("pab_cache_misses_total", cache=name).inc(s.misses)
        registry.counter("pab_cache_evictions_total", cache=name).inc(
            s.evictions
        )
        registry.gauge("pab_cache_entries", cache=name).set(s.entries)
        registry.gauge("pab_cache_capacity", cache=name).set(s.maxsize)
