"""Manchester line coding — the paper's stated alternative to FM0.

Sec. 3.2: "backscatter communication can be made more robust by adopting
modulation schemes like FM0 or Manchester encoding, where the reflection
state switches at every bit."  Manchester (IEEE 802.3 convention) encodes

* ``0`` as a high-to-low mid-bit transition (chips 1, 0),
* ``1`` as a low-to-high mid-bit transition (chips 0, 1),

so every bit contains exactly one mid-bit transition and is DC-free.
Unlike FM0 it carries no memory between bits, which makes the decoder
simpler (per-bit matched filtering is already optimal) at the cost of the
sequence-decoding gain FM0's Viterbi enjoys.

Provided so the library can swap uplink codes for comparison; the PAB
stack defaults to FM0 as the paper does.
"""

from __future__ import annotations

import numpy as np

#: Manchester also spends two chips per bit.
CHIPS_PER_BIT = 2


def _as_bit_array(bits) -> np.ndarray:
    arr = np.asarray(bits)
    if arr.ndim != 1:
        raise ValueError("bits must be one-dimensional")
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ValueError("bits must be 0 or 1")
    return arr.astype(np.int8)


def manchester_encode(bits) -> np.ndarray:
    """Encode data bits into a Manchester chip sequence (values 0/1)."""
    data = _as_bit_array(bits)
    chips = np.empty(2 * len(data), dtype=np.int8)
    chips[0::2] = 1 - data  # first half: inverted bit
    chips[1::2] = data      # second half: the bit
    return chips


def manchester_decode_chips(chip_amplitudes) -> np.ndarray:
    """Matched-filter decoding of (possibly noisy) Manchester chips.

    The per-bit statistic is ``second_half - first_half``: positive means
    ``1``.  This is the optimal decision for Manchester in white noise
    (each bit is independent).
    """
    x = np.asarray(chip_amplitudes, dtype=float)
    if x.ndim != 1:
        raise ValueError("chips must be one-dimensional")
    if len(x) % CHIPS_PER_BIT:
        raise ValueError("chip count must be even")
    statistic = x[1::2] - x[0::2]
    return (statistic > 0).astype(np.int8)


def manchester_expected_chips(bits) -> np.ndarray:
    """Bipolar (+1/-1) chip template for correlation."""
    return manchester_encode(bits).astype(float) * 2.0 - 1.0


def has_midbit_transition(chips) -> bool:
    """Invariant check: every bit cell of a clean chip stream transitions.

    Useful as a line-code self-test and for clock-recovery sanity checks.
    """
    x = np.asarray(chips)
    if len(x) % CHIPS_PER_BIT:
        return False
    return bool(np.all(x[0::2] != x[1::2]))
