"""Synchronisation: packet detection, preamble correlation, CFO handling.

The paper's offline decoder "performs standard packet detection and
carrier frequency offset (CFO) correction using the preamble"
(Sec. 5.1b) — the projector and hydrophone hang off different sound
cards, so their oscillators disagree.  The same structure appears here:

* :func:`estimate_cfo` measures the residual rotation of the complex
  baseband (dominated by the projector's carrier leak-through),
* :func:`correct_cfo` derotates,
* :func:`preamble_correlation` / :func:`detect_packet` find the chip
  timing of a backscatter frame by correlating against the known
  preamble's FM0 chip template.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import TWO_PI
from repro.dsp.fm0 import fm0_expected_chips
from repro.dsp.waveforms import upconvert_chips
from repro.obs.probe import get_probes
from repro.perf.cache import get_cache
from repro.perf.kernels import (
    batched_convolve,
    batched_correlate,
    smart_convolve,
    smart_correlate,
)


def publish_sync_tap(
    probes,
    corr,
    modulation,
    chip_rate: float,
    sample_rate: float,
    *,
    peak: float,
    threshold: float,
    **extra,
):
    """Publish a ``sync.detect_packet`` probe tap for one correlation.

    Shared by :func:`detect_packet` and the demodulator's candidate
    search so both report the same diagnostics: the correlation peak,
    its threshold margin, the peak's significance in sigma of the
    correlation magnitudes, and the chip-timing estimate of the
    underlying modulation (computed at full rate before decimation).
    """
    mags = np.abs(corr)
    sigma = float(np.std(mags)) if len(mags) else 0.0
    from repro.dsp.spectral import symbol_timing_estimate

    timing = symbol_timing_estimate(modulation, chip_rate, sample_rate)
    return probes.capture(
        "sync.detect_packet", "correlation",
        waveform=corr, sample_rate=sample_rate,
        peak=peak, threshold=threshold, margin=peak - threshold,
        peak_sigma=peak / sigma if sigma > 0 else float("inf"),
        found=peak >= threshold,
        timing_offset_chips=timing["timing_offset_chips"],
        timing_line_strength=timing["line_strength"],
        **extra,
    )


def estimate_cfo(
    baseband,
    sample_rate: float,
    *,
    lag_s: float = 1e-3,
    n_windows: int = 24,
) -> float:
    """Estimate carrier frequency offset [Hz] of a complex baseband signal.

    The baseband is ``A*exp(j*2*pi*df*t) + modulation``: averaging over
    windows much longer than a chip suppresses the (zero-mean backscatter)
    modulation and leaves the rotating carrier leak.  The offset is the
    phase advance between consecutive window means.  This estimator is
    unbiased by strong modulation, unlike a plain lag-autocorrelation on
    the raw signal, and is unambiguous for offsets below
    ``n_windows / (2 * duration)``.
    """
    x = np.asarray(baseband)
    if x.ndim != 1:
        raise ValueError("baseband must be one-dimensional")
    if sample_rate <= 0 or lag_s <= 0:
        raise ValueError("sample rate and lag must be positive")
    min_len = max(int(round(lag_s * sample_rate)), 1) + 1
    if len(x) < max(min_len, n_windows):
        raise ValueError("signal shorter than the correlation lag")
    window = max(len(x) // n_windows, 1)
    n_win = len(x) // window
    # Every window is full-length, so a reshape-mean computes the same
    # per-window means as slicing (same pairwise summation per row).
    means = np.ascontiguousarray(x[: n_win * window]).reshape(
        n_win, window
    ).mean(axis=1)
    if len(means) < 2:
        return 0.0
    # Phase advance between consecutive window means.
    rotations = means[1:] * np.conjugate(means[:-1])
    acc = np.sum(rotations)
    if abs(acc) < 1e-30:
        return 0.0
    return float(np.angle(acc)) / (TWO_PI * window / sample_rate)


def correct_cfo(baseband, cfo_hz: float, sample_rate: float) -> np.ndarray:
    """Derotate a complex baseband signal by ``cfo_hz``."""
    x = np.asarray(baseband)
    if x.ndim != 1:
        raise ValueError("baseband must be one-dimensional")
    if sample_rate <= 0:
        raise ValueError("sample rate must be positive")
    n = np.arange(len(x))
    return x * np.exp(-1j * TWO_PI * cfo_hz * n / sample_rate)


def preamble_template(
    preamble_bits,
    chip_rate: float,
    sample_rate: float,
    *,
    initial_level: int = 1,
) -> np.ndarray:
    """Sample-level bipolar FM0 template of a preamble.

    Memoized: every transaction correlates against the same handful of
    preambles, so the chip expansion + upconversion runs once per
    ``(preamble, rates)`` key.  The returned array is shared and marked
    read-only.
    """
    key = (
        tuple(int(b) for b in preamble_bits),
        float(chip_rate),
        float(sample_rate),
        int(initial_level),
    )

    def compute() -> np.ndarray:
        chips = fm0_expected_chips(preamble_bits, initial_level=initial_level)
        return upconvert_chips(chips, chip_rate, sample_rate)

    return get_cache("sync_templates").get_or_compute(key, compute)


def preamble_correlation(
    modulation,
    preamble_bits,
    chip_rate: float,
    sample_rate: float,
) -> np.ndarray:
    """Normalised sliding correlation against the preamble template.

    ``modulation`` should be a real, roughly zero-mean waveform (the
    backscatter modulation after carrier removal).  Output values near
    +-1 mark template-aligned positions.
    """
    x = np.asarray(modulation, dtype=float)
    if x.ndim != 1:
        raise ValueError("modulation must be one-dimensional")
    template = preamble_template(preamble_bits, chip_rate, sample_rate)
    if len(template) == 0 or len(x) < len(template):
        raise ValueError("waveform shorter than the preamble")
    t_norm = template / np.sqrt(np.sum(template**2))
    # The sliding correlation and local-energy window are the two
    # heaviest products in a decode (~40 M MACs each at 96 kHz when
    # evaluated directly); smart_correlate routes them through
    # overlap-add FFT convolution.
    corr = smart_correlate(x, t_norm, mode="valid")
    # Local energy normalisation so the metric is scale-free.
    energy = smart_convolve(x**2, np.ones(len(template)), mode="valid")
    corr = corr / np.sqrt(np.maximum(energy, 1e-30))
    return corr


def batched_preamble_correlation(
    modulations,
    preamble_bits,
    chip_rate: float,
    sample_rate: float,
) -> np.ndarray:
    """:func:`preamble_correlation` over an (N, samples) stack of rows.

    This is the fleet-wide sync/FM0 correlation of the batched engine:
    every row is matched against the same FM0 preamble chip template in
    one matrix convolution per stage.  Row *i* of the result is
    bit-identical to ``preamble_correlation(modulations[i], ...)`` —
    the elementwise square, the normalisation, and both convolutions
    (via :func:`repro.perf.kernels.batched_convolve`) all preserve the
    sequential arithmetic exactly.
    """
    X = np.asarray(modulations, dtype=float)
    if X.ndim == 1:
        return preamble_correlation(X, preamble_bits, chip_rate, sample_rate)
    if X.ndim != 2:
        raise ValueError("modulations must be 1-D or an (N, samples) stack")
    template = preamble_template(preamble_bits, chip_rate, sample_rate)
    if len(template) == 0 or X.shape[-1] < len(template):
        raise ValueError("waveform shorter than the preamble")
    t_norm = template / np.sqrt(np.sum(template**2))
    corr = batched_correlate(X, t_norm, mode="valid")
    energy = batched_convolve(X**2, np.ones(len(template)), mode="valid")
    return corr / np.sqrt(np.maximum(energy, 1e-30))


@dataclass(frozen=True)
class PacketDetection:
    """Result of packet detection.

    Attributes
    ----------
    start_index:
        Sample index of the first preamble chip.
    metric:
        Normalised correlation value at the peak (|metric| <= 1).
    inverted:
        Whether the modulation polarity is flipped relative to the
        template (reflective state mapping to the lower level).
    """

    start_index: int
    metric: float
    inverted: bool


def detect_packet(
    modulation,
    preamble_bits,
    chip_rate: float,
    sample_rate: float,
    *,
    threshold: float = 0.5,
) -> PacketDetection | None:
    """Find a frame start by preamble correlation.

    Returns ``None`` when no correlation magnitude clears ``threshold``.
    Polarity ambiguity (the decoder cannot know a priori whether
    "reflective" is the larger or smaller amplitude) is resolved by
    taking the absolute peak and reporting ``inverted``.

    In reverberant channels the template also correlates with late
    echoes; the detector therefore picks the *earliest* peak within 90%
    of the global maximum, which is the direct arrival.
    """
    corr = preamble_correlation(modulation, preamble_bits, chip_rate, sample_rate)
    mags = np.abs(corr)
    global_peak = float(mags.max()) if len(mags) else 0.0
    probes = get_probes()
    if probes.wants("sync.detect_packet"):
        publish_sync_tap(
            probes, corr, modulation, chip_rate, sample_rate,
            peak=global_peak, threshold=float(threshold),
        )
    if global_peak < threshold:
        return None
    candidates = np.nonzero(mags >= 0.9 * global_peak)[0]
    peak = int(candidates[0])
    value = float(corr[peak])
    return PacketDetection(
        start_index=peak, metric=abs(value), inverted=value < 0
    )
