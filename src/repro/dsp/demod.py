"""The hydrophone-side backscatter demodulator.

Implements the paper's offline decode chain (Sec. 5.1b) end to end:

1. downconvert the passband recording at the channel's carrier,
2. Butterworth low-pass to isolate the channel,
3. CFO estimation and correction from the residual carrier,
4. carrier removal and projection of the backscatter modulation onto its
   complex signal direction,
5. packet detection by preamble correlation,
6. integrate-and-dump chip matched filtering,
7. maximum-likelihood (Viterbi) FM0 sequence decoding,
8. CRC verification and packet parsing,
9. SNR measurement from the channel estimate and decision residuals
   (exactly the estimator described in Sec. 6.1a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.fm0 import (
    CHIPS_PER_BIT,
    fm0_encode,
    fm0_expected_chips,
    fm0_ml_decode,
)
from repro.dsp.filters import butter_lowpass
from repro.dsp.packets import DEFAULT_FORMAT, FramingError, Packet, PacketFormat
from repro.dsp.sync import PacketDetection, correct_cfo, estimate_cfo
from repro.dsp.waveforms import downconvert
from repro.perf.cache import get_cache


def _identity(taps: int) -> np.ndarray:
    """Read-only ``np.eye(taps)`` shared across equaliser calls."""
    eye = _EYE.get(taps)
    if eye is None:
        eye = np.eye(taps)
        eye.setflags(write=False)
        _EYE[taps] = eye
    return eye


_EYE: dict[int, np.ndarray] = {}


def _readonly(arr: np.ndarray) -> np.ndarray:
    arr.setflags(write=False)
    return arr
from repro.obs.probe import get_probes
from repro.perf.kernels import smart_convolve


@dataclass
class DemodResult:
    """Everything the demodulator extracted from one recording.

    Attributes
    ----------
    packet:
        The decoded packet, or ``None`` if none was recovered.
    bits:
        Raw decoded bit stream (including preamble) when a frame was
        detected.
    chip_amplitudes:
        Matched-filter output per chip (modulation units).
    snr_db:
        Post-processing SNR estimate [dB]; ``nan`` when unavailable.
    cfo_hz:
        Estimated carrier frequency offset [Hz].
    detection:
        Preamble detection details, or ``None``.
    error:
        Human-readable failure reason when ``packet`` is ``None``.
    """

    packet: Packet | None
    bits: np.ndarray
    chip_amplitudes: np.ndarray
    snr_db: float
    cfo_hz: float
    detection: PacketDetection | None
    error: str | None = None

    @property
    def success(self) -> bool:
        return self.packet is not None


class BackscatterDemodulator:
    """Decodes FM0 backscatter frames from a passband pressure recording.

    Parameters
    ----------
    carrier_hz:
        Channel carrier frequency.
    bitrate:
        Uplink bit rate [bit/s]; chips run at twice this.
    sample_rate:
        Recording sample rate [Hz].
    packet_format:
        Frame layout (preamble, header sizes).
    detection_threshold:
        Normalised preamble-correlation threshold.
    """

    def __init__(
        self,
        carrier_hz: float,
        bitrate: float,
        sample_rate: float,
        *,
        packet_format: PacketFormat = DEFAULT_FORMAT,
        detection_threshold: float = 0.5,
    ) -> None:
        if carrier_hz <= 0 or bitrate <= 0 or sample_rate <= 0:
            raise ValueError("carrier, bitrate, and sample rate must be positive")
        if 2.0 * bitrate * 4 > sample_rate:
            raise ValueError("sample rate too low for this bitrate")
        self.carrier_hz = carrier_hz
        self.bitrate = bitrate
        self.sample_rate = sample_rate
        self.packet_format = packet_format
        self.detection_threshold = detection_threshold

    @property
    def chip_rate(self) -> float:
        """FM0 chip rate, 2x the bit rate."""
        return CHIPS_PER_BIT * self.bitrate

    # -- stages -------------------------------------------------------------------

    def to_baseband(self, waveform) -> np.ndarray:
        """Downconvert + channel filter + CFO correction."""
        cutoff = min(max(2.5 * self.chip_rate, 200.0), self.sample_rate / 2.5)
        baseband = butter_lowpass(
            downconvert(waveform, self.carrier_hz, self.sample_rate),
            cutoff,
            self.sample_rate,
        )
        cfo = estimate_cfo(baseband, self.sample_rate)
        return correct_cfo(baseband, cfo, self.sample_rate), cfo

    def extract_modulation(self, baseband, *, track_phase: bool = True) -> np.ndarray:
        """Remove the carrier component and project onto the modulation axis.

        The backscatter signal is ``A + m(t) * B`` with a large constant
        ``A`` (direct projector arrival) and complex backscatter channel
        ``B``.  Subtracting the mean leaves ``~m(t) * B``; the angle of
        ``mean(x^2)`` is twice the angle of ``B``, giving the projection
        axis without training.

        With ``track_phase`` (default) the axis is re-estimated over
        sliding blocks of ~16 chips and interpolated, so a slowly
        rotating backscatter channel — a drifting node Doppler-shifts its
        reflection relative to the static direct carrier — still projects
        onto the right axis throughout the frame.
        """
        x = np.asarray(baseband) - np.mean(baseband)
        if len(x) == 0:
            return np.real(x)
        block = int(round(16 * self.sample_rate / self.chip_rate))
        n_blocks = len(x) // block if block > 0 else 0
        if not track_phase or n_blocks < 3:
            second_moment = np.mean(x**2)
            if abs(second_moment) < 1e-30:
                return np.real(x)
            theta = 0.5 * np.angle(second_moment)
            return np.real(x * np.exp(-1j * theta))
        # Blockwise second moments; unwrap the (double-angle) phase so the
        # axis varies smoothly, then interpolate per sample.  Smoothing
        # over neighbouring blocks keeps the estimate stable when a block
        # happens to carry little modulation energy.
        # All blocks are full-length, so the blockwise means reduce to a
        # reshape-mean (identical pairwise summation per row).
        moments = (
            np.ascontiguousarray(x[: n_blocks * block] ** 2)
            .reshape(n_blocks, block)
            .mean(axis=1)
        )
        if np.all(np.abs(moments) < 1e-30):
            return np.real(x)
        # Distinguish a genuinely rotating axis (Doppler) from noisy
        # block estimates on a static channel: if the block moments add
        # coherently, the axis is constant and the global estimate has
        # lower variance.
        coherence = abs(np.mean(moments)) / (np.mean(np.abs(moments)) + 1e-30)
        if coherence > 0.6:
            second_moment = np.mean(x**2)
            theta = 0.5 * np.angle(second_moment)
            return np.real(x * np.exp(-1j * theta))
        # Rotating axis: constant relative Doppler means the double-angle
        # phase advances linearly, so fit a weighted line rather than
        # following each noisy block estimate.
        kernel = np.ones(3) / 3.0
        smoothed = smart_convolve(moments, kernel, mode="same")
        angles = np.unwrap(np.angle(smoothed))
        centres = (np.arange(n_blocks) + 0.5) * block
        weights = np.abs(smoothed) + 1e-30
        slope, intercept = np.polyfit(centres, angles, 1, w=weights)
        theta = 0.5 * (intercept + slope * np.arange(len(x)))
        return np.real(x * np.exp(-1j * theta))

    def chip_matched_filter(self, modulation, start_index: int) -> np.ndarray:
        """Integrate-and-dump chip amplitudes from ``start_index``."""
        x = np.asarray(modulation, dtype=float)
        spc = self.sample_rate / self.chip_rate
        n_chips = int((len(x) - start_index) / spc)
        if n_chips <= 0:
            return np.zeros(0)
        spc_int = int(round(spc))
        if spc == spc_int:
            # Integral samples-per-chip (the common case): every chip
            # spans exactly spc samples, so a reshape-mean yields the
            # same per-chip means as slicing, without the Python loop.
            block = np.ascontiguousarray(
                x[start_index : start_index + n_chips * spc_int]
            )
            return block.reshape(n_chips, spc_int).mean(axis=1)
        amplitudes = np.empty(n_chips)
        for k in range(n_chips):
            a = start_index + int(round(k * spc))
            b = start_index + int(round((k + 1) * spc))
            amplitudes[k] = float(np.mean(x[a:b])) if b > a else 0.0
        return amplitudes

    # -- equalisation -----------------------------------------------------------------

    @staticmethod
    def equalize_chips(
        chip_amplitudes,
        training_chips,
        *,
        taps: int = 7,
        ridge: float = 1e-2,
    ) -> np.ndarray:
        """Preamble-trained linear (LS) equaliser over chip amplitudes.

        Enclosed tanks are strongly frequency selective (tens of dB of
        fading across a few kHz), which smears chips into each other.  A
        short FIR equaliser trained on the known preamble chips —
        received vs expected — undoes most of the inter-chip
        interference.  Ridge regularisation keeps the fit stable with the
        short training window.
        """
        r = np.asarray(chip_amplitudes, dtype=float)
        t = np.asarray(training_chips, dtype=float)
        if taps < 1 or taps % 2 == 0:
            raise ValueError("taps must be odd and positive")
        if len(t) < taps:
            return r.copy()
        half = taps // 2
        padded = np.concatenate([np.zeros(half), r, np.zeros(half)])
        n_train = min(len(t), len(r))
        # Row k is padded[k:k+taps]; a sliding-window view builds every
        # row at once (materialised contiguously for the BLAS products).
        all_rows = np.ascontiguousarray(
            np.lib.stride_tricks.sliding_window_view(padded, taps)
        )
        rows = all_rows[:n_train]
        gram = rows.T @ rows + ridge * _identity(taps) * float(
            np.mean(rows**2) + 1e-30
        ) * n_train
        weights = np.linalg.solve(gram, rows.T @ t[:n_train])
        return all_rows @ weights

    # -- the full chain -------------------------------------------------------------

    def demodulate(self, waveform, *, max_candidates: int = 5) -> DemodResult:
        """Run the complete decode chain on a passband recording.

        Reverberant channels smear the preamble, so the correlation peak
        of the true frame start is not always the global maximum.  The
        decoder therefore tries up to ``max_candidates`` correlation
        peaks (earliest first among the strong ones) and returns the
        first CRC-clean decode; failing that, the best-effort result of
        the strongest candidate.
        """
        baseband, cfo = self.to_baseband(waveform)
        return self.demodulate_from_baseband(
            baseband, cfo, max_candidates=max_candidates
        )

    def demodulate_from_baseband(
        self,
        baseband,
        cfo: float,
        *,
        max_candidates: int = 5,
        corr=None,
        modulation=None,
    ) -> DemodResult:
        """Decode from an already CFO-corrected complex baseband.

        The second half of :meth:`demodulate`.  The batched engine runs
        the downconvert/filter front-end for a whole fleet as one
        (N, samples) matrix pass, then finishes each row here;
        ``corr`` optionally supplies the row's precomputed preamble
        correlation (from the batched sync pass) and ``modulation`` the
        row's already-extracted modulation envelope, so the per-row
        tail skips those recomputations.  Output is bit-identical to
        :meth:`demodulate` on the same recording.
        """
        empty = np.zeros(0)
        if modulation is None:
            modulation = self.extract_modulation(baseband)
        try:
            candidates = self._detection_candidates(
                modulation, max_candidates, corr=corr
            )
        except ValueError as exc:
            return DemodResult(
                None, empty, empty, float("nan"), cfo, None, f"detection failed: {exc}"
            )
        if not candidates:
            return DemodResult(
                None, empty, empty, float("nan"), cfo, None, "no preamble found"
            )
        best: DemodResult | None = None
        for detection in candidates:
            result = self._decode_from(modulation, detection, cfo)
            if result.success:
                return result
            if best is None:
                best = result
        return best

    def _detection_candidates(
        self, modulation, max_candidates: int, *, corr=None
    ) -> list[PacketDetection]:
        """Strong preamble-correlation peaks, most promising first."""
        from repro.dsp.sync import preamble_correlation

        if corr is None:
            corr = preamble_correlation(
                modulation,
                self.packet_format.preamble,
                self.chip_rate,
                self.sample_rate,
            )
        mags = np.abs(corr)
        probes = get_probes()
        if probes.wants("sync.detect_packet"):
            from repro.dsp.sync import publish_sync_tap

            publish_sync_tap(
                probes, corr, modulation, self.chip_rate, self.sample_rate,
                peak=float(mags.max()) if len(mags) else 0.0,
                threshold=float(self.detection_threshold),
            )
        if not len(mags) or mags.max() < self.detection_threshold:
            return []
        spc = int(round(self.sample_rate / self.chip_rate))
        order = np.argsort(mags)[::-1]
        picked: list[int] = []
        for idx in order:
            if mags[idx] < self.detection_threshold:
                break
            if all(abs(idx - p) > spc for p in picked):
                picked.append(int(idx))
            if len(picked) >= max_candidates:
                break
        # Earliest strong peak is usually the direct arrival.
        picked.sort()
        return [
            PacketDetection(
                start_index=i, metric=float(mags[i]), inverted=corr[i] < 0
            )
            for i in picked
        ]

    def _decode_from(
        self, modulation, detection: PacketDetection, cfo: float
    ) -> DemodResult:
        """Decode a frame assuming it starts at one detection candidate."""
        empty = np.zeros(0)
        chips = self.chip_matched_filter(modulation, detection.start_index)
        if detection.inverted:
            chips = -chips
        # Trim to an even chip count for FM0.
        if len(chips) % 2:
            chips = chips[:-1]
        overhead_chips = self.packet_format.overhead_bits() * CHIPS_PER_BIT
        if len(chips) < overhead_chips:
            return DemodResult(
                None, empty, chips, float("nan"), cfo, detection, "frame truncated"
            )
        # Undo inter-chip interference with the preamble-trained equaliser.
        # The preamble is fixed per packet format, so its expected chips
        # are memoised (read-only) alongside the sync templates.
        preamble = self.packet_format.preamble
        preamble_chips = get_cache("sync_templates").get_or_compute(
            ("preamble_chips", tuple(int(b) for b in preamble)),
            lambda: _readonly(fm0_expected_chips(preamble)),
        )
        raw_chips = chips.copy()
        chips = self.equalize_chips(chips - np.mean(chips), preamble_chips)
        # Two-pass decode: the frame length is only known after the header,
        # and chips past the frame end are garbage that would bias the
        # Viterbi terminal state.  Decode preamble+header first, read the
        # length field, then decode exactly the frame's chips.
        n_pre = len(self.packet_format.preamble)
        header_chips = chips[: (n_pre + 16) * CHIPS_PER_BIT]
        header_bits = fm0_ml_decode(header_chips - np.mean(header_chips))
        length_bits = header_bits[n_pre + 8 : n_pre + 16]
        payload_len = int(np.packbits(length_bits.astype(np.uint8))[0])
        total_chips = (
            self.packet_format.overhead_bits() + 8 * payload_len
        ) * CHIPS_PER_BIT
        if len(chips) < total_chips:
            return DemodResult(
                None, empty, chips, float("nan"), cfo, detection, "frame truncated"
            )
        chips = chips[:total_chips]
        bits = fm0_ml_decode(chips - np.mean(chips))
        # Detection already located the preamble by correlation; trust it
        # rather than the bit-by-bit re-decode (the CRC still guards the
        # payload).
        bits[:n_pre] = self.packet_format.preamble_bits
        snr = self._estimate_snr(chips - np.mean(chips), bits)
        try:
            packet = Packet.from_bits(bits, self.packet_format)
            return DemodResult(packet, bits, chips, snr, cfo, detection, None)
        except FramingError:
            pass
        # Decision-directed second pass: re-train the equaliser on the
        # whole tentatively decoded frame (not just the preamble) and
        # decode again.  Standard practice on frequency-selective
        # underwater channels; the CRC still arbitrates.
        tentative = fm0_expected_chips(bits)
        chips2 = self.equalize_chips(
            raw_chips[:total_chips] - np.mean(raw_chips[:total_chips]),
            tentative,
            taps=11,
        )
        bits2 = fm0_ml_decode(chips2 - np.mean(chips2))
        bits2[:n_pre] = self.packet_format.preamble_bits
        snr2 = self._estimate_snr(chips2 - np.mean(chips2), bits2)
        try:
            packet = Packet.from_bits(bits2, self.packet_format)
            return DemodResult(packet, bits2, chips2, snr2, cfo, detection, None)
        except FramingError as exc:
            if snr2 > snr:
                bits, chips, snr = bits2, chips2, snr2
            return DemodResult(
                None, bits, chips, snr, cfo, detection, f"framing: {exc}"
            )

    # -- measurements ----------------------------------------------------------------

    def _estimate_snr(self, chip_amplitudes, bits) -> float:
        """Paper Sec. 6.1a SNR estimator.

        Signal power is the squared channel estimate; noise power the mean
        squared difference between the received chips and the re-encoded
        chips scaled by the channel estimate.
        """
        expected = fm0_encode(bits).astype(float) * 2.0 - 1.0
        n = min(len(expected), len(chip_amplitudes))
        if n == 0:
            return float("nan")
        rx = np.asarray(chip_amplitudes[:n], dtype=float)
        tx = expected[:n]
        denom = float(np.dot(tx, tx))
        if denom == 0:
            return float("nan")
        h = float(np.dot(rx, tx)) / denom
        noise = float(np.mean((rx - h * tx) ** 2))
        if noise <= 0:
            return float("inf")
        return 10.0 * float(np.log10(h**2 / noise))
