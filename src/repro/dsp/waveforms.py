"""Carrier generation, mixing, and chip-to-waveform conversion."""

from __future__ import annotations

import numpy as np

from repro.constants import TWO_PI


def tone(
    frequency_hz: float,
    duration_s: float,
    sample_rate: float,
    *,
    amplitude: float = 1.0,
    phase_rad: float = 0.0,
) -> np.ndarray:
    """A real sinusoid ``amplitude * sin(2*pi*f*t + phase)``."""
    if frequency_hz <= 0 or sample_rate <= 0:
        raise ValueError("frequency and sample rate must be positive")
    if duration_s < 0:
        raise ValueError("duration must be non-negative")
    n = int(round(duration_s * sample_rate))
    t = np.arange(n) / sample_rate
    return amplitude * np.sin(TWO_PI * frequency_hz * t + phase_rad)


def amplitude_modulated_carrier(
    envelope,
    frequency_hz: float,
    sample_rate: float,
    *,
    phase_rad: float = 0.0,
) -> np.ndarray:
    """Multiply an envelope by a carrier (the projector's PWM downlink)."""
    env = np.asarray(envelope, dtype=float)
    if env.ndim != 1:
        raise ValueError("envelope must be one-dimensional")
    if frequency_hz <= 0 or sample_rate <= 0:
        raise ValueError("frequency and sample rate must be positive")
    t = np.arange(len(env)) / sample_rate
    return env * np.sin(TWO_PI * frequency_hz * t + phase_rad)


def upconvert_chips(
    chip_values,
    chip_rate: float,
    sample_rate: float,
) -> np.ndarray:
    """Expand a chip sequence into a sample-level staircase waveform.

    Each chip is held for ``sample_rate / chip_rate`` samples (fractional
    chip lengths are accumulated so long sequences keep exact timing).
    This is the time-domain reflection-coefficient trajectory the
    backscatter switch imposes.
    """
    chips = np.asarray(chip_values, dtype=float)
    if chips.ndim != 1:
        raise ValueError("chips must be one-dimensional")
    if chip_rate <= 0 or sample_rate <= 0:
        raise ValueError("rates must be positive")
    if chip_rate > sample_rate:
        raise ValueError("chip rate cannot exceed the sample rate")
    if len(chips) == 0:
        return np.zeros(0)
    # Exact boundaries: chip k spans [k*fs/cr, (k+1)*fs/cr).
    edges = np.round(np.arange(len(chips) + 1) * sample_rate / chip_rate).astype(int)
    out = np.empty(edges[-1])
    for k, v in enumerate(chips):
        out[edges[k] : edges[k + 1]] = v
    return out


def downconvert(
    waveform,
    carrier_hz: float,
    sample_rate: float,
) -> np.ndarray:
    """Mix a real passband waveform down to complex baseband.

    Returns ``x[n] * exp(-j*2*pi*f*n/fs) * 2`` — the factor of two makes
    the magnitude of the result equal the envelope of the passband tone.
    The caller is expected to low-pass filter the product (see
    :func:`repro.dsp.filters.butter_lowpass`).

    Accepts a 1-D waveform or an (N, samples) stack mixed along the last
    axis; the complex oscillator is computed once and broadcast across
    rows, so batched mixing is bit-identical to row-at-a-time mixing.
    """
    x = np.asarray(waveform, dtype=float)
    if x.ndim not in (1, 2):
        raise ValueError("waveform must be 1-D or an (N, samples) stack")
    if carrier_hz <= 0 or sample_rate <= 0:
        raise ValueError("carrier and sample rate must be positive")
    n = np.arange(x.shape[-1])
    return 2.0 * x * np.exp(-1j * TWO_PI * carrier_hz * n / sample_rate)
