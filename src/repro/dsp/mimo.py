"""MIMO-style collision decoding over frequency diversity (Sec. 3.3.2).

Backscatter is frequency-agnostic: a powered-up node modulates *every*
carrier impinging on it, so two concurrent recto-piezo nodes collide on
both channels.  But the receiver then holds two equations in two
unknowns,

    y(f1) = h11 x1 + h12 x2
    y(f2) = h21 x1 + h22 x2,

and because each node's coupling is frequency-selective the channel
matrix is well conditioned.  Estimating H from known training chips and
inverting (zero-forcing, i.e. projecting each stream on the orthogonal
complement of the interferer's channel vector) separates the collisions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def estimate_channel_matrix(
    received_streams,
    training_chips,
) -> np.ndarray:
    """Least-squares estimate of the K x K channel matrix.

    Parameters
    ----------
    received_streams:
        Array (K, L): chip-rate observations of each channel over the
        training region.
    training_chips:
        Array (K, L): the known bipolar training chips each node sent
        over the same region (near-orthogonal preambles).

    Returns
    -------
    H such that ``received ~= H @ training``.
    """
    y = np.asarray(received_streams)
    x = np.asarray(training_chips)
    if y.ndim != 2 or x.ndim != 2:
        raise ValueError("streams and training must be 2-D (K, L)")
    if y.shape[0] != x.shape[0]:
        raise ValueError("stream count must match training count")
    length = min(y.shape[1], x.shape[1])
    if length < x.shape[0]:
        raise ValueError("training too short to identify the channel")
    y = y[:, :length]
    x = x[:, :length]
    gram = x @ np.conjugate(x.T)
    if np.linalg.cond(gram) > 1e8:
        raise ValueError("training sequences are not sufficiently orthogonal")
    return y @ np.conjugate(x.T) @ np.linalg.inv(gram)


@dataclass
class CollisionDecodeResult:
    """Output of zero-forcing collision decoding.

    Attributes
    ----------
    separated:
        Array (K, N): the per-node chip streams after projection.
    channel_matrix:
        The H used.
    condition_number:
        cond(H) — large values mean the channels were too similar to
        separate (the paper's recto-piezo design keeps this small).
    """

    separated: np.ndarray
    channel_matrix: np.ndarray
    condition_number: float


def zero_forcing_decode(
    received_streams,
    channel_matrix,
    *,
    max_condition: float = 1e6,
) -> CollisionDecodeResult:
    """Invert the channel matrix to separate colliding chip streams.

    Raises ``ValueError`` when H is too ill-conditioned to invert
    meaningfully.
    """
    y = np.asarray(received_streams)
    h = np.asarray(channel_matrix)
    if y.ndim != 2:
        raise ValueError("received streams must be 2-D (K, N)")
    if h.shape != (y.shape[0], y.shape[0]):
        raise ValueError("channel matrix shape must match stream count")
    cond = float(np.linalg.cond(h))
    from repro.obs.probe import get_probes

    probes = get_probes()
    if probes.wants("mimo.zero_forcing"):
        # Captured before the ill-conditioning check so an aborted
        # separation still leaves its condition number in the autopsy.
        probes.capture(
            "mimo.zero_forcing", "channel",
            waveform=h.ravel(),
            cond=cond, streams=int(y.shape[0]),
            max_condition=float(max_condition),
            ill_conditioned=cond > max_condition,
        )
    if cond > max_condition:
        raise ValueError(f"channel matrix is ill-conditioned (cond={cond:.2e})")
    separated = np.linalg.solve(h, y)
    return CollisionDecodeResult(
        separated=separated, channel_matrix=h, condition_number=cond
    )


def mimo_equalize(
    received_streams,
    training_chips,
    *,
    taps: int = 7,
    ridge: float = 1e-2,
) -> np.ndarray:
    """Joint MIMO linear equaliser: collision separation under ISI.

    The instantaneous model ``y = H x`` of :func:`zero_forcing_decode`
    breaks down in reverberant tanks where each chip smears into its
    neighbours.  The general linear receiver is a K-input K-output FIR:

        x_hat_k[n] = sum_j sum_tau W_kj[tau] * y_j[n - tau]

    whose weights are fitted by ridge-regularised least squares on the
    known training chips (the nodes' near-orthogonal preambles).  This
    both inverts the mixing matrix *and* equalises inter-chip
    interference; it reduces to zero-forcing when the channel is
    memoryless and H is invertible.

    Parameters
    ----------
    received_streams:
        Array (K, N), real or complex chip streams (one per channel).
    training_chips:
        Array (K, L): known bipolar training chips per node, aligned with
        the start of the streams.
    taps:
        FIR length per (input, output) pair; must be odd.
    ridge:
        Regularisation strength relative to the input power.

    Returns
    -------
    Array (K, N): the separated chip streams.
    """
    y = np.atleast_2d(np.asarray(received_streams))
    t = np.atleast_2d(np.asarray(training_chips))
    if y.shape[0] != t.shape[0]:
        raise ValueError("stream count must match training count")
    if taps < 1 or taps % 2 == 0:
        raise ValueError("taps must be odd and positive")
    k_streams, n = y.shape
    train_len = min(t.shape[1], n)
    half = taps // 2
    padded = np.concatenate(
        [np.zeros((k_streams, half), dtype=y.dtype), y,
         np.zeros((k_streams, half), dtype=y.dtype)],
        axis=1,
    )
    # Regression rows: all streams' lagged windows, flattened.
    def row(index: int) -> np.ndarray:
        return padded[:, index : index + taps].ravel()

    rows_train = np.stack([row(i) for i in range(train_len)])
    scale = float(np.mean(np.abs(rows_train) ** 2)) + 1e-30
    gram = (
        np.conjugate(rows_train.T) @ rows_train
        + ridge * scale * train_len * np.eye(rows_train.shape[1])
    )
    rows_all = np.stack([row(i) for i in range(n)])
    separated = np.empty((k_streams, n), dtype=complex)
    for k in range(k_streams):
        weights = np.linalg.solve(
            gram, np.conjugate(rows_train.T) @ t[k, :train_len]
        )
        separated[k] = rows_all @ weights
    if not np.iscomplexobj(y) :
        return np.real(separated)
    return separated


def sinr_gain_db(
    mixed_stream,
    separated_stream,
    reference_chips,
) -> float:
    """SINR improvement [dB] of a separated stream over the raw mixture.

    Both streams are compared against the same known reference chips
    (the node's actual transmission) using the least-squares channel /
    residual decomposition.
    """
    from repro.dsp.metrics import sinr_db  # local import avoids a cycle

    before = sinr_db(mixed_stream, reference_chips)
    after = sinr_db(separated_stream, reference_chips)
    return after - before
