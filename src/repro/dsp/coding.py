"""Forward error correction: Hamming(7,4) and interleaving.

The paper's receiver relies on ARQ — "use the CRC to perform a checksum
... and request retransmissions of corrupted packets" (Sec. 5.1b).  Each
retransmission costs a full downlink query plus uplink airtime, which is
expensive at backscatter rates, so FEC is the natural next step: spend a
fixed 7/4 rate overhead to repair isolated bit errors and avoid the
round trip.

This module provides a bit-level Hamming(7,4) codec (single-error
correction per block) and a block interleaver (spreads burst errors from
channel fades across many code blocks), plus payload-level helpers that
compose both.
"""

from __future__ import annotations

import numpy as np

#: Generator matrix (4 data bits -> 7 code bits), systematic form.
_G = np.array(
    [
        [1, 0, 0, 0, 1, 1, 0],
        [0, 1, 0, 0, 1, 0, 1],
        [0, 0, 1, 0, 0, 1, 1],
        [0, 0, 0, 1, 1, 1, 1],
    ],
    dtype=np.int8,
)

#: Parity-check matrix (3 x 7).
_H = np.array(
    [
        [1, 1, 0, 1, 1, 0, 0],
        [1, 0, 1, 1, 0, 1, 0],
        [0, 1, 1, 1, 0, 0, 1],
    ],
    dtype=np.int8,
)

#: Map from syndrome value (as integer) to the erroneous bit position.
_SYNDROME_TO_BIT = {}
for _bit in range(7):
    _e = np.zeros(7, dtype=np.int8)
    _e[_bit] = 1
    _s = (_H @ _e) % 2
    _SYNDROME_TO_BIT[int(_s[0]) * 4 + int(_s[1]) * 2 + int(_s[2])] = _bit


def _as_bits(bits) -> np.ndarray:
    arr = np.asarray(bits)
    if arr.ndim != 1:
        raise ValueError("bits must be one-dimensional")
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ValueError("bits must be 0 or 1")
    return arr.astype(np.int8)


def hamming74_encode(bits) -> np.ndarray:
    """Encode a bit sequence with Hamming(7,4).

    The input is zero-padded to a multiple of 4; callers that need exact
    framing should carry the original length out of band (the packet
    length field already does).
    """
    data = _as_bits(bits)
    if len(data) % 4:
        data = np.concatenate([data, np.zeros(4 - len(data) % 4, dtype=np.int8)])
    blocks = data.reshape(-1, 4)
    coded = (blocks @ _G) % 2
    return coded.reshape(-1).astype(np.int8)


def hamming74_decode(bits) -> tuple[np.ndarray, int]:
    """Decode a Hamming(7,4) stream; corrects one error per 7-bit block.

    Returns ``(data_bits, corrected_count)``.
    """
    coded = _as_bits(bits)
    if len(coded) % 7:
        raise ValueError("coded length must be a multiple of 7")
    blocks = coded.reshape(-1, 7).copy()
    corrected = 0
    syndromes = (blocks @ _H.T) % 2
    for i, syndrome in enumerate(syndromes):
        value = int(syndrome[0]) * 4 + int(syndrome[1]) * 2 + int(syndrome[2])
        if value:
            blocks[i, _SYNDROME_TO_BIT[value]] ^= 1
            corrected += 1
    return blocks[:, :4].reshape(-1).astype(np.int8), corrected


def interleave(bits, depth: int) -> np.ndarray:
    """Block interleaver: write row-wise, read column-wise.

    Spreads a burst of up to ``depth`` adjacent channel errors across
    ``depth`` different code blocks.  The input is zero-padded to a
    multiple of ``depth``.
    """
    data = _as_bits(bits)
    if depth < 1:
        raise ValueError("depth must be positive")
    if depth == 1:
        return data.copy()
    pad = (-len(data)) % depth
    padded = np.concatenate([data, np.zeros(pad, dtype=np.int8)])
    return padded.reshape(-1, depth).T.reshape(-1).astype(np.int8)


def deinterleave(bits, depth: int, original_length: int) -> np.ndarray:
    """Inverse of :func:`interleave` (needs the pre-padding length)."""
    data = _as_bits(bits)
    if depth < 1:
        raise ValueError("depth must be positive")
    if original_length < 0 or original_length > len(data):
        raise ValueError("original length out of range")
    if depth == 1:
        return data[:original_length].copy()
    if len(data) % depth:
        raise ValueError("interleaved length must be a multiple of depth")
    rows = len(data) // depth
    restored = data.reshape(depth, rows).T.reshape(-1)
    return restored[:original_length].astype(np.int8)


def protect(bits, *, depth: int = 8) -> np.ndarray:
    """Payload-level pipeline: Hamming encode then interleave."""
    coded = hamming74_encode(bits)
    return interleave(coded, depth)


def recover(bits, *, depth: int = 8, data_bits: int | None = None) -> tuple[np.ndarray, int]:
    """Inverse of :func:`protect`: deinterleave, decode, trim.

    ``data_bits`` trims the zero padding the encoder added; when omitted
    the padded length is returned.
    """
    received = _as_bits(bits)
    coded_len = len(received) - ((-len(received)) % 1)
    deinterleaved = deinterleave(received, depth, coded_len)
    # Trim to a multiple of 7 (interleaver padding).
    usable = len(deinterleaved) - (len(deinterleaved) % 7)
    decoded, corrected = hamming74_decode(deinterleaved[:usable])
    if data_bits is not None:
        if data_bits > len(decoded):
            raise ValueError("data_bits exceeds decoded length")
        decoded = decoded[:data_bits]
    return decoded, corrected


def coded_length(data_bits: int, *, depth: int = 8) -> int:
    """Channel bits occupied by ``data_bits`` after protect()."""
    if data_bits < 0:
        raise ValueError("data_bits must be non-negative")
    padded = data_bits + ((-data_bits) % 4)
    coded = padded // 4 * 7
    return coded + ((-coded) % depth)
