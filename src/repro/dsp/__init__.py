"""Modem substrate: line codes, filters, framing, sync, demodulation.

Implements the complete PHY-layer signal chain of the paper:

* downlink — PWM line code decoded by envelope detection (Sec. 4.2.1),
* uplink — FM0 backscatter modulation with maximum-likelihood decoding,
  packet detection, CFO correction, and CRC verification (Sec. 5.1b),
* collision decoding — 2x2 frequency-diversity channel estimation and
  zero-forcing projection (Sec. 3.3.2).
"""

from repro.dsp.crc import crc8, crc16_ccitt, append_crc16, check_crc16
from repro.dsp.fm0 import (
    fm0_encode,
    fm0_decode_chips,
    fm0_expected_chips,
    fm0_ml_decode,
    CHIPS_PER_BIT,
)
from repro.dsp.pwm import PWMCode, pwm_encode, pwm_decode_edges
from repro.dsp.waveforms import (
    tone,
    upconvert_chips,
    downconvert,
    amplitude_modulated_carrier,
)
from repro.dsp.filters import (
    butter_lowpass,
    butter_bandpass,
    envelope_detect,
    decimate_to_rate,
)
from repro.dsp.packets import PacketFormat, Packet, DEFAULT_FORMAT
from repro.dsp.sync import (
    detect_packet,
    estimate_cfo,
    correct_cfo,
    preamble_correlation,
)
from repro.dsp.manchester import (
    manchester_encode,
    manchester_decode_chips,
    manchester_expected_chips,
)
from repro.dsp.coding import (
    hamming74_encode,
    hamming74_decode,
    interleave,
    deinterleave,
    protect,
    recover,
)
from repro.dsp.demod import BackscatterDemodulator, DemodResult
from repro.dsp.mimo import (
    estimate_channel_matrix,
    zero_forcing_decode,
    CollisionDecodeResult,
)
from repro.dsp.metrics import (
    snr_db,
    sinr_db,
    bit_error_rate,
    ebn0_from_snr_db,
)

__all__ = [
    "crc8",
    "crc16_ccitt",
    "append_crc16",
    "check_crc16",
    "fm0_encode",
    "fm0_decode_chips",
    "fm0_expected_chips",
    "fm0_ml_decode",
    "CHIPS_PER_BIT",
    "PWMCode",
    "pwm_encode",
    "pwm_decode_edges",
    "tone",
    "upconvert_chips",
    "downconvert",
    "amplitude_modulated_carrier",
    "butter_lowpass",
    "butter_bandpass",
    "envelope_detect",
    "decimate_to_rate",
    "PacketFormat",
    "Packet",
    "DEFAULT_FORMAT",
    "detect_packet",
    "estimate_cfo",
    "correct_cfo",
    "preamble_correlation",
    "manchester_encode",
    "manchester_decode_chips",
    "manchester_expected_chips",
    "hamming74_encode",
    "hamming74_decode",
    "interleave",
    "deinterleave",
    "protect",
    "recover",
    "BackscatterDemodulator",
    "DemodResult",
    "estimate_channel_matrix",
    "zero_forcing_decode",
    "CollisionDecodeResult",
    "snr_db",
    "sinr_db",
    "bit_error_rate",
    "ebn0_from_snr_db",
]
