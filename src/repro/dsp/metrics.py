"""Link-quality measurements: SNR, SINR, BER.

These mirror the paper's estimators (Sec. 6.1a): signal power is the
squared least-squares channel estimate against the known transmitted
sequence; noise (or noise-plus-interference) power is the mean squared
residual.
"""

from __future__ import annotations

import math

import numpy as np


def _channel_and_residual(received, reference) -> tuple[complex, float]:
    rx = np.asarray(received).ravel()
    ref = np.asarray(reference).ravel()
    n = min(len(rx), len(ref))
    if n == 0:
        raise ValueError("empty sequences")
    rx, ref = rx[:n], ref[:n]
    denom = float(np.real(np.vdot(ref, ref)))
    if denom == 0:
        raise ValueError("reference has no energy")
    h = complex(np.vdot(ref, rx)) / denom
    residual = float(np.mean(np.abs(rx - h * ref) ** 2))
    return h, residual


def snr_db(received, reference) -> float:
    """SNR [dB] of a received sequence against the known reference.

    Works for real or complex sequences: the channel estimate is the
    complex least-squares gain, and the residual is the mean squared
    error magnitude.
    """
    h, residual = _channel_and_residual(received, reference)
    if residual <= 0:
        return float("inf")
    return 10.0 * math.log10(abs(h) ** 2 / residual)


def sinr_db(received, reference) -> float:
    """SINR [dB] — identical estimator; the residual simply contains
    interference as well as noise when a collision is present."""
    return snr_db(received, reference)


def bit_error_rate(decoded_bits, true_bits) -> float:
    """Fraction of differing bits (compared over the common length)."""
    a = np.asarray(decoded_bits).ravel()
    b = np.asarray(true_bits).ravel()
    n = min(len(a), len(b))
    if n == 0:
        raise ValueError("empty bit sequences")
    errors = int(np.sum(a[:n] != b[:n]))
    # Bits missing entirely from the decoded stream count as errors.
    errors += abs(len(a) - len(b)) if len(b) > len(a) else 0
    return errors / max(len(b), n)


def eye_opening_stats(chip_amplitudes) -> dict:
    """Eye-opening statistics of (roughly zero-mean) bipolar chip amplitudes.

    The chip-rate analogue of an oscilloscope eye diagram: split the
    matched-filter outputs into the high and low rails by sign and
    measure how far apart — and how clean — the rails are.  Returns:

    ``rail_separation``
        Distance between the rail means (0 when a rail is empty — the
        signal never crossed zero, the eye is fully closed).
    ``noise_rms``
        Mean of the two rails' standard deviations.
    ``opening``
        Worst-case normalised eye opening in [<=0 closed, 1 perfect]:
        ``(rail_separation - 2 * noise_rms) / rail_separation``.
    ``first_closed_chip``
        Index of the first chip whose amplitude falls inside the noise
        band around zero (ambiguous decision), or ``-1`` if none do.
    ``closed_fraction``
        Fraction of chips inside that ambiguous band.
    ``n_chips``
        Number of chips analysed.

    Decode post-mortems quote these directly ("eye closed after chip
    41"); a clean high-SNR frame scores an opening near 1.
    """
    x = np.asarray(chip_amplitudes, dtype=float).ravel()
    if len(x) == 0:
        raise ValueError("empty chip sequence")
    x = x - float(np.mean(x))
    hi = x[x > 0]
    lo = x[x <= 0]
    if len(hi) == 0 or len(lo) == 0:
        return {
            "rail_separation": 0.0,
            "noise_rms": float(np.std(x)),
            "opening": 0.0,
            "first_closed_chip": 0,
            "closed_fraction": 1.0,
            "n_chips": int(len(x)),
        }
    separation = float(np.mean(hi) - np.mean(lo))
    noise = float((np.std(hi) + np.std(lo)) / 2.0)
    opening = (separation - 2.0 * noise) / separation if separation > 0 else 0.0
    closed = np.abs(x) < noise
    first_closed = int(np.argmax(closed)) if bool(np.any(closed)) else -1
    return {
        "rail_separation": separation,
        "noise_rms": noise,
        "opening": float(opening),
        "first_closed_chip": first_closed,
        "closed_fraction": float(np.mean(closed)),
        "n_chips": int(len(x)),
    }


def ebn0_from_snr_db(snr_db_value: float, bitrate: float, bandwidth_hz: float) -> float:
    """Convert SNR to Eb/N0 [dB] given occupied bandwidth."""
    if bitrate <= 0 or bandwidth_hz <= 0:
        raise ValueError("bitrate and bandwidth must be positive")
    return snr_db_value + 10.0 * math.log10(bandwidth_hz / bitrate)


def theoretical_fm0_ber(snr_db_value: float) -> float:
    """Reference BER of coherent biphase (FM0/Manchester) at a given SNR.

    BER = Q(sqrt(SNR)) with SNR as the per-chip amplitude ratio — used
    only as a sanity curve to compare measured BER-SNR sweeps against
    (paper Fig. 7 notes ~2 dB decode threshold, typical for biphase).
    """
    snr = 10.0 ** (snr_db_value / 10.0)
    return 0.5 * math.erfc(math.sqrt(snr / 2.0))
