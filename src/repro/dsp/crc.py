"""Cyclic redundancy checks for packet integrity.

The paper's receiver "can also use the CRC to perform a checksum on the
received packets and request retransmissions of corrupted packets"
(Sec. 5.1b).  We implement the two standard RFID-style checks: CRC-8
(polynomial 0x07) for short headers and CRC-16/CCITT-FALSE (polynomial
0x1021, init 0xFFFF) — the one EPC Gen2 uses — for payloads.
"""

from __future__ import annotations


def _to_bytes(data) -> bytes:
    if isinstance(data, (bytes, bytearray)):
        return bytes(data)
    if isinstance(data, str):
        return data.encode("utf-8")
    return bytes(data)


def crc8(data, *, polynomial: int = 0x07, init: int = 0x00) -> int:
    """CRC-8 of a byte string (ATM HEC polynomial by default)."""
    crc = init
    for byte in _to_bytes(data):
        crc ^= byte
        for _ in range(8):
            if crc & 0x80:
                crc = ((crc << 1) ^ polynomial) & 0xFF
            else:
                crc = (crc << 1) & 0xFF
    return crc


def crc16_ccitt(data, *, init: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE of a byte string (EPC Gen2 / XMODEM family)."""
    crc = init
    for byte in _to_bytes(data):
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


def append_crc16(data) -> bytes:
    """Return ``data`` with its big-endian CRC-16 appended."""
    payload = _to_bytes(data)
    crc = crc16_ccitt(payload)
    return payload + bytes([(crc >> 8) & 0xFF, crc & 0xFF])


def check_crc16(frame) -> bool:
    """Verify a frame produced by :func:`append_crc16`."""
    frame = _to_bytes(frame)
    if len(frame) < 2:
        return False
    expected = (frame[-2] << 8) | frame[-1]
    return crc16_ccitt(frame[:-2]) == expected
