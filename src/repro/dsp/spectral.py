"""Spectral analysis utilities: PSD, spectrogram, occupied bandwidth.

Offline analysis tooling for the waveform engine — the Python equivalent
of the Audacity + MATLAB inspection loop the paper's authors used on
their recordings (Sec. 5.1b).
"""

from __future__ import annotations

import numpy as np
from scipy import signal


def welch_psd(
    waveform,
    sample_rate: float,
    *,
    segment_s: float = 0.05,
):
    """Welch power spectral density estimate.

    Returns ``(frequencies_hz, psd)`` with the PSD in input-units^2/Hz.
    """
    x = np.asarray(waveform, dtype=float)
    if x.ndim != 1:
        raise ValueError("waveform must be one-dimensional")
    if sample_rate <= 0 or segment_s <= 0:
        raise ValueError("sample rate and segment must be positive")
    nperseg = min(max(int(segment_s * sample_rate), 16), len(x))
    freqs, psd = signal.welch(x, fs=sample_rate, nperseg=nperseg)
    return freqs, psd


def spectrogram(
    waveform,
    sample_rate: float,
    *,
    segment_s: float = 0.02,
    overlap: float = 0.5,
):
    """Short-time spectrogram; returns ``(freqs, times, power)``."""
    x = np.asarray(waveform, dtype=float)
    if x.ndim != 1:
        raise ValueError("waveform must be one-dimensional")
    if not 0.0 <= overlap < 1.0:
        raise ValueError("overlap must be in [0, 1)")
    nperseg = min(max(int(segment_s * sample_rate), 16), len(x))
    noverlap = int(nperseg * overlap)
    freqs, times, power = signal.spectrogram(
        x, fs=sample_rate, nperseg=nperseg, noverlap=noverlap
    )
    return freqs, times, power


def occupied_bandwidth(
    waveform,
    sample_rate: float,
    *,
    fraction: float = 0.99,
) -> float:
    """Bandwidth containing ``fraction`` of the signal power [Hz].

    The standard occupied-bandwidth measure: integrate the PSD outward
    from the strongest bin until the requested power fraction is
    enclosed.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be in (0, 1)")
    freqs, psd = welch_psd(waveform, sample_rate)
    total = float(np.sum(psd))
    if total <= 0:
        return 0.0
    centre = int(np.argmax(psd))
    lo = hi = centre
    acc = float(psd[centre])
    while acc < fraction * total and (lo > 0 or hi < len(psd) - 1):
        left = psd[lo - 1] if lo > 0 else -1.0
        right = psd[hi + 1] if hi < len(psd) - 1 else -1.0
        if right >= left:
            hi += 1
            acc += float(psd[hi])
        else:
            lo -= 1
            acc += float(psd[lo])
    return float(freqs[hi] - freqs[lo])


def peak_frequency(waveform, sample_rate: float) -> float:
    """Frequency of the strongest PSD bin [Hz]."""
    freqs, psd = welch_psd(waveform, sample_rate)
    return float(freqs[int(np.argmax(psd))])


def band_power_db(
    waveform,
    sample_rate: float,
    f_low_hz: float,
    f_high_hz: float,
) -> float:
    """Power within a band [dB re input-units^2]."""
    if not 0 <= f_low_hz < f_high_hz:
        raise ValueError("need 0 <= f_low < f_high")
    freqs, psd = welch_psd(waveform, sample_rate)
    mask = (freqs >= f_low_hz) & (freqs <= f_high_hz)
    power = float(np.trapezoid(psd[mask], freqs[mask])) if np.any(mask) else 0.0
    return 10.0 * np.log10(max(power, 1e-30))
