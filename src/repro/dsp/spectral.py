"""Spectral analysis utilities: PSD, spectrogram, occupied bandwidth.

Offline analysis tooling for the waveform engine — the Python equivalent
of the Audacity + MATLAB inspection loop the paper's authors used on
their recordings (Sec. 5.1b).
"""

from __future__ import annotations

import numpy as np
from scipy import signal


def welch_psd(
    waveform,
    sample_rate: float,
    *,
    segment_s: float = 0.05,
):
    """Welch power spectral density estimate.

    Returns ``(frequencies_hz, psd)`` with the PSD in input-units^2/Hz.
    """
    x = np.asarray(waveform, dtype=float)
    if x.ndim != 1:
        raise ValueError("waveform must be one-dimensional")
    if sample_rate <= 0 or segment_s <= 0:
        raise ValueError("sample rate and segment must be positive")
    nperseg = min(max(int(segment_s * sample_rate), 16), len(x))
    freqs, psd = signal.welch(x, fs=sample_rate, nperseg=nperseg)
    return freqs, psd


def spectrogram(
    waveform,
    sample_rate: float,
    *,
    segment_s: float = 0.02,
    overlap: float = 0.5,
):
    """Short-time spectrogram; returns ``(freqs, times, power)``."""
    x = np.asarray(waveform, dtype=float)
    if x.ndim != 1:
        raise ValueError("waveform must be one-dimensional")
    if not 0.0 <= overlap < 1.0:
        raise ValueError("overlap must be in [0, 1)")
    nperseg = min(max(int(segment_s * sample_rate), 16), len(x))
    noverlap = int(nperseg * overlap)
    freqs, times, power = signal.spectrogram(
        x, fs=sample_rate, nperseg=nperseg, noverlap=noverlap
    )
    return freqs, times, power


def occupied_bandwidth(
    waveform,
    sample_rate: float,
    *,
    fraction: float = 0.99,
) -> float:
    """Bandwidth containing ``fraction`` of the signal power [Hz].

    The standard occupied-bandwidth measure: integrate the PSD outward
    from the strongest bin until the requested power fraction is
    enclosed.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be in (0, 1)")
    freqs, psd = welch_psd(waveform, sample_rate)
    total = float(np.sum(psd))
    if total <= 0:
        return 0.0
    centre = int(np.argmax(psd))
    lo = hi = centre
    acc = float(psd[centre])
    while acc < fraction * total and (lo > 0 or hi < len(psd) - 1):
        left = psd[lo - 1] if lo > 0 else -1.0
        right = psd[hi + 1] if hi < len(psd) - 1 else -1.0
        if right >= left:
            hi += 1
            acc += float(psd[hi])
        else:
            lo -= 1
            acc += float(psd[lo])
    return float(freqs[hi] - freqs[lo])


def peak_frequency(waveform, sample_rate: float) -> float:
    """Frequency of the strongest PSD bin [Hz]."""
    freqs, psd = welch_psd(waveform, sample_rate)
    return float(freqs[int(np.argmax(psd))])


def band_power_db(
    waveform,
    sample_rate: float,
    f_low_hz: float,
    f_high_hz: float,
) -> float:
    """Power within a band [dB re input-units^2]."""
    if not 0 <= f_low_hz < f_high_hz:
        raise ValueError("need 0 <= f_low < f_high")
    freqs, psd = welch_psd(waveform, sample_rate)
    mask = (freqs >= f_low_hz) & (freqs <= f_high_hz)
    power = float(np.trapezoid(psd[mask], freqs[mask])) if np.any(mask) else 0.0
    return 10.0 * np.log10(max(power, 1e-30))


def band_snr_db(
    waveform,
    sample_rate: float,
    f_low_hz: float,
    f_high_hz: float,
) -> float:
    """In-band vs out-of-band PSD ratio [dB] — a stage-level SNR proxy.

    Compares the *mean PSD* inside ``[f_low, f_high]`` against the mean
    PSD of the rest of the spectrum, so the figure is independent of how
    wide each region is.  Signal probes use it to quote a per-stage SNR
    for intermediate waveforms (incident pressure at the node, the
    hydrophone mixture) where no reference sequence exists yet.
    """
    if not 0 <= f_low_hz < f_high_hz:
        raise ValueError("need 0 <= f_low < f_high")
    freqs, psd = welch_psd(waveform, sample_rate)
    mask = (freqs >= f_low_hz) & (freqs <= f_high_hz)
    if not np.any(mask) or np.all(mask):
        return float("nan")
    in_band = float(np.mean(psd[mask]))
    out_band = float(np.mean(psd[~mask]))
    return 10.0 * np.log10(max(in_band, 1e-30) / max(out_band, 1e-30))


def symbol_timing_estimate(
    modulation,
    chip_rate: float,
    sample_rate: float,
) -> dict:
    """Chip-timing diagnostics via the squaring (chip-rate line) method.

    Squaring a bipolar chip waveform produces a spectral line at the
    chip rate whose phase encodes the timing offset of the chip
    boundaries — the classic non-data-aided symbol timing estimator.
    Returns a dict:

    ``timing_offset_chips``
        Position of the chip boundaries relative to the start of the
        segment, in [-0.5, 0.5) chips; zero means the chip grid is
        aligned to the segment, and large magnitudes mean the matched
        filter integrates across chip boundaries.
    ``line_strength``
        Magnitude of the chip-rate line relative to the DC (total
        energy) term, in [0, 1]; near zero means there is no coherent
        chip structure to lock to (noise, or a dead signal).

    The method needs band-limited chips: squaring an ideal rectangular
    bipolar waveform yields a constant, which carries no chip-rate
    line. Real receive chains (and this pipeline's modulation path)
    are band-limited, so the squared envelope dips at chip transitions
    and the line is present.
    """
    x = np.asarray(modulation, dtype=float)
    if x.ndim != 1:
        raise ValueError("modulation must be one-dimensional")
    if chip_rate <= 0 or sample_rate <= 0:
        raise ValueError("chip rate and sample rate must be positive")
    if 2.0 * chip_rate > sample_rate:
        raise ValueError("chip rate above Nyquist")
    nan = {"timing_offset_chips": float("nan"), "line_strength": 0.0}
    if len(x) < int(2 * sample_rate / chip_rate):
        return nan
    squared = x**2
    total = float(np.sum(squared))
    if total <= 0:
        return nan
    n = np.arange(len(squared))
    line = complex(
        np.sum(squared * np.exp(-2j * np.pi * chip_rate * n / sample_rate))
    )
    strength = abs(line) / total
    # The squared envelope dips at chip transitions, so the chip-rate
    # line has phase pi when the boundaries sit on the segment start.
    # Rebase so offset 0 means an aligned grid, advance one chip per
    # chip of delay, and wrap to half a chip either side.
    offset = (1.0 - float(np.angle(line)) / (2.0 * np.pi)) % 1.0 - 0.5
    return {"timing_offset_chips": offset, "line_strength": float(strength)}
