"""Filtering and envelope detection.

The paper's receiver "employs a Butterworth filter on each of the receive
channels to isolate the signal of interest and reduce interference from
concurrent transmissions" (Sec. 5.1b); the node's downlink decoder is a
bare envelope detector (Sec. 4.2.1).
"""

from __future__ import annotations

import numpy as np
from scipy import signal

from repro.perf.cache import get_cache
from repro.perf.kernels import smart_convolve


def _butter_sos(
    order: int, cutoff, sample_rate: float, btype: str
) -> np.ndarray:
    """Cached Butterworth SOS design.

    ``signal.butter`` re-solves the analog prototype and bilinear
    transform on every call (~7 ms for order 4); the receiver designs
    the same handful of filters for every transaction, so the SOS
    matrices are memoized by their full design key.  The cached matrix
    is frozen read-only, and scipy's ``sosfilt`` kernel requires a
    writable buffer, so callers get a fresh copy (a few dozen floats).
    """
    key = (order, cutoff, sample_rate, btype)
    return get_cache("fir_kernels").get_or_compute(
        key,
        lambda: signal.butter(
            order, list(cutoff) if btype == "band" else cutoff,
            btype=btype, fs=sample_rate, output="sos",
        ),
    ).copy()


def butter_lowpass(
    waveform,
    cutoff_hz: float,
    sample_rate: float,
    *,
    order: int = 4,
) -> np.ndarray:
    """Zero-phase Butterworth low-pass filter (works on complex data).

    Accepts a 1-D waveform or an (N, samples) stack filtered along the
    last axis; ``sosfiltfilt`` along ``axis=-1`` is bit-identical to the
    per-row 1-D call, so the batched engine shares this code path.
    """
    x = np.asarray(waveform)
    if x.ndim not in (1, 2):
        raise ValueError("waveform must be 1-D or an (N, samples) stack")
    if not 0 < cutoff_hz < sample_rate / 2:
        raise ValueError("cutoff must be in (0, Nyquist)")
    if order < 1:
        raise ValueError("order must be >= 1")
    sos = _butter_sos(order, float(cutoff_hz), float(sample_rate), "low")
    if np.iscomplexobj(x):
        return (
            signal.sosfiltfilt(sos, x.real, axis=-1)
            + 1j * signal.sosfiltfilt(sos, x.imag, axis=-1)
        )
    return signal.sosfiltfilt(sos, x, axis=-1)


def butter_bandpass(
    waveform,
    low_hz: float,
    high_hz: float,
    sample_rate: float,
    *,
    order: int = 4,
) -> np.ndarray:
    """Zero-phase Butterworth band-pass filter (1-D or (N, samples))."""
    x = np.asarray(waveform)
    if x.ndim not in (1, 2):
        raise ValueError("waveform must be 1-D or an (N, samples) stack")
    if not 0 < low_hz < high_hz < sample_rate / 2:
        raise ValueError("need 0 < low < high < Nyquist")
    if order < 1:
        raise ValueError("order must be >= 1")
    sos = _butter_sos(
        order, (float(low_hz), float(high_hz)), float(sample_rate), "band"
    )
    if np.iscomplexobj(x):
        return (
            signal.sosfiltfilt(sos, x.real, axis=-1)
            + 1j * signal.sosfiltfilt(sos, x.imag, axis=-1)
        )
    return signal.sosfiltfilt(sos, x, axis=-1)


def envelope_detect(
    waveform,
    carrier_hz: float,
    sample_rate: float,
    *,
    cutoff_hz: float | None = None,
) -> np.ndarray:
    """Diode-style envelope detection of an amplitude-modulated carrier.

    Rectify (absolute value) then low-pass at ``cutoff_hz`` (default: a
    tenth of the carrier), scaled so a unit-amplitude steady tone yields
    an envelope of ~1.  This is the node-side PWM detector.
    """
    x = np.asarray(waveform, dtype=float)
    if x.ndim not in (1, 2):
        raise ValueError("waveform must be 1-D or an (N, samples) stack")
    if carrier_hz <= 0:
        raise ValueError("carrier must be positive")
    if cutoff_hz is None:
        cutoff_hz = carrier_hz / 10.0
    rectified = np.abs(x)
    smoothed = butter_lowpass(rectified, cutoff_hz, sample_rate)
    # A full-wave-rectified unit sine averages 2/pi.
    return smoothed * (np.pi / 2.0)


def decimate_to_rate(
    waveform,
    sample_rate: float,
    target_rate: float,
) -> tuple[np.ndarray, float]:
    """Integer-factor decimation to approximately ``target_rate``.

    Returns ``(decimated, actual_rate)``.  Anti-alias filtering is
    applied for real signals; complex signals are filtered per part.
    """
    x = np.asarray(waveform)
    if x.ndim != 1:
        raise ValueError("waveform must be one-dimensional")
    if target_rate <= 0 or sample_rate <= 0:
        raise ValueError("rates must be positive")
    factor = max(int(sample_rate // target_rate), 1)
    if factor == 1:
        return x.copy(), sample_rate
    if np.iscomplexobj(x):
        real = signal.decimate(x.real, factor, zero_phase=True)
        imag = signal.decimate(x.imag, factor, zero_phase=True)
        return real + 1j * imag, sample_rate / factor
    return signal.decimate(x, factor, zero_phase=True), sample_rate / factor


def matched_filter_chip(
    baseband,
    samples_per_chip: int,
) -> np.ndarray:
    """Integrate-and-dump matched filter for rectangular chips.

    Convolves with a length-``samples_per_chip`` boxcar normalised to unit
    gain; the output at chip centres is the per-chip mean amplitude.
    """
    x = np.asarray(baseband)
    if x.ndim != 1:
        raise ValueError("baseband must be one-dimensional")
    if samples_per_chip < 1:
        raise ValueError("samples_per_chip must be >= 1")
    kernel = np.ones(samples_per_chip) / samples_per_chip
    return smart_convolve(x, kernel, mode="same")
