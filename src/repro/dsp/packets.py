"""Packet framing for uplink and downlink.

Both directions use the same generic frame (Sec. 3.3.2: "the uplink
backscatter packet consists of a preamble, a header, and a payload"):

    [ preamble | address (8) | length (8) | payload bytes | CRC-16 ]

The preamble is a fixed bit pattern with good autocorrelation (a Barker
sequence by default; the paper's downlink uses a 9-bit preamble, which is
provided as :data:`DOWNLINK_PREAMBLE`).  Length is the number of payload
bytes.  The CRC-16 covers address, length, and payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsp.crc import crc16_ccitt

#: Barker-13 — the default uplink preamble (excellent autocorrelation).
BARKER_13 = (1, 1, 1, 1, 1, 0, 0, 1, 1, 0, 1, 0, 1)

#: The paper's 9-bit downlink preamble (Sec. 5.1a).
DOWNLINK_PREAMBLE = (1, 1, 1, 0, 1, 0, 0, 1, 0)

#: Uplink preambles for concurrent nodes.  Entry 0 is Barker-13; the
#: others were searched for minimal FM0-chip cross-correlation against it
#: (orthogonal training lets the collision decoder estimate each node's
#: channel column, the RFID analogue of distinct RN16s).
PREAMBLE_BANK = (
    BARKER_13,
    (1, 1, 1, 0, 1, 1, 1, 0, 0, 0, 1, 1, 0),
)

#: Longer (40-bit) preamble pair for concurrent collision decoding: the
#: MIMO equaliser needs enough training chips to fit its taps, and these
#: two sequences have exactly orthogonal FM0 chip expansions with low
#: lagged cross-correlation.
CONCURRENT_PREAMBLES = (
    (1, 0, 1, 0, 1, 0, 1, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0,
     1, 1, 0, 1, 0, 1, 1, 1, 1, 0, 0, 1, 1, 0, 1, 0, 1, 0, 1, 1),
    (1, 1, 1, 1, 1, 1, 1, 1, 0, 1, 1, 1, 1, 1, 0, 1, 1, 1, 0, 0,
     0, 1, 0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1),
    (0, 1, 0, 0, 1, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1, 0, 1, 1, 1,
     1, 1, 1, 1, 1, 0, 1, 0, 0, 1, 1, 0, 1, 1, 0, 0, 1, 0, 0, 0),
)

#: Broadcast address: all nodes accept.
BROADCAST_ADDRESS = 0xFF


def bytes_to_bits(data: bytes) -> np.ndarray:
    """MSB-first bit expansion of a byte string."""
    if len(data) == 0:
        return np.zeros(0, dtype=np.int8)
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.unpackbits(arr).astype(np.int8)


def bits_to_bytes(bits) -> bytes:
    """Inverse of :func:`bytes_to_bits`; length must be a multiple of 8."""
    arr = np.asarray(bits)
    if arr.ndim != 1:
        raise ValueError("bits must be one-dimensional")
    if len(arr) % 8:
        raise ValueError("bit count must be a multiple of 8")
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ValueError("bits must be 0 or 1")
    return np.packbits(arr.astype(np.uint8)).tobytes()


class FramingError(ValueError):
    """Raised when a bit stream cannot be parsed into a valid packet."""


@dataclass(frozen=True)
class PacketFormat:
    """Frame layout parameters.

    Attributes
    ----------
    preamble:
        The known preamble bit pattern.
    address_bits, length_bits:
        Header field widths (8/8 by default).
    max_payload_bytes:
        Upper bound implied by the length field.
    """

    preamble: tuple = BARKER_13
    address_bits: int = 8
    length_bits: int = 8

    def __post_init__(self) -> None:
        if len(self.preamble) < 4:
            raise ValueError("preamble too short to synchronise on")
        if any(b not in (0, 1) for b in self.preamble):
            raise ValueError("preamble must be binary")
        if self.address_bits != 8 or self.length_bits != 8:
            raise ValueError("this implementation uses byte-aligned headers")

    @property
    def max_payload_bytes(self) -> int:
        return (1 << self.length_bits) - 1

    @property
    def preamble_bits(self) -> np.ndarray:
        return np.asarray(self.preamble, dtype=np.int8)

    def overhead_bits(self) -> int:
        """Bits added around the payload (preamble + header + CRC)."""
        return len(self.preamble) + self.address_bits + self.length_bits + 16

    def frame_bits(self, packet: "Packet") -> int:
        """Total frame length in bits."""
        return self.overhead_bits() + 8 * len(packet.payload)


@dataclass(frozen=True)
class Packet:
    """An application packet.

    Attributes
    ----------
    address:
        Destination (downlink) or source (uplink) node address, 0-255.
    payload:
        Raw payload bytes.
    """

    address: int
    payload: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.address <= 0xFF:
            raise ValueError("address must fit in one byte")
        object.__setattr__(self, "payload", bytes(self.payload))

    def to_bits(self, fmt: "PacketFormat" = None) -> np.ndarray:
        """Serialise to the frame bit sequence (preamble included)."""
        fmt = fmt if fmt is not None else DEFAULT_FORMAT
        if len(self.payload) > fmt.max_payload_bytes:
            raise ValueError("payload too long for the length field")
        body = bytes([self.address, len(self.payload)]) + self.payload
        crc = crc16_ccitt(body)
        frame = body + bytes([(crc >> 8) & 0xFF, crc & 0xFF])
        return np.concatenate([fmt.preamble_bits, bytes_to_bits(frame)])

    @classmethod
    def from_bits(cls, bits, fmt: "PacketFormat" = None) -> "Packet":
        """Parse a frame whose first bit is the first preamble bit.

        Raises :class:`FramingError` on any inconsistency (bad preamble,
        truncated frame, CRC failure).
        """
        fmt = fmt if fmt is not None else DEFAULT_FORMAT
        arr = np.asarray(bits).astype(np.int8)
        n_pre = len(fmt.preamble)
        if len(arr) < fmt.overhead_bits():
            raise FramingError("frame shorter than minimum")
        if not np.array_equal(arr[:n_pre], fmt.preamble_bits):
            raise FramingError("preamble mismatch")
        header = bits_to_bytes(arr[n_pre : n_pre + 16])
        address, length = header[0], header[1]
        total = fmt.overhead_bits() + 8 * length
        if len(arr) < total:
            raise FramingError("frame truncated")
        body_bits = arr[n_pre : n_pre + 16 + 8 * length + 16]
        frame = bits_to_bytes(body_bits)
        body, crc_bytes = frame[:-2], frame[-2:]
        expected = (crc_bytes[0] << 8) | crc_bytes[1]
        if crc16_ccitt(body) != expected:
            raise FramingError("CRC mismatch")
        return cls(address=address, payload=body[2:])


#: The library-wide default frame layout.
DEFAULT_FORMAT = PacketFormat()
