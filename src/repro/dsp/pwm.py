"""PWM line code for the downlink (projector -> node).

The paper encodes downlink bits as pulse widths — "a larger pulse width
corresponds to a '1' bit and a shorter pulse width corresponds to a '0'
bit" with the '1' twice as long as the '0' (Sec. 5.1a).  PWM was chosen
because the node can decode it with a bare envelope detector and a timer
(Sec. 4.2.1): the MCU measures the interval between falling edges.

A symbol here is ``on`` time (carrier present) followed by a fixed
``gap`` (carrier absent):

    '0'  ->  on for T,  off for T_gap
    '1'  ->  on for 2T, off for T_gap

Decoding needs only the sequence of falling-edge intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PWMCode:
    """Timing parameters of the PWM downlink code.

    Parameters
    ----------
    short_s:
        Carrier-on duration of a '0' [s].
    long_s:
        Carrier-on duration of a '1' [s]; the paper uses twice the short.
    gap_s:
        Carrier-off duration between pulses [s].  Must exceed the
        channel's reverberation tail for the envelope to drop between
        pulses; the defaults are sized for the paper's enclosed tanks.
    """

    short_s: float = 5e-3
    long_s: float = 10e-3
    gap_s: float = 8e-3

    def __post_init__(self) -> None:
        if not 0 < self.short_s < self.long_s:
            raise ValueError("need 0 < short < long")
        if self.gap_s <= 0:
            raise ValueError("gap must be positive")

    def symbol_duration(self, bit: int) -> float:
        """Total duration of one symbol [s]."""
        return (self.long_s if bit else self.short_s) + self.gap_s

    def frame_duration(self, bits) -> float:
        """Duration of a whole bit sequence [s]."""
        return float(sum(self.symbol_duration(int(b)) for b in np.asarray(bits)))

    def frame_samples(self, bits, sample_rate: float) -> int:
        """Exact sample count of :func:`pwm_encode` for ``bits``.

        Mirrors the encoder's per-symbol rounding (each on/gap segment
        rounds independently, clamped to >= 1 sample), so the batched
        engine can group same-shape downlink envelopes without
        synthesising the waveforms first.
        """
        if sample_rate <= 0:
            raise ValueError("sample rate must be positive")
        total = 0
        gap = max(int(round(self.gap_s * sample_rate)), 1)
        for bit in np.asarray(bits):
            on = self.long_s if bit else self.short_s
            total += max(int(round(on * sample_rate)), 1) + gap
        return total

    @property
    def decision_threshold_s(self) -> float:
        """Edge-interval threshold separating '0' from '1'."""
        return (self.short_s + self.long_s) / 2.0 + self.gap_s

    @property
    def mean_bit_rate(self) -> float:
        """Average bit rate for balanced data [bit/s]."""
        mean_t = (self.symbol_duration(0) + self.symbol_duration(1)) / 2.0
        return 1.0 / mean_t

    @property
    def harvest_duty_cycle(self) -> float:
        """Fraction of time the carrier is on for balanced data.

        The paper notes PWM "provides ample opportunities for energy
        harvesting" — the carrier is on most of the time.
        """
        on = (self.short_s + self.long_s) / 2.0
        return on / (on + self.gap_s)


def pwm_encode(bits, code: PWMCode, sample_rate: float) -> np.ndarray:
    """On/off keying envelope (values 0/1) for a bit sequence.

    The projector multiplies this envelope by its carrier.
    """
    if sample_rate <= 0:
        raise ValueError("sample rate must be positive")
    data = np.asarray(bits)
    if data.ndim != 1:
        raise ValueError("bits must be one-dimensional")
    if data.size and not np.all((data == 0) | (data == 1)):
        raise ValueError("bits must be 0 or 1")
    chunks = []
    for bit in data:
        on = code.long_s if bit else code.short_s
        chunks.append(np.ones(max(int(round(on * sample_rate)), 1)))
        chunks.append(np.zeros(max(int(round(code.gap_s * sample_rate)), 1)))
    if not chunks:
        return np.zeros(0)
    return np.concatenate(chunks)


def pwm_decode_edges(
    edge_times_s, polarities, code: PWMCode, *, adaptive: bool = True
) -> np.ndarray:
    """Decode bits from envelope edge times and polarities.

    This mirrors the MCU firmware (Sec. 4.2.2): a timer measures the
    carrier-on duration between each rising edge (+1) and the following
    falling edge (-1); comparing it to a threshold yields the bit.
    Unpaired or out-of-order edges are skipped, which makes the decoder
    robust to noise glitches.

    With ``adaptive=True`` the decision threshold is re-learned from the
    measured durations themselves (midpoint of the shortest and longest
    pulse).  Reverberant channels delay every falling edge by roughly the
    same tail time, biasing all widths by a constant — the preamble
    guarantees both symbols appear, so the adaptive midpoint cancels the
    bias exactly, where the nominal midpoint would misread every pulse.
    """
    times = np.asarray(edge_times_s, dtype=float)
    pols = np.asarray(polarities)
    if times.shape != pols.shape or times.ndim != 1:
        raise ValueError("edge times and polarities must be matching 1-D arrays")
    durations = []
    rise_time: float | None = None
    for t, p in zip(times, pols):
        if p > 0:
            rise_time = t
        elif rise_time is not None:
            on = t - rise_time
            # Ignore glitch pulses much shorter than a '0'.
            if on > 0.25 * code.short_s:
                durations.append(on)
            rise_time = None
    if not durations:
        return np.zeros(0, dtype=np.int8)
    threshold = (code.short_s + code.long_s) / 2.0
    if adaptive:
        spread = max(durations) - min(durations)
        # Both symbols present: re-centre between the clusters.
        if spread > 0.5 * (code.long_s - code.short_s):
            threshold = (max(durations) + min(durations)) / 2.0
    return np.array(
        [1 if on > threshold else 0 for on in durations], dtype=np.int8
    )


def pwm_decode_envelope(
    envelope, code: PWMCode, sample_rate: float, *, threshold: float = 0.5
) -> np.ndarray:
    """Convenience: slice an analog envelope at ``threshold`` and decode.

    The node's real decode path goes through the Schmitt trigger model in
    :mod:`repro.circuits.schmitt`; this helper is for tests and offline
    analysis.
    """
    env = np.asarray(envelope, dtype=float)
    if env.ndim != 1:
        raise ValueError("envelope must be one-dimensional")
    high = env >= threshold
    diff = np.diff(high.astype(np.int8))
    edge_idx = np.nonzero(diff)[0] + 1
    times = edge_idx / sample_rate
    pols = diff[edge_idx - 1]
    if len(env) and high[0]:
        # The envelope starts mid-pulse: synthesise the rising edge at t=0.
        times = np.concatenate([[0.0], times])
        pols = np.concatenate([[1], pols])
    return pwm_decode_edges(times, pols, code)
