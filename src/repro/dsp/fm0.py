"""FM0 (bi-phase space) line coding for the backscatter uplink.

The paper adopts FM0 on the uplink (Sec. 3.2) because the guaranteed
level transition at every bit boundary lets the receiver delineate bits
robustly.  Encoding rules (EPC Gen2 convention):

* the signal level inverts at **every** bit boundary;
* a ``0`` bit additionally inverts in the **middle** of the bit;
* a ``1`` bit holds its level for the whole bit.

Each bit therefore occupies two half-bit *chips*.  The backscatter switch
drives the transducer with exactly this chip sequence (chip value 1 =
reflective state).
"""

from __future__ import annotations

import numpy as np

#: FM0 spends two chips (half-bits) per data bit.
CHIPS_PER_BIT = 2


def _as_bit_array(bits) -> np.ndarray:
    arr = np.asarray(bits)
    if arr.ndim != 1:
        raise ValueError("bits must be one-dimensional")
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ValueError("bits must be 0 or 1")
    return arr.astype(np.int8)


def fm0_encode(bits, *, initial_level: int = 1) -> np.ndarray:
    """Encode data bits into an FM0 chip sequence (values 0/1).

    ``initial_level`` is the line level *before* the first bit; the first
    chip is its inversion (boundary transition).
    """
    data = _as_bit_array(bits)
    if initial_level not in (0, 1):
        raise ValueError("initial level must be 0 or 1")
    chips = np.empty(2 * len(data), dtype=np.int8)
    level = initial_level
    for i, bit in enumerate(data):
        level ^= 1  # invert at the bit boundary
        chips[2 * i] = level
        if bit == 0:
            level ^= 1  # additional mid-bit inversion for '0'
        chips[2 * i + 1] = level
    return chips


def fm0_decode_chips(chips, *, soft: bool = False):
    """Decode an FM0 chip sequence back to bits.

    For hard chips (0/1) or soft chip amplitudes (any real values, higher
    = reflective state).  A bit is ``1`` when its two half-bit chips
    agree, ``0`` when they differ; with ``soft=True`` the decision margin
    ``-(x0 - x1)^2 + const`` is replaced by the correlation-based soft
    metric and the function returns ``(bits, margins)``.
    """
    x = np.asarray(chips, dtype=float)
    if x.ndim != 1:
        raise ValueError("chips must be one-dimensional")
    if len(x) % CHIPS_PER_BIT != 0:
        raise ValueError("chip count must be even")
    first = x[0::2]
    second = x[1::2]
    # Same sign / level across the two halves -> '1'; opposite -> '0'.
    diff = np.abs(first - second)
    scale = np.std(x) if np.std(x) > 0 else 1.0
    bits = (diff < scale).astype(np.int8)
    if not soft:
        return bits
    margins = np.abs(diff - scale) / scale
    return bits, margins


def fm0_expected_chips(bits, *, initial_level: int = 1) -> np.ndarray:
    """Bipolar (+1/-1) template of the FM0 waveform for correlation.

    Used to build preamble-matched filters: reflective chips map to +1 and
    absorptive chips to -1.
    """
    chips = fm0_encode(bits, initial_level=initial_level)
    return chips.astype(float) * 2.0 - 1.0


#: Branch chip templates, row k = 2*s_in + bit.  Entering level s_in
#: inverts at the boundary (first chip = 1 - s_in) and a '0' bit
#: inverts again mid-bit:
#:   k=0 (s_in=0, bit=0) -> chips (+1, -1), exit level 0
#:   k=1 (s_in=0, bit=1) -> chips (+1, +1), exit level 1
#:   k=2 (s_in=1, bit=0) -> chips (-1, +1), exit level 1
#:   k=3 (s_in=1, bit=1) -> chips (-1, -1), exit level 0
_FM0_BRANCH = np.array([[1.0, -1.0], [1.0, 1.0], [-1.0, 1.0], [-1.0, -1.0]])
_FM0_BRANCH.setflags(write=False)


def fm0_branch_metrics(chip_pairs) -> np.ndarray:
    """Squared-error branch metrics against the four FM0 transitions.

    ``chip_pairs`` is ``(..., n_bits, 2)`` — one row of chip-amplitude
    pairs per frame, so a whole fleet's frames can be scored as one
    ``(N, n_bits, 2)`` einsum (the FM0 matrix correlation of the
    batched engine).  ``out[..., i, k]`` is the metric of branch *k*
    for bit *i*: ``(x[2i] - c0)^2 + (x[2i+1] - c1)^2``.  The reduction
    is a fixed two-term sum per entry, so batched and per-frame calls
    are bit-identical.
    """
    pairs = np.asarray(chip_pairs, dtype=float)
    if pairs.ndim < 2 or pairs.shape[-1] != CHIPS_PER_BIT:
        raise ValueError("chip_pairs must have shape (..., n_bits, 2)")
    delta = pairs[..., None, :] - _FM0_BRANCH
    return np.einsum("...kc,...kc->...k", delta, delta)


def fm0_ml_decode(chip_amplitudes, *, initial_level: int = 1) -> np.ndarray:
    """Maximum-likelihood sequence decoding of noisy FM0 chip amplitudes.

    FM0 has memory (the boundary-inversion rule couples adjacent bits), so
    exact ML decoding is a two-state Viterbi over the line level.  States
    are the level entering the bit; each bit hypothesis predicts two chip
    polarities.  ``chip_amplitudes`` should be roughly zero-mean (positive
    = reflective).  Returns the decoded bits.
    """
    x = np.asarray(chip_amplitudes, dtype=float)
    if x.ndim != 1 or len(x) % 2:
        raise ValueError("need a flat, even-length chip array")
    n_bits = len(x) // 2
    if n_bits == 0:
        return np.zeros(0, dtype=np.int8)
    # Normalise amplitude so metrics are comparable.
    scale = np.max(np.abs(x))
    if scale > 0:
        x = x / scale

    # All branch metrics for every bit in one shot: err[i, k] =
    # (x[2i] - c0)^2 + (x[2i+1] - c1)^2, identical to the scalar form.
    errs = fm0_branch_metrics(x.reshape(n_bits, CHIPS_PER_BIT))

    # Two-state trellis over the precomputed metrics.  Transitions into
    # state 0 are branches k=0 (from state 0) and k=3 (from state 1);
    # into state 1, k=1 (from state 0) and k=2 (from state 1).  Strict
    # comparison keeps the earlier branch on ties, matching the original
    # scan order k=0..3.
    cost0, cost1 = (
        (0.0, 1e-3) if initial_level == 0 else (1e-3, 0.0)
    )
    # The recursion is sequential, so the hot loop runs on plain Python
    # floats and lists: ``tolist`` yields the same IEEE doubles as the
    # ndarray, and the adds/compares below are the same scalar ops in
    # the same order, so the decode is bit-identical to the ndarray
    # form at a fraction of the per-element indexing cost.
    e0, e1, e2, e3 = (
        errs[:, 0].tolist(), errs[:, 1].tolist(),
        errs[:, 2].tolist(), errs[:, 3].tolist(),
    )
    back0 = [0] * n_bits  # winning s_in per state
    back1 = [0] * n_bits
    for i in range(n_bits):
        into0_a = cost0 + e0[i]
        into0_b = cost1 + e3[i]
        into1_a = cost0 + e1[i]
        into1_b = cost1 + e2[i]
        if into0_b < into0_a:
            new0 = into0_b
            back0[i] = 1
        else:
            new0 = into0_a
        if into1_b < into1_a:
            new1 = into1_b
            back1[i] = 1
        else:
            new1 = into1_a
        cost0, cost1 = new0, new1
    cost = [cost0, cost1]
    # Trace back from the better final state.  The data bit of each
    # winning transition follows from its (s_in, s_out) pair: exiting to
    # state 0 means bit = s_in == 0 ? 0 : 1; to state 1 the reverse.
    # (``cost0 <= cost1`` picks state 0 on ties, as argmin did.)
    state = 0 if cost0 <= cost1 else 1
    decoded = [0] * n_bits
    for i in range(n_bits - 1, -1, -1):
        if state == 0:
            s_in = back0[i]
            decoded[i] = s_in
        else:
            s_in = back1[i]
            decoded[i] = 1 - s_in
        state = s_in
    bits = np.array(decoded, dtype=np.int8)
    from repro.obs.probe import get_probes

    probes = get_probes()
    if probes.wants("fm0.decode"):
        # Path cost per chip of the winning sequence: 0 for a clean
        # frame, ~1 at the decode threshold, ~2+ for noise-only input.
        path_cost = float(np.min(cost))
        probes.capture(
            "fm0.decode", "chips", waveform=x,
            n_bits=n_bits, path_cost=path_cost,
            cost_per_chip=path_cost / len(x),
        )
    return bits
