"""FM0 (bi-phase space) line coding for the backscatter uplink.

The paper adopts FM0 on the uplink (Sec. 3.2) because the guaranteed
level transition at every bit boundary lets the receiver delineate bits
robustly.  Encoding rules (EPC Gen2 convention):

* the signal level inverts at **every** bit boundary;
* a ``0`` bit additionally inverts in the **middle** of the bit;
* a ``1`` bit holds its level for the whole bit.

Each bit therefore occupies two half-bit *chips*.  The backscatter switch
drives the transducer with exactly this chip sequence (chip value 1 =
reflective state).
"""

from __future__ import annotations

import numpy as np

#: FM0 spends two chips (half-bits) per data bit.
CHIPS_PER_BIT = 2


def _as_bit_array(bits) -> np.ndarray:
    arr = np.asarray(bits)
    if arr.ndim != 1:
        raise ValueError("bits must be one-dimensional")
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ValueError("bits must be 0 or 1")
    return arr.astype(np.int8)


def fm0_encode(bits, *, initial_level: int = 1) -> np.ndarray:
    """Encode data bits into an FM0 chip sequence (values 0/1).

    ``initial_level`` is the line level *before* the first bit; the first
    chip is its inversion (boundary transition).
    """
    data = _as_bit_array(bits)
    if initial_level not in (0, 1):
        raise ValueError("initial level must be 0 or 1")
    chips = np.empty(2 * len(data), dtype=np.int8)
    level = initial_level
    for i, bit in enumerate(data):
        level ^= 1  # invert at the bit boundary
        chips[2 * i] = level
        if bit == 0:
            level ^= 1  # additional mid-bit inversion for '0'
        chips[2 * i + 1] = level
    return chips


def fm0_decode_chips(chips, *, soft: bool = False):
    """Decode an FM0 chip sequence back to bits.

    For hard chips (0/1) or soft chip amplitudes (any real values, higher
    = reflective state).  A bit is ``1`` when its two half-bit chips
    agree, ``0`` when they differ; with ``soft=True`` the decision margin
    ``-(x0 - x1)^2 + const`` is replaced by the correlation-based soft
    metric and the function returns ``(bits, margins)``.
    """
    x = np.asarray(chips, dtype=float)
    if x.ndim != 1:
        raise ValueError("chips must be one-dimensional")
    if len(x) % CHIPS_PER_BIT != 0:
        raise ValueError("chip count must be even")
    first = x[0::2]
    second = x[1::2]
    # Same sign / level across the two halves -> '1'; opposite -> '0'.
    diff = np.abs(first - second)
    scale = np.std(x) if np.std(x) > 0 else 1.0
    bits = (diff < scale).astype(np.int8)
    if not soft:
        return bits
    margins = np.abs(diff - scale) / scale
    return bits, margins


def fm0_expected_chips(bits, *, initial_level: int = 1) -> np.ndarray:
    """Bipolar (+1/-1) template of the FM0 waveform for correlation.

    Used to build preamble-matched filters: reflective chips map to +1 and
    absorptive chips to -1.
    """
    chips = fm0_encode(bits, initial_level=initial_level)
    return chips.astype(float) * 2.0 - 1.0


def fm0_ml_decode(chip_amplitudes, *, initial_level: int = 1) -> np.ndarray:
    """Maximum-likelihood sequence decoding of noisy FM0 chip amplitudes.

    FM0 has memory (the boundary-inversion rule couples adjacent bits), so
    exact ML decoding is a two-state Viterbi over the line level.  States
    are the level entering the bit; each bit hypothesis predicts two chip
    polarities.  ``chip_amplitudes`` should be roughly zero-mean (positive
    = reflective).  Returns the decoded bits.
    """
    x = np.asarray(chip_amplitudes, dtype=float)
    if x.ndim != 1 or len(x) % 2:
        raise ValueError("need a flat, even-length chip array")
    n_bits = len(x) // 2
    if n_bits == 0:
        return np.zeros(0, dtype=np.int8)
    # Normalise amplitude so metrics are comparable.
    scale = np.max(np.abs(x))
    if scale > 0:
        x = x / scale

    # Branch chip templates, row k = 2*s_in + bit.  Entering level s_in
    # inverts at the boundary (first chip = 1 - s_in) and a '0' bit
    # inverts again mid-bit:
    #   k=0 (s_in=0, bit=0) -> chips (+1, -1), exit level 0
    #   k=1 (s_in=0, bit=1) -> chips (+1, +1), exit level 1
    #   k=2 (s_in=1, bit=0) -> chips (-1, +1), exit level 1
    #   k=3 (s_in=1, bit=1) -> chips (-1, -1), exit level 0
    branch = np.array(
        [[1.0, -1.0], [1.0, 1.0], [-1.0, 1.0], [-1.0, -1.0]]
    )
    pairs = x.reshape(n_bits, CHIPS_PER_BIT)
    # All branch metrics for every bit in one shot: err[i, k] =
    # (x[2i] - c0)^2 + (x[2i+1] - c1)^2, identical to the scalar form.
    delta = pairs[:, None, :] - branch[None, :, :]
    errs = np.einsum("nkc,nkc->nk", delta, delta)

    # Two-state trellis over the precomputed metrics.  Transitions into
    # state 0 are branches k=0 (from state 0) and k=3 (from state 1);
    # into state 1, k=1 (from state 0) and k=2 (from state 1).  Strict
    # comparison keeps the earlier branch on ties, matching the original
    # scan order k=0..3.
    cost0, cost1 = (
        (0.0, 1e-3) if initial_level == 0 else (1e-3, 0.0)
    )
    back = np.zeros((n_bits, 2), dtype=np.int8)  # winning s_in per state
    for i in range(n_bits):
        e = errs[i]
        into0_a = cost0 + e[0]
        into0_b = cost1 + e[3]
        into1_a = cost0 + e[1]
        into1_b = cost1 + e[2]
        if into0_b < into0_a:
            new0, back[i, 0] = into0_b, 1
        else:
            new0 = into0_a
        if into1_b < into1_a:
            new1, back[i, 1] = into1_b, 1
        else:
            new1 = into1_a
        cost0, cost1 = new0, new1
    cost = [cost0, cost1]
    # Trace back from the better final state.  The data bit of each
    # winning transition follows from its (s_in, s_out) pair: exiting to
    # state 0 means bit = s_in == 0 ? 0 : 1; to state 1 the reverse.
    state = int(np.argmin(cost))
    bits = np.zeros(n_bits, dtype=np.int8)
    for i in range(n_bits - 1, -1, -1):
        s_in = int(back[i, state])
        bits[i] = s_in if state == 0 else 1 - s_in
        state = s_in
    from repro.obs.probe import get_probes

    probes = get_probes()
    if probes.wants("fm0.decode"):
        # Path cost per chip of the winning sequence: 0 for a clean
        # frame, ~1 at the decode threshold, ~2+ for noise-only input.
        path_cost = float(np.min(cost))
        probes.capture(
            "fm0.decode", "chips", waveform=x,
            n_bits=n_bits, path_cost=path_cost,
            cost_per_chip=path_cost / len(x),
        )
    return bits
