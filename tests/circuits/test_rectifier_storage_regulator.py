"""Tests for rectifier, supercapacitor, and LDO models."""

import pytest
from hypothesis import given, strategies as st

from repro.circuits import (
    LowDropoutRegulator,
    MultiStageRectifier,
    Supercapacitor,
)


class TestRectifier:
    def test_below_threshold_no_output(self):
        r = MultiStageRectifier(stages=3, diode_drop_v=0.2)
        assert r.open_circuit_voltage(0.1) == 0.0

    def test_open_circuit_formula(self):
        r = MultiStageRectifier(stages=3, diode_drop_v=0.2)
        assert r.open_circuit_voltage(1.0) == pytest.approx(2 * 3 * 0.8)

    def test_passive_amplification(self):
        """More stages, more voltage — the paper's passive voltage boost."""
        v_in = 0.9
        one = MultiStageRectifier(stages=1).open_circuit_voltage(v_in)
        three = MultiStageRectifier(stages=3).open_circuit_voltage(v_in)
        assert three == pytest.approx(3.0 * one)

    def test_loaded_voltage_droops(self):
        r = MultiStageRectifier(output_resistance_ohm=5_000.0)
        voc = r.open_circuit_voltage(1.5)
        assert r.loaded_voltage(1.5, 100e-6) == pytest.approx(voc - 0.5)

    def test_loaded_voltage_floors_at_zero(self):
        r = MultiStageRectifier()
        assert r.loaded_voltage(0.3, 1.0) == 0.0

    def test_input_peak_for_output_roundtrip(self):
        r = MultiStageRectifier(stages=3, diode_drop_v=0.2)
        v_in = r.input_peak_for_output(4.0)
        assert r.open_circuit_voltage(v_in) == pytest.approx(4.0)

    def test_power_bookkeeping(self):
        r = MultiStageRectifier(input_resistance_ohm=2_000.0, efficiency=0.6)
        assert r.input_power(2.0) == pytest.approx(2.0**2 / 2 / 2_000.0)
        assert r.output_power_available(2.0) == pytest.approx(
            0.6 * r.input_power(2.0)
        )
        assert r.output_power_available(0.1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiStageRectifier(stages=0)
        with pytest.raises(ValueError):
            MultiStageRectifier(efficiency=0.0)
        with pytest.raises(ValueError):
            MultiStageRectifier(diode_drop_v=-0.1)
        with pytest.raises(ValueError):
            MultiStageRectifier().loaded_voltage(1.0, -1e-3)

    @given(v=st.floats(0.0, 10.0))
    def test_monotone_in_input(self, v):
        r = MultiStageRectifier()
        assert r.open_circuit_voltage(v + 0.1) >= r.open_circuit_voltage(v)


class TestSupercapacitor:
    def test_initial_state(self):
        cap = Supercapacitor()
        assert cap.voltage_v == 0.0
        assert cap.energy_j == 0.0

    def test_charges_toward_source(self):
        cap = Supercapacitor(capacitance_f=1000e-6)
        for _ in range(1000):
            cap.charge_from_source(1e-3, 4.0, 5_000.0)
        assert 0.0 < cap.voltage_v < 4.0

    def test_rc_charging_time_constant(self):
        """One RC of charging reaches ~63% of the source voltage."""
        c, r_src = 1000e-6, 5_000.0
        cap = Supercapacitor(capacitance_f=c, leakage_resistance_ohm=1e12)
        tau = r_src * c
        steps = 2_000
        dt = tau / steps
        for _ in range(steps):
            cap.charge_from_source(dt, 1.0, r_src)
        assert cap.voltage_v == pytest.approx(1.0 - 2.718281828**-1, rel=0.02)

    def test_leakage_discharges(self):
        cap = Supercapacitor(initial_voltage_v=3.0, leakage_resistance_ohm=1e4)
        for _ in range(100):
            cap.step(1e-2)
        assert cap.voltage_v < 3.0

    def test_never_negative(self):
        cap = Supercapacitor(initial_voltage_v=0.1)
        for _ in range(100):
            cap.step(1e-1, i_load_a=1.0)
        assert cap.voltage_v == 0.0

    def test_clamps_at_rating(self):
        cap = Supercapacitor(max_voltage_v=5.0)
        for _ in range(100):
            cap.step(1.0, i_in_a=1.0)
        assert cap.voltage_v == 5.0

    def test_time_to_reach(self):
        cap = Supercapacitor(capacitance_f=1000e-6, leakage_resistance_ohm=1e12)
        t = cap.time_to_reach(2.5, 4.0, 5_000.0, dt_s=1e-3)
        # Analytic: t = RC * ln(V_src / (V_src - V_target)).
        expected = 5_000.0 * 1000e-6 * 0.9808  # ln(4/1.5)
        assert t == pytest.approx(expected, rel=0.05)

    def test_time_to_reach_unreachable(self):
        cap = Supercapacitor()
        assert cap.time_to_reach(5.0, 2.0, 1_000.0, dt_s=1e-2, timeout_s=5.0) is None

    def test_time_to_reach_already_there(self):
        cap = Supercapacitor(initial_voltage_v=3.0)
        assert cap.time_to_reach(2.0, 4.0, 1_000.0) == 0.0

    def test_reset(self):
        cap = Supercapacitor(initial_voltage_v=2.0)
        cap.reset()
        assert cap.voltage_v == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Supercapacitor(capacitance_f=0.0)
        with pytest.raises(ValueError):
            Supercapacitor(initial_voltage_v=10.0, max_voltage_v=5.0)
        cap = Supercapacitor()
        with pytest.raises(ValueError):
            cap.step(-1.0)
        with pytest.raises(ValueError):
            cap.step(1.0, i_in_a=-1.0)
        with pytest.raises(ValueError):
            cap.charge_from_source(1.0, 1.0, 0.0)

    @given(
        v0=st.floats(0.0, 5.0),
        i_in=st.floats(0.0, 1.0),
        i_load=st.floats(0.0, 1.0),
    )
    def test_voltage_always_in_range(self, v0, i_in, i_load):
        cap = Supercapacitor(initial_voltage_v=min(v0, 5.5), max_voltage_v=5.5)
        for _ in range(10):
            cap.step(1e-2, i_in, i_load)
        assert 0.0 <= cap.voltage_v <= 5.5


class TestSupercapacitorBooks:
    """Joule bookkeeping: conservation holds to float precision."""

    def test_unclamped_books_are_exact(self):
        cap = Supercapacitor(initial_voltage_v=1.0)
        for _ in range(500):
            cap.charge_from_source(0.05, 4.0, 4_000.0, i_load_a=50e-6)
        balance = cap.energy_balance()
        assert balance["clamped_j"] == pytest.approx(0.0, abs=1e-12)
        assert abs(balance["error_j"]) < 1e-12 * max(balance["harvested_j"], 1.0)

    def test_clamp_loss_attributed_not_vanished(self):
        cap = Supercapacitor(initial_voltage_v=5.4, max_voltage_v=5.5)
        for _ in range(20):
            cap.step(1.0, i_in_a=0.1)
        assert cap.voltage_v == 5.5
        balance = cap.energy_balance()
        assert balance["clamped_j"] > 0
        assert abs(balance["error_j"]) < 1e-12

    def test_floor_clamp_caps_consumed_at_stored_energy(self):
        cap = Supercapacitor(initial_voltage_v=0.1)
        initial_energy = cap.energy_j
        cap.step(100.0, i_load_a=1.0)  # load far beyond stored charge
        assert cap.voltage_v == 0.0
        assert cap.consumed_j + cap.leaked_j <= initial_energy + 1e-12
        assert abs(cap.energy_balance()["error_j"]) < 1e-12

    def test_reset_books_the_jump_in_adjusted(self):
        cap = Supercapacitor(initial_voltage_v=1.0)
        cap.reset(voltage_v=3.0)
        expected = 0.5 * cap.capacitance_f * (3.0**2 - 1.0**2)
        assert cap.adjusted_j == pytest.approx(expected)
        assert abs(cap.energy_balance()["error_j"]) < 1e-15

    @given(
        v0=st.floats(0.0, 5.5),
        i_in=st.floats(0.0, 0.5),
        i_load=st.floats(0.0, 0.5),
        dt=st.floats(1e-3, 1.0),
    )
    def test_conservation_property(self, v0, i_in, i_load, dt):
        cap = Supercapacitor(initial_voltage_v=v0, max_voltage_v=5.5)
        for _ in range(20):
            cap.step(dt, i_in, i_load)
        balance = cap.energy_balance()
        scale = max(balance["harvested_j"], abs(balance["stored_delta_j"]), 1.0)
        assert abs(balance["error_j"]) < 1e-9 * scale

    def test_observer_receives_every_step_flow(self):
        seen = []
        cap = Supercapacitor(initial_voltage_v=1.0)
        cap.observer = lambda *flows: seen.append(flows)
        cap.step(0.1, i_in_a=1e-3, i_load_a=1e-4)
        cap.step(0.1)
        assert len(seen) == 2
        dt, v, e_in, e_load, e_leak, e_clamp = seen[0]
        assert dt == 0.1
        assert v == cap.voltage_v or v > 0  # the post-step voltage
        assert e_in > 0 and e_load > 0 and e_leak > 0 and e_clamp == 0.0
        assert seen[1][2] == 0.0  # no input on the second step

    def test_observer_default_is_none(self):
        assert Supercapacitor().observer is None

    def test_time_to_reach_records_trajectory(self):
        cap = Supercapacitor(capacitance_f=1000e-6, leakage_resistance_ohm=1e12)
        record = []
        t = cap.time_to_reach(2.5, 4.0, 5_000.0, dt_s=1e-3, record=record)
        assert t is not None
        assert len(record) == pytest.approx(t / 1e-3, abs=1.5)
        assert record[-1] >= 2.5
        assert record == sorted(record)  # monotone charging


class TestLDO:
    def test_regulates_above_minimum(self):
        ldo = LowDropoutRegulator()
        assert ldo.output_voltage(3.0) == pytest.approx(1.8)
        assert ldo.is_regulating(3.0)

    def test_dropout_region(self):
        ldo = LowDropoutRegulator(output_v=1.8, dropout_v=0.12)
        v = ldo.output_voltage(1.85)
        assert v == pytest.approx(1.85 - 0.12)
        assert not ldo.is_regulating(1.85)

    def test_uvlo(self):
        ldo = LowDropoutRegulator(undervoltage_lockout_v=1.0)
        assert ldo.output_voltage(0.9) == 0.0
        assert ldo.input_current(1e-3, 0.9) == 0.0

    def test_input_current_includes_quiescent(self):
        ldo = LowDropoutRegulator(quiescent_a=25e-6)
        assert ldo.input_current(230e-6, 2.1) == pytest.approx(255e-6)

    def test_power_loss_positive(self):
        ldo = LowDropoutRegulator()
        assert ldo.power_loss(230e-6, 2.5) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LowDropoutRegulator(output_v=0.0)
        with pytest.raises(ValueError):
            LowDropoutRegulator().input_current(-1.0, 2.0)
