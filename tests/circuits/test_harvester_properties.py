"""Property-based invariants of the harvesting chain."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import EnergyHarvester, MultiStageRectifier
from repro.piezo import Transducer


@pytest.fixture(scope="module")
def harvester():
    return EnergyHarvester(Transducer.from_cylinder_design())


class TestMonotonicity:
    @settings(max_examples=25, deadline=None)
    @given(p=st.floats(1.0, 5_000.0))
    def test_voltage_nondecreasing_in_pressure(self, harvester, p):
        f0 = harvester.design_frequency_hz
        v1 = harvester.rectified_voltage(p, f0)
        v2 = harvester.rectified_voltage(p * 1.2, f0)
        assert v2 >= v1

    @settings(max_examples=25, deadline=None)
    @given(p=st.floats(1.0, 5_000.0))
    def test_power_nondecreasing_in_pressure(self, harvester, p):
        f0 = harvester.design_frequency_hz
        p1 = harvester.operating_point(p, f0).delivered_power_w
        p2 = harvester.operating_point(p * 1.2, f0).delivered_power_w
        assert p2 >= p1

    @settings(max_examples=25, deadline=None)
    @given(p=st.floats(10.0, 2_000.0), df=st.floats(1_500.0, 5_000.0))
    def test_design_frequency_beats_detuned(self, harvester, p, df):
        """Harvesting at the design channel never loses to the same
        chain driven well off-channel (the harvest peak can sit a few
        hundred hertz below the design frequency — between the mechanical
        resonance and the electrical match — so only detunes beyond that
        offset are ordered)."""
        f0 = harvester.design_frequency_hz
        on = harvester.operating_point(p, f0).delivered_power_w
        above = harvester.operating_point(p, f0 + df).delivered_power_w
        below = harvester.operating_point(p, max(f0 - df, 100.0)).delivered_power_w
        assert on >= above - 1e-15
        assert on >= below - 1e-15


class TestPhysicalBounds:
    @settings(max_examples=25, deadline=None)
    @given(p=st.floats(0.0, 5_000.0), f=st.floats(8_000.0, 25_000.0))
    def test_match_fraction_in_unit_interval(self, harvester, p, f):
        op = harvester.operating_point(p, f)
        assert 0.0 <= op.match_fraction <= 1.0

    @settings(max_examples=25, deadline=None)
    @given(p=st.floats(0.0, 5_000.0), f=st.floats(8_000.0, 25_000.0))
    def test_all_outputs_nonnegative(self, harvester, p, f):
        op = harvester.operating_point(p, f)
        assert op.open_circuit_v >= 0.0
        assert op.rectifier_input_peak_v >= 0.0
        assert op.rectified_voltage_v >= 0.0
        assert op.delivered_power_w >= 0.0
        assert op.dc_power_w >= 0.0

    @settings(max_examples=25, deadline=None)
    @given(p=st.floats(1.0, 5_000.0), f=st.floats(8_000.0, 25_000.0))
    def test_dc_power_never_exceeds_delivered(self, harvester, p, f):
        op = harvester.operating_point(p, f)
        assert op.dc_power_w <= op.delivered_power_w + 1e-15

    @settings(max_examples=15, deadline=None)
    @given(p=st.floats(1.0, 5_000.0))
    def test_delivered_never_exceeds_available(self, harvester, p):
        """Passivity: the chain cannot beat the conjugate-match bound
        at its own design frequency."""
        f0 = harvester.design_frequency_hz
        delivered = harvester.operating_point(p, f0).delivered_power_w
        available = harvester.transducer.available_power_w(p, f0)
        assert delivered <= available * (1.0 + 1e-6)


class TestCalibrationInverse:
    @settings(max_examples=10, deadline=None)
    @given(target=st.floats(0.5, 12.0))
    def test_calibrate_then_measure(self, harvester, target):
        pressure = harvester.calibrate_pressure_for_peak(target)
        measured = harvester.rectified_voltage(
            pressure, harvester.design_frequency_hz
        )
        assert measured == pytest.approx(target, rel=0.02)
