"""Tests for Schmitt trigger, backscatter switch, and harvest chain."""

import numpy as np
import pytest

from repro.circuits import (
    BackscatterSwitch,
    EnergyHarvester,
    MultiStageRectifier,
    SchmittTrigger,
    SwitchState,
    design_l_match,
)
from repro.constants import PEAK_RECTIFIED_V, POWER_UP_THRESHOLD_V
from repro.piezo import Transducer


class TestSchmittTrigger:
    def make(self):
        return SchmittTrigger(high_threshold_v=0.6, low_threshold_v=0.4)

    def test_basic_slicing(self):
        st = self.make()
        wave = np.array([0.0, 0.7, 0.7, 0.0, 0.7])
        out = st.process(wave)
        np.testing.assert_array_equal(out, [0.0, 1.8, 1.8, 0.0, 1.8])

    def test_hysteresis_rejects_small_wiggle(self):
        st = self.make()
        # Rises above high once, then wiggles inside the band: holds high.
        wave = np.array([0.0, 0.7, 0.5, 0.45, 0.55, 0.41])
        out = st.process(wave)
        assert np.all(out[1:] == 1.8)

    def test_initial_state_held_without_crossings(self):
        st = self.make()
        wave = np.full(5, 0.5)
        assert np.all(st.process(wave, initial_state=True) == 1.8)
        assert np.all(st.process(wave, initial_state=False) == 0.0)

    def test_empty_waveform(self):
        assert len(self.make().process(np.array([]))) == 0

    def test_edges(self):
        st = self.make()
        fs = 1_000.0
        wave = np.concatenate([np.zeros(10), np.ones(10), np.zeros(10)])
        times, pol = st.edges(wave, fs)
        assert len(times) == 2
        assert pol[0] == 1 and pol[1] == -1
        assert times[0] == pytest.approx(10 / fs)
        assert times[1] == pytest.approx(20 / fs)

    def test_validation(self):
        with pytest.raises(ValueError):
            SchmittTrigger(high_threshold_v=0.4, low_threshold_v=0.6)
        with pytest.raises(ValueError):
            self.make().process(np.ones((2, 2)))
        with pytest.raises(ValueError):
            self.make().edges(np.ones(4), 0.0)


def make_harvester(f0=None, **kw):
    t = Transducer.from_cylinder_design()
    return EnergyHarvester(t, design_frequency_hz=f0, **kw), t


class TestBackscatterSwitch:
    def make_switch(self):
        harvester, t = make_harvester()
        return (
            BackscatterSwitch(
                matching_network=harvester.matching_network,
                rectifier_input_ohm=harvester.rectifier.input_resistance_ohm,
            ),
            t,
        )

    def test_reflect_state_is_short(self):
        switch, _t = self.make_switch()
        z = switch.load_impedance(SwitchState.REFLECT, 15_000.0)
        assert abs(z) == pytest.approx(switch.on_resistance_ohm)

    def test_absorb_state_is_match_at_design_frequency(self):
        switch, t = self.make_switch()
        f0 = t.resonance_hz
        z = switch.load_impedance(SwitchState.ABSORB, f0)
        assert abs(z - np.conjugate(t.impedance(f0))) / abs(z) < 0.01

    def test_chip_impedances(self):
        switch, t = self.make_switch()
        chips = np.array([0, 1, 1, 0])
        z = switch.chip_impedances(chips, t.resonance_hz)
        assert z[1] == z[2]
        assert z[0] != z[1]

    def test_validation(self):
        harvester, _t = make_harvester()
        with pytest.raises(ValueError):
            BackscatterSwitch(harvester.matching_network, rectifier_input_ohm=0.0)


class TestEnergyHarvester:
    def test_peak_at_design_frequency(self):
        harvester, t = make_harvester()
        f0 = t.resonance_hz
        freqs = np.linspace(f0 - 3_000.0, f0 + 3_000.0, 61)
        p = harvester.calibrate_pressure_for_peak(4.0)
        curve = harvester.rectified_voltage_curve(freqs, p)
        f_peak = freqs[np.argmax(curve)]
        assert abs(f_peak - f0) < 500.0

    def test_calibrated_pressure_hits_target(self):
        harvester, t = make_harvester()
        p = harvester.calibrate_pressure_for_peak(4.0)
        assert harvester.rectified_voltage(p, harvester.design_frequency_hz) == (
            pytest.approx(4.0, rel=0.01)
        )

    def test_recto_piezo_shifts_peak(self):
        """Designing the match at 18 kHz moves the harvesting peak there —
        the recto-piezo concept of Sec. 3.3.1."""
        t = Transducer.from_cylinder_design()
        f_lo = t.resonance_hz
        f_hi = 18_000.0
        h15 = EnergyHarvester(t, design_frequency_hz=f_lo)
        h18 = EnergyHarvester(t, design_frequency_hz=f_hi)
        p = h15.calibrate_pressure_for_peak(4.0)
        freqs = np.linspace(12_000.0, 21_000.0, 181)
        c15 = h15.rectified_voltage_curve(freqs, p)
        c18 = h18.rectified_voltage_curve(freqs, p)
        assert abs(freqs[np.argmax(c15)] - f_lo) < 500.0
        assert abs(freqs[np.argmax(c18)] - f_hi) < 1_000.0
        # Complementary responses: each channel dominates at its own
        # frequency (paper Fig. 3).
        i15 = np.argmin(np.abs(freqs - f_lo))
        i18 = np.argmin(np.abs(freqs - f_hi))
        assert c15[i15] > c18[i15]
        assert c18[i18] > c15[i18]

    def test_match_fraction_unity_at_design(self):
        harvester, t = make_harvester()
        op = harvester.operating_point(60.0, t.resonance_hz)
        assert op.match_fraction == pytest.approx(1.0, abs=0.01)

    def test_voltage_scales_with_pressure(self):
        harvester, t = make_harvester()
        f0 = t.resonance_hz
        low = harvester.rectified_voltage(300.0, f0)
        high = harvester.rectified_voltage(900.0, f0)
        assert high > low > 0.0

    def test_usable_band_exists_at_operating_pressure(self):
        harvester, t = make_harvester()
        p = harvester.calibrate_pressure_for_peak(PEAK_RECTIFIED_V)
        band = harvester.usable_band(p, POWER_UP_THRESHOLD_V)
        assert band is not None
        f_lo, f_hi = band
        assert f_lo < t.resonance_hz < f_hi
        # Paper Fig. 3: usable band around resonance is 1.5-3 kHz wide.
        assert 800.0 < f_hi - f_lo < 4_000.0

    def test_usable_band_none_at_low_pressure(self):
        harvester, _t = make_harvester()
        assert harvester.usable_band(0.01, POWER_UP_THRESHOLD_V) is None

    def test_dc_power_zero_below_diode_threshold(self):
        harvester, t = make_harvester()
        op = harvester.operating_point(0.05, t.resonance_hz)
        assert op.dc_power_w == 0.0

    def test_charging_source(self):
        harvester, t = make_harvester()
        v, r = harvester.charging_source(500.0, t.resonance_hz)
        assert v > 0 and r > 0

    def test_calibrate_rejects_bad_target(self):
        harvester, _t = make_harvester()
        with pytest.raises(ValueError):
            harvester.calibrate_pressure_for_peak(0.0)

    def test_explicit_matching_network(self):
        t = Transducer.from_cylinder_design()
        rect = MultiStageRectifier()
        net = design_l_match(
            t.impedance(t.resonance_hz), rect.input_resistance_ohm, t.resonance_hz
        )
        h = EnergyHarvester(t, rect, matching_network=net)
        assert h.matching_network is net

    def test_invalid_design_frequency(self):
        t = Transducer.from_cylinder_design()
        with pytest.raises(ValueError):
            EnergyHarvester(t, design_frequency_hz=-1.0)

    def test_negative_pressure_rejected(self):
        harvester, t = make_harvester()
        with pytest.raises(ValueError):
            harvester.operating_point(-1.0, t.resonance_hz)
