"""Tests for the transient Dickson-ladder simulation."""

import numpy as np
import pytest

from repro.circuits.dickson import DicksonLadder


class TestTransient:
    def run(self, ladder, v=1.0, f=15_000.0, duration=0.2):
        return ladder.simulate(v, f, duration)

    def test_converges_to_predicted_voltage(self):
        ladder = DicksonLadder(stages=3)
        result = self.run(ladder, v=1.0)
        assert result.settled_v == pytest.approx(
            ladder.predicted_open_circuit_v(1.0), rel=0.1
        )

    def test_stage_profile_monotone(self):
        """Each ladder stage sits above the previous one."""
        ladder = DicksonLadder(stages=4)
        result = self.run(ladder, v=1.0)
        final = result.stage_voltages[-1]
        assert np.all(np.diff(final) > 0)

    def test_below_diode_threshold_nothing(self):
        ladder = DicksonLadder(stages=3, v_diode=0.3)
        result = self.run(ladder, v=0.2)
        assert result.settled_v == pytest.approx(0.0, abs=1e-9)

    def test_more_stages_more_voltage(self):
        two = self.run(DicksonLadder(stages=2), v=1.0).settled_v
        four = self.run(DicksonLadder(stages=4), v=1.0).settled_v
        assert four > 1.5 * two

    def test_load_droops_output(self):
        open_circuit = self.run(DicksonLadder(stages=3), v=1.0).settled_v
        loaded = self.run(
            DicksonLadder(stages=3, load_resistance_ohm=20_000.0), v=1.0
        ).settled_v
        assert loaded < open_circuit

    def test_settling_time_reported(self):
        result = self.run(DicksonLadder(stages=3), v=1.0)
        assert 0.0 <= result.settling_time_s <= result.time_s[-1]
        # Pump-up takes many cycles, not instant.
        assert result.settling_time_s > 1e-4

    def test_larger_storage_settles_slower(self):
        fast = self.run(
            DicksonLadder(stages=3, storage_capacitance_f=0.2e-6), v=1.0
        )
        slow = self.run(
            DicksonLadder(stages=3, storage_capacitance_f=5e-6), v=1.0
        )
        assert slow.settling_time_s > fast.settling_time_s

    def test_validates_behavioural_model(self):
        """The transient ladder justifies MultiStageRectifier's summary:
        open-circuit output ~ stages * (v_peak - v_diode) for this
        doubler-per-stage topology at matched definitions."""
        from repro.circuits import MultiStageRectifier

        ladder = DicksonLadder(stages=3, v_diode=0.2)
        transient = self.run(ladder, v=1.0).settled_v
        behavioural = MultiStageRectifier(
            stages=3, diode_drop_v=0.2
        ).open_circuit_voltage(1.0)
        # Same scaling in stages and (v - v_d); topology factor ~2 between
        # the half-wave ladder and the full doubler summary.
        assert behavioural / transient == pytest.approx(2.0, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            DicksonLadder(stages=0)
        with pytest.raises(ValueError):
            DicksonLadder(pump_capacitance_f=0.0)
        with pytest.raises(ValueError):
            DicksonLadder().simulate(-1.0, 15_000.0, 0.1)
        with pytest.raises(ValueError):
            DicksonLadder().simulate(1.0, 15_000.0, 0.1, steps_per_cycle=2)
