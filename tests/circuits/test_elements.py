"""Tests for impedance algebra."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.circuits import (
    capacitor_impedance,
    inductor_impedance,
    mismatch_power_fraction,
    parallel,
    reflection_coefficient,
    series,
)


class TestElementImpedances:
    def test_inductor(self):
        z = inductor_impedance(1e-3, 15_000.0)
        assert z == pytest.approx(1j * 2 * np.pi * 15_000.0 * 1e-3)

    def test_capacitor(self):
        z = capacitor_impedance(1e-6, 15_000.0)
        assert z == pytest.approx(1.0 / (1j * 2 * np.pi * 15_000.0 * 1e-6))

    def test_capacitor_negative_imag(self):
        assert capacitor_impedance(1e-6, 1_000.0).imag < 0

    def test_inductor_positive_imag(self):
        assert inductor_impedance(1e-3, 1_000.0).imag > 0

    def test_vectorised(self):
        freqs = np.array([1e3, 1e4])
        z = inductor_impedance(1e-3, freqs)
        assert z.shape == (2,)

    def test_validation(self):
        with pytest.raises(ValueError):
            inductor_impedance(-1.0, 1e3)
        with pytest.raises(ValueError):
            capacitor_impedance(0.0, 1e3)
        with pytest.raises(ValueError):
            capacitor_impedance(1e-6, 0.0)


class TestCombinations:
    def test_series(self):
        assert series(1 + 1j, 2 - 3j) == 3 - 2j

    def test_parallel_equal_resistors(self):
        assert parallel(100.0, 100.0) == pytest.approx(50.0)

    def test_parallel_lc_resonance(self):
        # L and C in parallel resonate where |Z| blows up.
        f0 = 15_000.0
        l = 1e-3
        c = 1.0 / ((2 * np.pi * f0) ** 2 * l)
        z = parallel(
            inductor_impedance(l, f0 * 1.000001),
            capacitor_impedance(c, f0 * 1.000001),
        )
        assert abs(z) > 1e6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            series()
        with pytest.raises(ValueError):
            parallel()


class TestReflection:
    def test_conjugate_match_zero(self):
        z_s = 100 + 50j
        assert abs(reflection_coefficient(np.conjugate(z_s), z_s)) < 1e-12

    def test_short_full_reflection(self):
        assert abs(reflection_coefficient(0.0 + 0j, 100 + 50j)) == pytest.approx(1.0)

    def test_mismatch_fraction_bounds(self):
        assert mismatch_power_fraction(100 + 0j, 100 + 0j) == pytest.approx(1.0)
        assert mismatch_power_fraction(0.0 + 0j, 100 + 0j) == pytest.approx(0.0)

    @given(
        rl=st.floats(0.1, 1e6),
        xl=st.floats(-1e6, 1e6),
        rs=st.floats(0.1, 1e6),
        xs=st.floats(-1e6, 1e6),
    )
    def test_fraction_in_unit_interval(self, rl, xl, rs, xs):
        frac = mismatch_power_fraction(complex(rl, xl), complex(rs, xs))
        assert 0.0 <= frac <= 1.0

    def test_vectorised_reflection(self):
        z_l = np.array([0.0 + 0j, 100.0 - 50j])
        gamma = reflection_coefficient(z_l, 100 + 50j)
        assert gamma.shape == (2,)
        assert abs(gamma[1]) < 1e-12
