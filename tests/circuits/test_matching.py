"""Tests for L-match design — the recto-piezo core."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import MatchComponent, design_l_match
from repro.piezo import Transducer


class TestMatchComponent:
    def test_inductor_impedance(self):
        c = MatchComponent("L", 1e-3)
        assert c.impedance(1_000.0).imag > 0

    def test_capacitor_impedance(self):
        c = MatchComponent("C", 1e-6)
        assert c.impedance(1_000.0).imag < 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MatchComponent("R", 1.0)
        with pytest.raises(ValueError):
            MatchComponent("L", -1e-3)


class TestDesignLMatch:
    def assert_matched(self, z_source, r_load, f0, rel=1e-6):
        net = design_l_match(z_source, r_load, f0)
        z_in = net.input_impedance(f0, r_load)
        assert z_in.real == pytest.approx(z_source.real, rel=rel, abs=1e-6)
        assert z_in.imag == pytest.approx(-z_source.imag, rel=rel, abs=1e-3)
        return net

    def test_step_up_match(self):
        # r_load > r_source: shunt-load topology.
        net = self.assert_matched(50 + 0j, 2_000.0, 15_000.0)
        assert net.topology == "shunt-load"

    def test_step_down_match_with_reactive_source(self):
        # r_load < r_source with big reactance: series-load topology.
        net = self.assert_matched(500 - 400j, 100.0, 15_000.0)
        assert net.topology == "series-load"

    def test_capacitive_piezo_source(self):
        """Match a realistic piezo impedance to a rectifier load."""
        t = Transducer.from_cylinder_design()
        f0 = t.resonance_hz
        self.assert_matched(t.impedance(f0), 2_000.0, f0, rel=1e-3)

    def test_match_only_exact_at_design_frequency(self):
        t = Transducer.from_cylinder_design()
        f0 = t.resonance_hz
        net = design_l_match(t.impedance(f0), 2_000.0, f0)
        z_on = net.input_impedance(f0, 2_000.0)
        z_off = net.input_impedance(f0 * 1.15, 2_000.0)
        target_on = np.conjugate(t.impedance(f0))
        target_off = np.conjugate(t.impedance(f0 * 1.15))
        assert abs(z_on - target_on) < abs(z_off - target_off)

    def test_validation(self):
        with pytest.raises(ValueError):
            design_l_match(100 + 0j, -1.0, 15_000.0)
        with pytest.raises(ValueError):
            design_l_match(100 + 0j, 100.0, 0.0)
        with pytest.raises(ValueError):
            design_l_match(-5 + 0j, 100.0, 15_000.0)

    @settings(max_examples=50)
    @given(
        rs=st.floats(1.0, 5_000.0),
        xs=st.floats(-5_000.0, 5_000.0),
        rl=st.floats(1.0, 10_000.0),
        f0=st.floats(5_000.0, 30_000.0),
    )
    def test_exact_match_whenever_feasible(self, rs, xs, rl, f0):
        z_s = complex(rs, xs)
        try:
            net = design_l_match(z_s, rl, f0)
        except ValueError:
            # Infeasible corner: must genuinely violate both topology
            # conditions.
            assert rl < rs
            assert rl > (rs**2 + xs**2) / rs
            return
        z_in = net.input_impedance(f0, rl)
        assert abs(z_in - np.conjugate(z_s)) / abs(z_s) < 1e-3


class TestVoltageFraction:
    def test_matched_power_transfer(self):
        """At the design point, power into the load equals the available
        power of the source — verified through the voltage fraction."""
        z_s = 300 - 800j
        r_l = 2_000.0
        f0 = 15_000.0
        net = design_l_match(z_s, r_l, f0)
        v_frac = net.load_voltage_fraction(f0, r_l, z_s)
        v_emf = 1.0
        p_load = (abs(v_frac) * v_emf) ** 2 / 2.0 / r_l
        p_avail = v_emf**2 / 2.0 / (4.0 * z_s.real)
        assert p_load == pytest.approx(p_avail, rel=1e-3)

    def test_off_design_transfer_lower(self):
        z_s = 300 - 800j
        r_l = 2_000.0
        f0 = 15_000.0
        net = design_l_match(z_s, r_l, f0)
        on = abs(net.load_voltage_fraction(f0, r_l, z_s))
        off = abs(net.load_voltage_fraction(f0 * 1.3, r_l, z_s))
        assert off < on
