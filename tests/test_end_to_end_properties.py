"""Cross-module property tests: invariants of the whole stack."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp import BackscatterDemodulator, Packet, fm0_encode
from repro.dsp.waveforms import upconvert_chips

FS = 96_000.0
CARRIER = 15_000.0
BITRATE = 1_000.0


def synth(packet, *, mod_amp=0.12, noise=0.01, seed=0):
    chips = fm0_encode(packet.to_bits()).astype(float)
    m = upconvert_chips(chips, 2 * BITRATE, FS)
    pad = np.zeros(int(0.01 * FS))
    m = np.concatenate([pad, m, pad])
    t = np.arange(len(m)) / FS
    y = np.sin(2 * np.pi * CARRIER * t) * (1.0 + mod_amp * m)
    return y + np.random.default_rng(seed).normal(0, noise, len(y))


class TestModemRoundtripProperty:
    @settings(max_examples=10, deadline=None)
    @given(
        addr=st.integers(0, 255),
        payload=st.binary(min_size=0, max_size=12),
        seed=st.integers(0, 100),
    )
    def test_any_packet_roundtrips_at_high_snr(self, addr, payload, seed):
        """Every well-formed packet survives the full modem chain."""
        packet = Packet(address=addr, payload=payload)
        dem = BackscatterDemodulator(CARRIER, BITRATE, FS)
        result = dem.demodulate(synth(packet, seed=seed))
        assert result.success
        assert result.packet == packet

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_never_returns_wrong_packet(self, seed):
        """Under any noise, the output is the true packet or a failure —
        never a CRC-passing impostor."""
        packet = Packet(address=9, payload=b"guard")
        rng_noise = float(np.random.default_rng(seed).uniform(0.005, 0.6))
        dem = BackscatterDemodulator(CARRIER, BITRATE, FS)
        result = dem.demodulate(synth(packet, noise=rng_noise, seed=seed))
        if result.success:
            assert result.packet == packet


class TestEnergyCommunicationConsistency:
    def test_powerup_threshold_consistent_between_engines(self):
        """The energy engine's power-up verdict matches the harvester's
        rectified-voltage threshold crossing."""
        from repro.circuits import EnergyHarvester
        from repro.constants import POWER_UP_THRESHOLD_V
        from repro.node import PowerUpSimulator
        from repro.piezo import Transducer

        t = Transducer.from_cylinder_design()
        h = EnergyHarvester(t)
        sim = PowerUpSimulator(h)
        f = t.resonance_hz
        for pressure in (100.0, 250.0, 320.0, 500.0, 900.0):
            voltage = h.rectified_voltage(pressure, f)
            # can_power_up additionally accounts for capacitor leakage,
            # so it can only be stricter than the raw threshold.
            if sim.can_power_up(pressure, f):
                assert voltage >= POWER_UP_THRESHOLD_V
            elif voltage < POWER_UP_THRESHOLD_V:
                assert not sim.can_power_up(pressure, f)

    def test_budget_predicts_decode_outcome_ordering(self):
        """Geometries with much higher predicted SNR should never decode
        worse than hopeless ones."""
        from repro.acoustics import POOL_A, Position
        from repro.core import BackscatterLink, Projector
        from repro.net.messages import Command, Query
        from repro.node.node import PABNode
        from repro.piezo import Transducer

        transducer = Transducer.from_cylinder_design()
        f = transducer.resonance_hz

        def run(drive):
            projector = Projector(
                transducer=transducer, drive_voltage_v=drive, carrier_hz=f
            )
            node = PABNode(address=7, channel_frequencies_hz=(f,))
            link = BackscatterLink(
                POOL_A, projector, Position(0.5, 1.5, 0.6),
                node, Position(1.5, 1.5, 0.6), Position(1.0, 0.8, 0.6),
            )
            return link.budget(), link.run_query(
                Query(destination=7, command=Command.PING)
            )

        budget_strong, result_strong = run(60.0)
        budget_weak, result_weak = run(1.0)
        assert budget_strong.predicted_snr_db > budget_weak.predicted_snr_db
        assert result_strong.success
        assert not result_weak.success


class TestExperimentHarness:
    def test_snr_vs_bitrate_sweep_structure(self):
        from repro.acoustics import POOL_A, Position
        from repro.core import Projector
        from repro.core.experiment import snr_vs_bitrate_sweep
        from repro.core.link import BackscatterLink
        from repro.net.messages import Command, Query
        from repro.node.node import PABNode
        from repro.piezo import Transducer

        transducer = Transducer.from_cylinder_design()
        f = transducer.resonance_hz

        def link_factory(bitrate, trial):
            projector = Projector(
                transducer=transducer, drive_voltage_v=50.0, carrier_hz=f
            )
            node = PABNode(address=7, channel_frequencies_hz=(f,), bitrate=bitrate)
            return BackscatterLink(
                POOL_A, projector, Position(0.5, 1.5, 0.6),
                node, Position(1.5, 1.5, 0.6), Position(1.0, 0.8, 0.6),
            )

        table = snr_vs_bitrate_sweep(
            link_factory,
            [1_000.0],
            lambda: Query(destination=7, command=Command.PING),
            trials=1,
        )
        assert table.column("bitrate_bps") == [1_000.0]
        assert np.isfinite(table.column("snr_db_mean")[0])
