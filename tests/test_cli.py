"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("demo", "fig3", "fig7", "fig8", "fig9", "fig11", "envs"):
            args = parser.parse_args([cmd])
            assert callable(args.func)

    def test_demo_options(self):
        args = build_parser().parse_args(
            ["demo", "--distance", "2.0", "--drive", "80", "--bitrate", "500"]
        )
        assert args.distance == 2.0
        assert args.drive == 80.0
        assert args.bitrate == 500.0


class TestCommands:
    def test_envs(self, capsys):
        assert main(["envs"]) == 0
        out = capsys.readouterr().out
        assert "coastal ocean" in out
        assert "river" in out

    def test_fig11(self, capsys):
        assert main(["fig11"]) == 0
        out = capsys.readouterr().out
        assert "idle" in out
        assert "124.0" in out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "recto-piezo" in out

    def test_fig7_small(self, capsys):
        assert main(["fig7", "--bits", "500"]) == 0
        assert "ber" in capsys.readouterr().out

    def test_demo_success_exit_code(self, capsys):
        assert main(["demo", "--distance", "1.0"]) == 0

    def test_demo_failure_exit_code(self, capsys):
        # Too weak to power up: non-zero exit status.
        assert main(["demo", "--drive", "1.0"]) == 1


class TestTraceCommand:
    def test_trace_to_file_covers_all_stages(self, tmp_path, capsys):
        from repro.core.link import BackscatterLink

        out = tmp_path / "trace.jsonl"
        assert main(["trace", "--out", str(out)]) == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        names = {r["name"] for r in records}
        for stage in BackscatterLink.STAGES:
            assert stage in names
        for r in records:
            assert r["duration_s"] > 0

    def test_trace_to_stdout_is_jsonl(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        spans = [json.loads(l) for l in out.splitlines() if l.startswith("{")]
        assert any(s["name"] == "link.transact" for s in spans)
        # The aggregate stage table follows the raw spans.
        assert "link.hydrophone_dsp" in out

    def test_trace_metrics_out(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.prom"
        assert main(["trace", "--metrics-out", str(metrics)]) == 0
        text = metrics.read_text()
        assert "# TYPE pab_link_transactions_total counter" in text
        assert "pab_link_transactions_total 1" in text


class TestOutputControl:
    def test_out_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "fig11.csv"
        assert main(["fig11", "--out", str(out)]) == 0
        lines = out.read_text().splitlines()
        assert lines[0] == "mode,power_uw"
        assert len(lines) > 3

    def test_fig9_out_gets_per_pool_suffix(self, tmp_path, capsys):
        out = tmp_path / "fig9.csv"
        assert main(["fig9", "--out", str(out)]) == 0
        written = sorted(p.name for p in tmp_path.iterdir())
        assert len(written) == 2
        assert all(name.startswith("fig9_pool") for name in written)

    def test_log_level_warning_silences_status_lines(self, capsys):
        # demo prints only status lines -> nothing at warning level...
        assert main(["--log-level", "warning", "demo"]) == 0
        assert capsys.readouterr().out == ""
        # ...but tables are artifacts and always print.
        assert main(["--log-level", "warning", "fig11"]) == 0
        assert "idle" in capsys.readouterr().out

    def test_verbose_flag_accepted(self, capsys):
        assert main(["-v", "fig11"]) == 0
        assert "idle" in capsys.readouterr().out

    def test_out_creates_missing_parent_dirs(self, tmp_path, capsys):
        out = tmp_path / "results" / "nested" / "fig11.csv"
        assert main(["fig11", "--out", str(out)]) == 0
        assert out.exists()

    def test_trace_outputs_create_missing_parent_dirs(self, tmp_path, capsys):
        trace = tmp_path / "a" / "trace.jsonl"
        metrics = tmp_path / "b" / "metrics.prom"
        assert main(["trace", "--out", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        assert trace.exists()
        assert metrics.exists()


class TestProbeCommand:
    def test_probe_success_lists_taps_and_writes_npz(self, tmp_path, capsys):
        out = tmp_path / "deep" / "taps.npz"
        assert main(["probe", "--out", str(out)]) == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "reply decoded: True" in text
        assert "link.hydrophone_dsp/analysis_segment" in text
        assert "sync.detect_packet" in text

    def test_probe_failure_renders_postmortem(self, tmp_path, capsys):
        pm_out = tmp_path / "deep" / "pm.jsonl"
        assert main(["probe", "--noise-db", "120",
                     "--postmortem-out", str(pm_out)]) == 1
        text = capsys.readouterr().out
        assert "reply decoded: False" in text
        assert "crc_fail at link.hydrophone_dsp" in text
        assert pm_out.exists()
        record = json.loads(pm_out.read_text().splitlines()[0])
        assert record["failure"] == "crc_fail"

    def test_postmortem_renders_jsonl(self, tmp_path, capsys):
        pm_out = tmp_path / "pm.jsonl"
        assert main(["probe", "--noise-db", "120",
                     "--postmortem-out", str(pm_out)]) == 1
        capsys.readouterr()
        assert main(["postmortem", str(pm_out)]) == 0
        text = capsys.readouterr().out
        assert "crc_fail at link.hydrophone_dsp" in text
        assert "verdict:" in text

    def test_postmortem_empty_file_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["postmortem", str(empty)]) == 1
        assert "no post-mortems" in capsys.readouterr().out


class TestCoverageCommand:
    def test_coverage_map_rendered(self, capsys):
        from repro.cli import main

        assert main(["coverage", "--tank", "a", "--drive", "100",
                     "--resolution", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "Power-up coverage" in out
        assert "#" in out


class TestEnergyCommand:
    def test_energy_books_close_and_exit_zero(self, capsys):
        assert main(["energy", "--rounds", "5"]) == 0
        out = capsys.readouterr().out
        assert "Energy ledger" in out
        assert "conservation_error_pct" in out
        assert "Duty cycle" in out

    def test_energy_out_writes_soc_series(self, tmp_path, capsys):
        path = tmp_path / "sub" / "soc.csv"
        assert main(["energy", "--rounds", "5", "--out", str(path)]) == 0
        lines = path.read_text().splitlines()
        assert lines[0] == "node,t_s,soc_v"
        assert len(lines) > 1

    def test_energy_weak_field_still_balances(self, capsys):
        # Below the power-up threshold the node never wakes; the books
        # must still close (exit 0) with a cold duty cycle of 1.
        assert main(["energy", "--rounds", "5", "--pressure", "100"]) == 0


class TestFleetReportCommand:
    def test_fleet_report_tables_and_exit_zero(self, capsys):
        assert main([
            "fleet-report", "--nodes", "4", "--rounds", "8", "--seed", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "Per-node energy balance" in out
        assert "SLO error budgets" in out
        assert "Duty cycle" in out

    def test_fleet_report_artifacts(self, tmp_path, capsys):
        csv = tmp_path / "tl.csv"
        jsonl = tmp_path / "tl.jsonl"
        prom = tmp_path / "m.prom"
        assert main([
            "fleet-report", "--nodes", "4", "--rounds", "8", "--seed", "7",
            "--timeline-out", str(csv), "--timeline-jsonl", str(jsonl),
            "--metrics-out", str(prom),
        ]) == 0
        header = csv.read_text().splitlines()[0]
        assert header.startswith("round,node,polled,delivered")
        records = [json.loads(l) for l in jsonl.read_text().splitlines()]
        assert len(records) == 8 * 4
        prom_text = prom.read_text()
        assert "pab_node_energy_joules_total" in prom_text
        assert "pab_slo_error_budget_remaining" in prom_text

    def test_fleet_report_show_timeline(self, capsys):
        assert main([
            "fleet-report", "--nodes", "4", "--rounds", "6", "--seed", "7",
            "--show-timeline", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "burn_delivery" in out

    def test_fleet_report_is_deterministic(self, tmp_path, capsys):
        def run(name):
            path = tmp_path / name
            main([
                "fleet-report", "--nodes", "4", "--rounds", "8",
                "--seed", "7", "--timeline-jsonl", str(path),
            ])
            return path.read_text()

        assert run("a.jsonl") == run("b.jsonl")


class TestStreamingCli:
    """``--stream-out`` / ``--serve-port`` / ``repro tail`` end to end."""

    def test_stream_out_then_tail_replays_batch_timeline(self, tmp_path, capsys):
        stream = tmp_path / "stream.jsonl"
        batch = tmp_path / "batch.jsonl"
        replay = tmp_path / "replay.jsonl"
        assert main([
            "fleet-report", "--nodes", "4", "--rounds", "8", "--seed", "7",
            "--stream-out", str(stream), "--timeline-jsonl", str(batch),
        ]) == 0
        out = capsys.readouterr().out
        assert "wrote telemetry stream" in out
        assert "p99 flush" in out

        assert main([
            "tail", str(stream), "--timeline-jsonl", str(replay),
        ]) == 0
        out = capsys.readouterr().out
        # One monitor line per round, then the summary.
        monitor = [l for l in out.splitlines() if l.startswith("round ")]
        assert len(monitor) == 8
        assert "delivered" in monitor[0] and "soc_min" in monitor[0]
        assert "stream: 8 rounds" in out
        assert "final burn" in out
        # The replayed timeline is byte-identical to the campaign's own.
        assert replay.read_bytes() == batch.read_bytes()

    def test_fresh_campaign_owns_its_stream_file(self, tmp_path, capsys):
        stream = tmp_path / "stream.jsonl"
        args = [
            "fleet-report", "--nodes", "3", "--rounds", "4", "--seed", "2",
            "--stream-out", str(stream),
        ]
        assert main(args) == 0
        first = stream.read_bytes()
        assert main(args) == 0  # second run truncates, not appends
        assert stream.read_bytes() == first
        capsys.readouterr()

    def test_tail_missing_file_fails(self, tmp_path, capsys):
        assert main(["tail", str(tmp_path / "nope.jsonl")]) == 1
        assert "not found" in capsys.readouterr().out

    def test_tail_stream_without_rounds_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["tail", str(path)]) == 1
        assert "no round events" in capsys.readouterr().out

    def test_tail_follow_exits_after_idle_timeout(self, tmp_path, capsys):
        stream = tmp_path / "stream.jsonl"
        assert main([
            "fleet-report", "--nodes", "3", "--rounds", "4", "--seed", "2",
            "--stream-out", str(stream),
        ]) == 0
        capsys.readouterr()
        assert main([
            "tail", str(stream), "--follow",
            "--interval", "0.05", "--idle-timeout", "0.2",
        ]) == 0
        assert "stream: 4 rounds" in capsys.readouterr().out

    def test_serve_port_announces_endpoint(self, capsys):
        assert main([
            "fleet-report", "--nodes", "3", "--rounds", "4", "--seed", "2",
            "--serve-port", "0",
        ]) == 0
        assert "metrics snapshot endpoint: http://127.0.0.1:" in (
            capsys.readouterr().out
        )

    def test_profile_smoke_tables_artifacts_and_determinism(
        self, tmp_path, capsys
    ):
        """``repro profile --smoke``: attribution tables, a profile
        record, and byte-identical flamegraphs across two runs."""
        flame_a = tmp_path / "a" / "flame"
        flame_b = tmp_path / "b" / "flame"
        out = tmp_path / "profile.json"
        assert main([
            "profile", "--smoke",
            "--flame-out", str(flame_a), "--out", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "Per-stage attribution" in text
        assert "Worker attribution" in text
        assert "Cache savings" in text
        assert "hot stage: link." in text

        record = json.loads(out.read_text())["records"][-1]
        assert record["benchmark"] == "profile"
        assert record["flame_agreement"] <= 0.01
        assert record["verdict"]["hot_stage"].startswith("link.")
        assert set(record["stages"]) == {
            "link.pwm_synthesis", "link.downlink_propagation", "link.node",
            "link.uplink_propagation", "link.hydrophone_dsp",
        }

        assert main([
            "profile", "--smoke", "--flame-out", str(flame_b),
        ]) == 0
        capsys.readouterr()
        for suffix in (".collapsed.txt", ".speedscope.json"):
            first = (flame_a.parent / (flame_a.name + suffix)).read_bytes()
            second = (flame_b.parent / (flame_b.name + suffix)).read_bytes()
            assert first == second, f"flamegraph {suffix} not deterministic"

    def test_kill_resume_spliced_stream_replays_clean_run(self, tmp_path, capsys):
        """ISSUE acceptance: a stream interrupted mid-campaign and
        appended to by ``resume`` replays to the clean run's timeline."""
        ckpt = tmp_path / "ckpt"
        stream = tmp_path / "stream.jsonl"
        clean = tmp_path / "clean.jsonl"
        replay = tmp_path / "replay.jsonl"

        rc = main([
            "fleet-report", "--nodes", "4", "--rounds", "10", "--seed", "3",
            "--checkpoint-every", "3", "--checkpoint-dir", str(ckpt),
            "--kill-at", "7:1", "--stream-out", str(stream),
        ])
        out = capsys.readouterr().out
        assert rc == 3
        # The flight recorder left the last moments next to the checkpoints.
        assert "flight recorder dumped to" in out
        assert (ckpt / "flight-recorder-000007.jsonl").exists()

        assert main([
            "resume", str(ckpt / "checkpoint-000006.json"),
            "--stream-out", str(stream),
        ]) == 0
        assert "appended telemetry stream" in capsys.readouterr().out

        assert main([
            "fleet-report", "--nodes", "4", "--rounds", "10", "--seed", "3",
            "--timeline-jsonl", str(clean),
        ]) == 0
        capsys.readouterr()

        assert main([
            "tail", str(stream), "--timeline-jsonl", str(replay),
        ]) == 0
        assert "stream: 10 rounds" in capsys.readouterr().out
        assert replay.read_bytes() == clean.read_bytes()


class TestAnomalyCli:
    """``--inject-noise`` / ``--fail-on-anomaly`` / ``repro diff``."""

    def _campaign(self, path, *, inject=None, rounds=20):
        args = [
            "fleet-report", "--nodes", "4", "--rounds", str(rounds),
            "--seed", "7", "--stream-out", str(path),
        ]
        if inject:
            args += ["--inject-noise", inject]
        assert main(args) == 0

    def test_fleet_report_announces_anomalies(self, tmp_path, capsys):
        self._campaign(tmp_path / "s.jsonl")
        out = capsys.readouterr().out
        assert "anomalies:" in out
        assert "inspect with 'repro tail'" in out

    def test_inject_noise_announced_and_recorded(self, tmp_path, capsys):
        self._campaign(tmp_path / "f.jsonl", inject="3:12:6")
        out = capsys.readouterr().out
        assert "injecting extra noise burst: node 3, rounds 12..17" in out

    def test_inject_noise_bad_spec_exits_2(self, tmp_path, capsys):
        assert main([
            "fleet-report", "--nodes", "4", "--rounds", "4",
            "--stream-out", str(tmp_path / "s.jsonl"),
            "--inject-noise", "nonsense",
        ]) == 2
        assert "--inject-noise" in capsys.readouterr().out

    def test_report_out_writes_canonical_json(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert main([
            "fleet-report", "--nodes", "4", "--rounds", "8", "--seed", "7",
            "--report-out", str(report_path),
        ]) == 0
        capsys.readouterr()
        doc = json.loads(report_path.read_text())
        assert "network" in doc
        assert doc["rounds"] == 8
        # Canonical rendering: sorted keys, trailing newline.
        assert report_path.read_text() == (
            json.dumps(doc, sort_keys=True, indent=2) + "\n"
        )

    def test_tail_renders_anomaly_lines_and_fails_on_anomaly(
        self, tmp_path, capsys
    ):
        stream = tmp_path / "s.jsonl"
        self._campaign(stream)
        capsys.readouterr()
        assert main(["tail", str(stream), "--fail-on-anomaly"]) == 4
        out = capsys.readouterr().out
        highlighted = [l for l in out.splitlines() if l.startswith("!!")]
        assert highlighted, "anomaly envelopes must render as !! lines"
        assert "anomalies warn=" in out

    def test_tail_without_anomalies_passes_fail_flag(self, tmp_path, capsys):
        stream = tmp_path / "tiny.jsonl"
        # Shorter than detector warmup: nothing can fire.
        self._campaign(stream, rounds=6)
        capsys.readouterr()
        assert main(["tail", str(stream), "--fail-on-anomaly"]) == 0

    def test_diff_identical_campaigns_exits_zero(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._campaign(a)
        self._campaign(b)
        capsys.readouterr()
        assert main(["diff", str(a), str(b), "--gate"]) == 0
        assert "gate: clean" in capsys.readouterr().out

    def test_diff_gate_trips_on_injected_fault_and_attributes(
        self, tmp_path, capsys
    ):
        """ISSUE acceptance: the diff names the taxonomy class, its
        failing stage, and the injected node."""
        clean, faulted = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        out_path = tmp_path / "drift.json"
        self._campaign(clean)
        self._campaign(faulted, inject="3:12:6")
        capsys.readouterr()
        assert main([
            "diff", str(clean), str(faulted), "--gate", "--out", str(out_path),
        ]) == 1
        out = capsys.readouterr().out
        assert "-- attribution (most suspect first) --" in out
        assert "noise_burst" in out
        assert "link.hydrophone_dsp" in out
        assert "node 3" in out
        assert "-- gate: DRIFTED --" in out
        report = json.loads(out_path.read_text())
        assert report["gate"]["drifted"] is True
        kinds = {e["kind"]: e for e in report["attribution"]}
        assert kinds["taxonomy"]["target"] == "noise_burst"
        assert kinds["node"]["target"] == "node 3"

    def test_diff_without_gate_reports_but_exits_zero(self, tmp_path, capsys):
        clean, faulted = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._campaign(clean)
        self._campaign(faulted, inject="3:12:6")
        capsys.readouterr()
        assert main(["diff", str(clean), str(faulted)]) == 0
        assert "DRIFTED" in capsys.readouterr().out

    def test_diff_output_is_byte_deterministic(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._campaign(a)
        self._campaign(b, inject="3:12:6")
        first, second = tmp_path / "d1.json", tmp_path / "d2.json"
        main(["diff", str(a), str(b), "--out", str(first)])
        main(["diff", str(a), str(b), "--out", str(second)])
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_diff_missing_file_exits_2(self, tmp_path, capsys):
        stream = tmp_path / "a.jsonl"
        self._campaign(stream, rounds=4)
        capsys.readouterr()
        assert main(["diff", str(stream), str(tmp_path / "nope.jsonl")]) == 2
        assert "FAIL" in capsys.readouterr().out

    def test_diff_cross_kind_exits_2(self, tmp_path, capsys):
        stream = tmp_path / "a.jsonl"
        self._campaign(stream, rounds=4)
        bench = tmp_path / "BENCH.json"
        bench.write_text(json.dumps({
            "records": [{"rounds": 4, "stages": {"mac": {"fraction": 1.0}}}],
        }))
        capsys.readouterr()
        assert main(["diff", str(stream), str(bench)]) == 2
        assert "cannot diff" in capsys.readouterr().out

    def test_diff_threshold_flags_loosen_the_gate(self, tmp_path, capsys):
        clean, faulted = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._campaign(clean)
        self._campaign(faulted, inject="3:12:6")
        capsys.readouterr()
        assert main([
            "diff", str(clean), str(faulted), "--gate",
            "--delivery-threshold", "1.0", "--node-threshold", "1.0",
            "--stage-threshold", "1.0", "--taxonomy-threshold", "100000",
            "--soc-threshold", "10.0", "--burn-threshold", "1e9",
            "--anomaly-threshold", "100000",
        ]) == 0
        assert "gate: clean" in capsys.readouterr().out

    def test_resume_carries_injected_noise(self, tmp_path, capsys):
        """A killed faulted campaign resumes with the same injection, so
        the spliced stream still shows the fault's anomalies."""
        ckpt = tmp_path / "ckpt"
        stream = tmp_path / "stream.jsonl"
        rc = main([
            "fleet-report", "--nodes", "4", "--rounds", "20", "--seed", "7",
            "--inject-noise", "3:12:6",
            "--checkpoint-every", "5", "--checkpoint-dir", str(ckpt),
            "--kill-at", "14:1", "--stream-out", str(stream),
        ])
        assert rc == 3
        assert main([
            "resume", str(ckpt / "checkpoint-000010.json"),
            "--stream-out", str(stream),
        ]) == 0
        out = capsys.readouterr().out
        assert "injecting extra noise burst: node 3" in out

        clean = tmp_path / "clean.jsonl"
        assert main([
            "fleet-report", "--nodes", "4", "--rounds", "20", "--seed", "7",
            "--inject-noise", "3:12:6", "--stream-out", str(clean),
        ]) == 0
        capsys.readouterr()
        assert main(["diff", str(clean), str(stream), "--gate"]) == 0
        assert "gate: clean" in capsys.readouterr().out
