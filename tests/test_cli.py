"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("demo", "fig3", "fig7", "fig8", "fig9", "fig11", "envs"):
            args = parser.parse_args([cmd])
            assert callable(args.func)

    def test_demo_options(self):
        args = build_parser().parse_args(
            ["demo", "--distance", "2.0", "--drive", "80", "--bitrate", "500"]
        )
        assert args.distance == 2.0
        assert args.drive == 80.0
        assert args.bitrate == 500.0


class TestCommands:
    def test_envs(self, capsys):
        assert main(["envs"]) == 0
        out = capsys.readouterr().out
        assert "coastal ocean" in out
        assert "river" in out

    def test_fig11(self, capsys):
        assert main(["fig11"]) == 0
        out = capsys.readouterr().out
        assert "idle" in out
        assert "124.0" in out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "recto-piezo" in out

    def test_fig7_small(self, capsys):
        assert main(["fig7", "--bits", "500"]) == 0
        assert "ber" in capsys.readouterr().out

    def test_demo_success_exit_code(self, capsys):
        assert main(["demo", "--distance", "1.0"]) == 0

    def test_demo_failure_exit_code(self, capsys):
        # Too weak to power up: non-zero exit status.
        assert main(["demo", "--drive", "1.0"]) == 1


class TestCoverageCommand:
    def test_coverage_map_rendered(self, capsys):
        from repro.cli import main

        assert main(["coverage", "--tank", "a", "--drive", "100",
                     "--resolution", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "Power-up coverage" in out
        assert "#" in out
