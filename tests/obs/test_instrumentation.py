"""Integration: the obs layer threaded through link, MAC, reader, faults."""

import pytest

from repro.faults.events import EventLog
from repro.faults.injectors import GarbledReplyInjector
from repro.net.mac import PollingMac
from repro.net.messages import Command, Query, Response
from repro.net.reader import ReaderController
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, VirtualClock, use_tracer


class _Result:
    """Minimal LinkResult-shaped stub."""

    def __init__(self, success):
        self.success = success
        self.demod = None
        if success:
            class _Demod:
                pass

            self.demod = _Demod()
            self.demod.packet = Response(
                source=1, command=Command.PING
            ).to_packet()
            self.demod.success = True


def _stub_transact(outcomes):
    outcomes = list(outcomes)

    def transact(query):
        return _Result(outcomes.pop(0)) if outcomes else _Result(True)

    return transact


class TestLinkStages:
    @pytest.fixture(scope="class")
    def traced_link_run(self):
        from repro.acoustics import POOL_A, Position
        from repro.core import BackscatterLink, Projector
        from repro.node.node import PABNode
        from repro.piezo import Transducer

        transducer = Transducer.from_cylinder_design()
        f = transducer.resonance_hz
        projector = Projector(
            transducer=transducer, drive_voltage_v=50.0, carrier_hz=f
        )
        node = PABNode(address=7, channel_frequencies_hz=(f,), bitrate=1_000.0)
        tracer = Tracer()
        metrics = MetricsRegistry()
        link = BackscatterLink(
            POOL_A, projector, Position(0.5, 1.5, 0.6),
            node, Position(1.5, 1.5, 0.6), Position(1.0, 0.8, 0.6),
            tracer=tracer, metrics=metrics,
        )
        with use_tracer(tracer):
            result = link.transact(Query(destination=7, command=Command.PING))
        return link, tracer, metrics, result

    def test_all_five_stages_traced(self, traced_link_run):
        from repro.core.link import BackscatterLink

        link, tracer, _, result = traced_link_run
        assert result.success
        names = {s.name for s in tracer.spans}
        for stage in BackscatterLink.STAGES:
            assert stage in names
        totals = tracer.stage_totals()
        for stage in BackscatterLink.STAGES:
            assert totals[stage]["total_s"] > 0

    def test_node_firmware_spans_nest_under_link_node(self, traced_link_run):
        _, tracer, _, _ = traced_link_run
        by_id = {s.span_id: s for s in tracer.spans}
        decode = next(s for s in tracer.spans if s.name == "node.decode_query")
        assert by_id[decode.parent_id].name == "link.node"

    def test_outcome_metrics(self, traced_link_run):
        _, _, metrics, _ = traced_link_run
        assert metrics.value("pab_link_transactions_total") == 1.0
        assert metrics.value("pab_link_successes_total") == 1.0
        hist = metrics.histogram("pab_link_snr_db")
        assert hist.count == 1

    def test_untraced_link_records_nothing(self):
        # The global tracer defaults to disabled: a plain link emits no
        # spans and touches no registry (the pre-obs hot path).
        from repro.obs.trace import get_tracer

        assert get_tracer().enabled is False


class TestMacMetrics:
    def test_counters_follow_stats(self):
        metrics = MetricsRegistry()
        mac = PollingMac(
            transact=_stub_transact([False, False, True]),
            max_retries=2,
            metrics=metrics,
        )
        result = mac.poll(Query(destination=1, command=Command.PING))
        assert result.success
        assert metrics.value("pab_mac_polls_total") == 1.0
        assert metrics.value("pab_mac_attempts_total") == 3.0
        assert metrics.value("pab_mac_retries_total") == 2.0
        assert metrics.value("pab_mac_successes_total") == 1.0

    def test_exceptions_counted(self):
        def boom(query):
            raise RuntimeError("modem")

        metrics = MetricsRegistry()
        mac = PollingMac(transact=boom, max_retries=1, metrics=metrics)
        assert mac.poll(Query(destination=1, command=Command.PING)) is None
        assert metrics.value("pab_mac_exceptions_total") == 2.0

    def test_poll_traced(self):
        tracer = Tracer(clock=VirtualClock(tick=1.0))
        mac = PollingMac(transact=_stub_transact([True]), node=5)
        with use_tracer(tracer):
            mac.poll(Query(destination=5, command=Command.PING))
        span = next(s for s in tracer.spans if s.name == "mac.poll")
        assert span.attrs["success"] is True
        assert span.attrs["attempts"] == 1


class TestReaderMetrics:
    def test_campaign_single_substrate(self):
        metrics = MetricsRegistry()
        log = EventLog()
        reader = ReaderController(
            {
                1: _stub_transact([True] * 20),
                2: _stub_transact([False] * 20),
            },
            max_retries=0,
            log=log,
            metrics=metrics,
        )
        reader.run_schedule(Command.PING, 5)
        # Per-node health gauges, numeric-coded.
        assert metrics.value("pab_node_health_code", node=1) == 0.0
        assert metrics.value("pab_node_health_code", node=2) > 0.0
        # Readings counted per node.
        assert metrics.value("pab_reader_readings_total", node=1) == 5.0
        assert metrics.value("pab_reader_rounds_total") == 5.0
        # The event log is bound into the same registry: every state
        # transition it recorded also counted into pab_events_total.
        assert log.metrics is metrics
        state_events = len(log.filter(kind="state"))
        assert state_events > 0
        assert metrics.value("pab_events_total", kind="state") == state_events

    def test_poll_round_span(self):
        tracer = Tracer(clock=VirtualClock(tick=1.0))
        reader = ReaderController({1: _stub_transact([True])}, max_retries=0)
        with use_tracer(tracer):
            reader.poll_round(Command.PING)
        span = next(s for s in tracer.spans if s.name == "reader.poll_round")
        assert span.attrs["nodes"] == 1
        assert span.attrs["delivered"] == 1


class TestInjectorMetrics:
    def test_fired_faults_counted(self):
        metrics = MetricsRegistry()
        injector = GarbledReplyInjector(
            _stub_transact([True] * 10),
            prob=1.0,
            seed=0,
            metrics=metrics,
        )
        injector(Query(destination=1, command=Command.PING))
        assert (
            metrics.value("pab_faults_injected_total", injector="garbled")
            == 1.0
        )
