"""Tests for the signal-probe registry and its link integration."""

import json

import numpy as np
import pytest

from repro.obs.probe import (
    ProbeRegistry,
    dump_failure_artifacts,
    get_probes,
    set_probes,
    use_probes,
)


class TestRegistrySemantics:
    def test_capture_records_tap(self):
        probes = ProbeRegistry()
        tap = probes.capture(
            "sync.detect_packet", "correlation",
            waveform=np.arange(8.0), sample_rate=96_000.0, peak=0.4,
        )
        assert tap is probes.taps[0]
        assert tap.stage == "sync.detect_packet"
        assert tap.name == "correlation"
        assert tap.samples == 8
        assert tap.decimation == 1
        assert tap.diagnostics == {"peak": 0.4}

    def test_disabled_registry_captures_nothing(self):
        probes = ProbeRegistry(enabled=False)
        assert not probes.wants("link.node")
        assert probes.capture("link.node", "power_up", powered=True) is None
        assert probes.taps == []

    def test_stage_filter(self):
        probes = ProbeRegistry(stages=["fm0.decode"])
        assert probes.wants("fm0.decode")
        assert not probes.wants("link.node")
        probes.capture("link.node", "power_up")
        probes.capture("fm0.decode", "chips", n_bits=4)
        assert [t.stage for t in probes.taps] == ["fm0.decode"]

    def test_diagnostics_only_tap(self):
        probes = ProbeRegistry()
        tap = probes.capture("link.node", "power_up", powered=False)
        assert tap.waveform is None
        assert tap.samples == 0

    def test_seq_is_monotonic(self):
        probes = ProbeRegistry()
        taps = [probes.capture("s", "n") for _ in range(3)]
        assert [t.seq for t in taps] == [1, 2, 3]

    def test_reset(self):
        probes = ProbeRegistry()
        probes.begin_transaction()
        probes.capture("s", "n")
        probes.record_postmortem(object())
        probes.reset()
        assert probes.taps == []
        assert probes.postmortems == []
        assert probes.capture("s", "n").txn == 0

    def test_bad_max_samples_rejected(self):
        with pytest.raises(ValueError):
            ProbeRegistry(max_samples=0)


class TestDecimation:
    def test_short_waveform_stored_verbatim(self):
        probes = ProbeRegistry(max_samples=100)
        tap = probes.capture("s", "n", waveform=np.arange(100.0))
        assert tap.decimation == 1
        assert np.array_equal(tap.waveform, np.arange(100.0))

    def test_long_waveform_strided_under_cap(self):
        probes = ProbeRegistry(max_samples=100)
        tap = probes.capture("s", "n", waveform=np.arange(1000.0))
        assert tap.decimation == 10
        assert tap.samples == 100
        assert np.array_equal(tap.waveform, np.arange(1000.0)[::10])

    def test_uneven_length_stays_under_cap(self):
        probes = ProbeRegistry(max_samples=100)
        tap = probes.capture("s", "n", waveform=np.arange(101.0))
        assert tap.samples <= 100
        assert tap.decimation == 2

    def test_stored_copy_is_independent(self):
        probes = ProbeRegistry()
        source = np.ones(16)
        tap = probes.capture("s", "n", waveform=source)
        source[:] = 0.0
        assert np.all(tap.waveform == 1.0)


class TestTransactions:
    def test_taps_stamped_with_transaction(self):
        probes = ProbeRegistry()
        first = probes.begin_transaction()
        probes.capture("s", "a")
        second = probes.begin_transaction()
        probes.capture("s", "b")
        probes.capture("s", "c")
        assert first != second
        assert [t.name for t in probes.transaction_taps(first)] == ["a"]
        assert [t.name for t in probes.transaction_taps(second)] == ["b", "c"]
        # Default: the current (latest) transaction.
        assert [t.name for t in probes.transaction_taps()] == ["b", "c"]

    def test_latest_and_taps_for(self):
        probes = ProbeRegistry()
        probes.capture("s", "a")
        probes.capture("s", "b")
        probes.capture("other", "c")
        assert probes.latest("s").name == "b"
        assert [t.name for t in probes.taps_for("s")] == ["a", "b"]
        assert probes.latest("missing") is None


class TestNpzRoundTrip:
    def test_waveforms_and_meta_round_trip(self, tmp_path):
        probes = ProbeRegistry()
        probes.capture(
            "sync.detect_packet", "correlation",
            waveform=np.linspace(0, 1, 32), sample_rate=96_000.0, peak=0.5,
        )
        probes.capture("link.node", "power_up", powered=True)
        path = probes.to_npz(tmp_path / "deep" / "taps.npz")
        assert path.exists()
        with np.load(path) as data:
            key = "tap0001__sync.detect_packet__correlation"
            assert np.allclose(data[key], np.linspace(0, 1, 32))
            meta = json.loads(str(data["meta_json"]))
        assert len(meta) == 2
        assert meta[0]["diagnostics"]["peak"] == 0.5
        assert meta[1]["stage"] == "link.node"
        assert meta[1]["samples"] == 0


class TestGlobals:
    def test_global_default_disabled(self):
        assert not get_probes().enabled

    def test_use_probes_installs_and_restores(self):
        probes = ProbeRegistry()
        before = get_probes()
        with use_probes(probes) as installed:
            assert installed is probes
            assert get_probes() is probes
        assert get_probes() is before

    def test_set_probes_returns_previous(self):
        probes = ProbeRegistry()
        previous = set_probes(probes)
        try:
            assert get_probes() is probes
        finally:
            set_probes(previous)


class TestLinkIntegration:
    @pytest.fixture(scope="class")
    def probed_run(self):
        from repro.acoustics import POOL_A, Position
        from repro.core import BackscatterLink, Projector
        from repro.net.messages import Command, Query
        from repro.node.node import PABNode
        from repro.piezo import Transducer

        transducer = Transducer.from_cylinder_design()
        f = transducer.resonance_hz
        projector = Projector(
            transducer=transducer, drive_voltage_v=50.0, carrier_hz=f
        )
        node = PABNode(address=7, channel_frequencies_hz=(f,), bitrate=1_000.0)
        link = BackscatterLink(
            POOL_A, projector, Position(0.5, 1.5, 0.6),
            node, Position(1.5, 1.5, 0.6), Position(1.0, 0.8, 0.6),
        )
        probes = ProbeRegistry()
        with use_probes(probes):
            result = link.transact(Query(destination=7, command=Command.PING))
        return link, probes, result

    def test_all_five_stages_tapped(self, probed_run):
        from repro.core.link import BackscatterLink

        _, probes, result = probed_run
        assert result.success
        tapped = {t.stage for t in probes.taps}
        for stage in BackscatterLink.STAGES:
            assert stage in tapped, f"no tap from {stage}"

    def test_dsp_publishers_tapped(self, probed_run):
        _, probes, _ = probed_run
        tapped = {t.stage for t in probes.taps}
        assert "hydrophone.demodulate" in tapped
        assert "sync.detect_packet" in tapped
        assert "fm0.decode" in tapped

    def test_sync_tap_diagnostics(self, probed_run):
        _, probes, _ = probed_run
        tap = probes.latest("sync.detect_packet")
        diag = tap.diagnostics
        assert diag["peak"] >= diag["threshold"]
        assert diag["margin"] == pytest.approx(
            diag["peak"] - diag["threshold"]
        )
        assert np.isfinite(diag["peak_sigma"])

    def test_waveform_taps_respect_cap(self, probed_run):
        _, probes, _ = probed_run
        for tap in probes.taps:
            assert tap.samples <= probes.max_samples
            if tap.samples > 0:
                assert tap.decimation >= 1

    def test_successful_transact_has_no_postmortem(self, probed_run):
        _, probes, result = probed_run
        assert result.postmortem is None
        assert probes.postmortems == []

    def test_unprobed_transact_captures_nothing(self, probed_run):
        from repro.net.messages import Command, Query

        link, probes, _ = probed_run
        before = len(probes.taps)
        result = link.transact(Query(destination=7, command=Command.PING))
        assert result.success
        assert len(probes.taps) == before  # registry was not installed


class TestFailureArtifacts:
    def test_empty_registry_writes_nothing(self, tmp_path):
        with use_probes(ProbeRegistry()):
            assert dump_failure_artifacts(tmp_path, "t::empty") == []
        assert list(tmp_path.iterdir()) == []

    def test_taps_and_postmortems_dumped(self, tmp_path):
        from repro.obs.postmortem import DecodePostmortem

        probes = ProbeRegistry()
        probes.capture("s", "n", waveform=np.ones(8))
        probes.record_postmortem(DecodePostmortem.from_fault("brownout"))
        with use_probes(probes):
            written = dump_failure_artifacts(
                tmp_path, "tests/x.py::TestY::test_z[case/0]"
            )
        names = sorted(p.name for p in written)
        assert names == [
            "tests_x.py_TestY_test_z_case_0_.postmortems.jsonl",
            "tests_x.py_TestY_test_z_case_0_.probes.npz",
        ]
        for path in written:
            assert path.exists()
