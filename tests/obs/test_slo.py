"""Tests for fleet SLO tracking: budgets, burn rates, ingestion."""

import math

import pytest

from repro.faults import EventLog
from repro.obs import (
    DEFAULT_TARGETS,
    EnergyLedger,
    MetricsRegistry,
    OBJECTIVES,
    SLOTracker,
)


class TestBudgetMath:
    def test_perfect_record_leaves_budget_untouched(self):
        slo = SLOTracker()
        for _ in range(10):
            slo.record("delivery", 1, good=1.0)
        assert slo.compliance("delivery", 1) == 1.0
        assert slo.error_budget_remaining("delivery", 1) == pytest.approx(1.0)

    def test_budget_exhausts_exactly_at_the_target(self):
        # Target 0.90 over 10 units allows exactly 1 bad unit.
        slo = SLOTracker({"delivery": 0.90})
        for _ in range(9):
            slo.record("delivery", 1, good=1.0)
        slo.record("delivery", 1, bad=1.0)
        assert slo.error_budget_remaining("delivery", 1) == pytest.approx(0.0)

    def test_budget_goes_negative_when_violated(self):
        slo = SLOTracker({"delivery": 0.90})
        for _ in range(8):
            slo.record("delivery", 1, good=1.0)
        for _ in range(2):
            slo.record("delivery", 1, bad=1.0)
        assert slo.error_budget_remaining("delivery", 1) == pytest.approx(-1.0)

    def test_burn_rate_of_one_means_spending_at_budget(self):
        slo = SLOTracker({"delivery": 0.90}, window=10)
        for _ in range(9):
            slo.record("delivery", 1, good=1.0)
        slo.record("delivery", 1, bad=1.0)
        assert slo.burn_rate("delivery", 1) == pytest.approx(1.0)

    def test_burn_rate_uses_rolling_window(self):
        slo = SLOTracker({"delivery": 0.90}, window=5)
        # Old failures age out of the burn window (but not the budget).
        for _ in range(5):
            slo.record("delivery", 1, bad=1.0)
        for _ in range(5):
            slo.record("delivery", 1, good=1.0)
        assert slo.burn_rate("delivery", 1) == pytest.approx(0.0)
        assert slo.error_budget_remaining("delivery", 1) < 0

    def test_no_data_is_nan(self):
        slo = SLOTracker()
        assert math.isnan(slo.compliance("delivery"))
        assert math.isnan(slo.error_budget_remaining("delivery"))
        assert math.isnan(slo.burn_rate("delivery"))

    def test_fleet_aggregates_across_nodes(self):
        slo = SLOTracker({"delivery": 0.5})
        slo.record("delivery", 1, good=1.0)
        slo.record("delivery", 2, bad=1.0)
        assert slo.compliance("delivery") == pytest.approx(0.5)
        assert slo.counts("delivery") == (1.0, 1.0)

    def test_unknown_objective_rejected(self):
        with pytest.raises(KeyError):
            SLOTracker().record("latency", 1, good=1.0)

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError):
            SLOTracker({"delivery": 1.0})
        with pytest.raises(ValueError):
            SLOTracker({"delivery": 0.0})

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            SLOTracker().record("delivery", 1, good=-1.0)

    def test_defaults_cover_the_standard_objectives(self):
        assert set(OBJECTIVES) == set(DEFAULT_TARGETS)


class TestObserveRound:
    def test_delivery_charged_only_when_polled(self):
        slo = SLOTracker()
        slo.observe_round(0.0, {
            1: {"polled": True, "delivered": True, "up": True},
            2: {"polled": False, "delivered": False, "up": False},
        })
        # Node 2 was skipped (quarantined): no delivery unit consumed,
        # but its downtime is charged to availability.
        assert slo.counts("delivery", 2) == (0.0, 0.0)
        assert slo.counts("availability", 2) == (0.0, 1.0)
        assert slo.counts("delivery", 1) == (1.0, 0.0)

    def test_energy_only_recorded_when_present(self):
        slo = SLOTracker()
        slo.observe_round(0.0, {
            1: {"polled": True, "delivered": True, "up": True,
                "sustainable": False},
            2: {"polled": True, "delivered": True, "up": True},
        })
        assert slo.counts("energy", 1) == (0.0, 1.0)
        assert slo.counts("energy", 2) == (0.0, 0.0)

    def test_rounds_observed_advances(self):
        slo = SLOTracker()
        slo.observe_round(0.0, {1: {"polled": True, "delivered": True}})
        slo.observe_round(1.0, {1: {"polled": True, "delivered": True}})
        assert slo.rounds_observed == 2
        assert slo.last_t == 1.0


class TestIngestion:
    def test_ingest_mac_stats_shape(self):
        class Stats:
            attempts = 10
            successes = 7

        slo = SLOTracker()
        slo.ingest_mac_stats(3, Stats())
        assert slo.counts("delivery", 3) == (7.0, 3.0)

    def test_ingest_event_log_availability(self):
        log = EventLog()
        log.record(0, 7, "state", **{"from": "HEALTHY"}, to="QUARANTINED")
        log.record(5, 7, "state", **{"from": "QUARANTINED"}, to="HEALTHY")
        log.record(10, 7, "attempt")
        slo = SLOTracker()
        slo.ingest_event_log(log, [7])
        good, bad = slo.counts("availability", 7)
        assert good == pytest.approx(5.0)
        assert bad == pytest.approx(5.0)
        assert slo.compliance("availability", 7) == pytest.approx(0.5)

    def test_ingest_event_log_skips_silent_nodes(self):
        slo = SLOTracker()
        slo.ingest_event_log(EventLog(), [1, 2])
        assert slo.counts("availability") == (0.0, 0.0)

    def test_ingest_ledger_round_history(self):
        ledger = EnergyLedger(node=4)
        ledger.record_round(t=0.0, sustainable=True)
        ledger.record_round(t=1.0, sustainable=False)
        slo = SLOTracker()
        slo.ingest_ledger(ledger)
        assert slo.counts("energy", 4) == (1.0, 1.0)


class TestReporting:
    def make_tracker(self):
        slo = SLOTracker(window=4)
        for t in range(8):
            slo.observe_round(float(t), {
                1: {"polled": True, "delivered": t != 0, "up": True,
                    "sustainable": True},
                2: {"polled": True, "delivered": True, "up": t >= 4,
                    "sustainable": t >= 2},
            })
        return slo

    def test_report_structure(self):
        report = self.make_tracker().report()
        assert report["rounds"] == 8
        assert set(report["fleet"]) == {"availability", "delivery", "energy"}
        assert [n["node"] for n in report["nodes"]] == [1, 2]
        fleet = report["fleet"]["delivery"]
        assert fleet["compliance"] == pytest.approx(15 / 16)

    def test_node_report_omits_empty_objectives(self):
        slo = SLOTracker()
        slo.record("delivery", 1, good=1.0)
        report = slo.node_report(1)
        assert "delivery" in report
        assert "availability" not in report

    def test_to_metrics_fleet_and_node_labels(self):
        slo = self.make_tracker()
        registry = MetricsRegistry()
        slo.to_metrics(registry)
        assert registry.value(
            "pab_slo_error_budget_remaining", objective="delivery", node="fleet"
        ) == pytest.approx(slo.error_budget_remaining("delivery"))
        assert registry.value(
            "pab_slo_compliance", objective="availability", node="2"
        ) == pytest.approx(0.5)
        assert registry.value(
            "pab_slo_burn_rate", objective="energy", node="2"
        ) == pytest.approx(0.0)

    def test_report_is_deterministic(self):
        assert self.make_tracker().report() == self.make_tracker().report()

    def test_window_validation(self):
        with pytest.raises(ValueError):
            SLOTracker(window=0)
