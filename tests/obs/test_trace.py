"""Tests for the span tracer: nesting, exception safety, no-op mode."""

import math

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    Tracer,
    VirtualClock,
    get_tracer,
    set_tracer,
    use_tracer,
)


class TestSpans:
    def test_records_duration_and_attrs(self):
        tracer = Tracer(clock=VirtualClock(tick=1.0))
        with tracer.span("work", samples=42) as span:
            span.set(extra="yes")
        assert len(tracer.spans) == 1
        done = tracer.spans[0]
        assert done.name == "work"
        assert done.duration_s == 1.0
        assert done.attrs == {"samples": 42, "extra": "yes"}
        assert done.finished

    def test_open_span_duration_is_nan(self):
        tracer = Tracer()
        span = tracer.span("open")
        assert math.isnan(span.duration_s)

    def test_nesting_parent_ids(self):
        tracer = Tracer(clock=VirtualClock(tick=1.0))
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
            with tracer.span("sibling") as sibling:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert sibling.parent_id == outer.span_id
        # Completion order: children before the parent.
        assert [s.name for s in tracer.spans] == ["inner", "sibling", "outer"]

    def test_deep_nesting(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            with tracer.span("b") as b:
                with tracer.span("c") as c:
                    pass
        assert c.parent_id == b.span_id
        assert b.parent_id == a.span_id

    def test_exception_closes_span_and_tags_error(self):
        tracer = Tracer(clock=VirtualClock(tick=1.0))
        with pytest.raises(ValueError):
            with tracer.span("fails"):
                raise ValueError("boom")
        assert len(tracer.spans) == 1
        span = tracer.spans[0]
        assert span.finished
        assert span.attrs["error"] == "ValueError"
        # The nesting stack is clean: a following span is a root again.
        with tracer.span("next") as nxt:
            pass
        assert nxt.parent_id is None

    def test_exception_in_nested_span_keeps_outer_consistent(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        names = [s.name for s in tracer.spans]
        assert names == ["inner", "outer"]
        assert tracer.spans[0].attrs["error"] == "RuntimeError"
        assert tracer.spans[1].attrs["error"] == "RuntimeError"
        assert tracer._stack == []

    def test_stage_totals_aggregates_by_name(self):
        tracer = Tracer(clock=VirtualClock(tick=1.0))
        for _ in range(3):
            with tracer.span("stage.a"):
                pass
        with tracer.span("stage.b"):
            pass
        totals = tracer.stage_totals()
        assert totals["stage.a"]["count"] == 3
        assert totals["stage.a"]["total_s"] == 3.0
        assert totals["stage.a"]["mean_s"] == 1.0
        assert totals["stage.b"]["count"] == 1

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.spans == []
        with tracer.span("y") as span:
            pass
        assert span.span_id == 1


class TestDisabledMode:
    def test_disabled_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", big=1)
        assert span is NULL_SPAN
        with span as inner:
            inner.set(more=2)
        assert tracer.spans == []

    def test_null_span_swallows_nothing(self):
        tracer = Tracer(enabled=False)
        with pytest.raises(KeyError):
            with tracer.span("x"):
                raise KeyError("propagates")

    def test_metrics_side_channel(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        tracer = Tracer(clock=VirtualClock(tick=1.0), metrics=registry)
        with tracer.span("stage"):
            pass
        hist = registry.histogram("pab_span_seconds", name="stage")
        assert hist.count == 1
        assert hist.sum == 1.0


class TestVirtualClock:
    def test_manual_advance(self):
        clock = VirtualClock()
        assert clock() == 0.0
        clock.advance(2.5)
        assert clock() == 2.5
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_auto_tick(self):
        clock = VirtualClock(start=10.0, tick=0.5)
        assert clock() == 10.0
        assert clock() == 10.5


class TestGlobalTracer:
    def test_default_global_is_disabled(self):
        assert get_tracer().enabled is False

    def test_set_and_restore(self):
        mine = Tracer()
        previous = set_tracer(mine)
        try:
            assert get_tracer() is mine
        finally:
            set_tracer(previous)
        assert get_tracer() is previous

    def test_use_tracer_restores_on_exception(self):
        before = get_tracer()
        mine = Tracer()
        with pytest.raises(ValueError):
            with use_tracer(mine):
                assert get_tracer() is mine
                raise ValueError("boom")
        assert get_tracer() is before
