"""Soak: a high-concurrency streamed campaign gating flush latency.

The CI ``soak`` job's payload (``pytest -m soak``): a 12-node chaos
fleet on a 4-wide thread pool streams 300 rounds to a real JSONL file
with a flight recorder attached.  Gates:

* p99 per-round flush latency stays under a generous bound — the
  stream writer must never become the campaign bottleneck;
* the on-disk stream replays to the exact batch timeline (the
  streamed == batch identity holds at soak length, under threads);
* the recorder ring stays bounded the whole way.

Latency bound note: 50 ms p99 is ~100x the typical observed flush on
a developer machine — the gate exists to catch an accidental O(file)
rewrite (the failure mode that motivated append-mode streaming), not
to benchmark the disk.
"""

import pytest

from repro.faults import EventLog, NoiseBurstInjector, TransportExceptionInjector
from repro.net import Command, HealthPolicy, ReaderController, Response, RetryPolicy
from repro.obs import MetricsRegistry, SLOTracker
from repro.obs.ledger import NodeEnergyHarness
from repro.obs.recorder import FlightRecorder
from repro.obs.stream import (
    JsonlStreamSink,
    StreamAggregator,
    TelemetryBus,
    use_bus,
)
from repro.obs.timeline import build_timeline, timeline_to_jsonl
from repro.perf.fleet import FleetEngine

pytestmark = pytest.mark.soak

ROUNDS = 300
NODES = 12
WIDTH = 4

#: p99 per-round flush budget [s]; see the module docstring.
P99_FLUSH_BUDGET_S = 0.05


class _StubResult:
    def __init__(self, packet):
        self.success = True
        self.demod = type("Demod", (), {})()
        self.demod.packet = packet
        self.demod.success = True


def _stub(address):
    def transact(query):
        return _StubResult(
            Response(source=address, command=query.command).to_packet()
        )

    return transact


def test_streamed_soak_campaign(tmp_path):
    log = EventLog()
    transports, harnesses = {}, {}
    for addr in range(1, NODES + 1):
        inner = _stub(addr)
        if addr % 3 == 1:
            inner = NoiseBurstInjector(
                inner, start=5 * addr, duration=6, node=addr, log=log,
                seed=addr,
            )
        elif addr % 3 == 2:
            inner = TransportExceptionInjector(
                inner, at=(11 * addr, 11 * addr + 40), node=addr, log=log,
                seed=addr,
            )
        transports[addr] = inner
        harnesses[addr] = NodeEnergyHarness(
            addr, v_oc_v=3.3, r_out_ohm=4.0e3, initial_voltage_v=3.0
        )

    path = tmp_path / "soak.jsonl"
    recorder = FlightRecorder(capacity=256)
    bus = TelemetryBus(sinks=[JsonlStreamSink(path), recorder])
    with use_bus(bus):
        reader = ReaderController(
            transports,
            retry_policy=RetryPolicy(
                max_retries=1, base_backoff_s=0.05, jitter=0.25, seed=42
            ),
            health_policy=HealthPolicy(
                degrade_after=2, quarantine_after=4, recover_after=2,
                probe_backoff_rounds=2,
            ),
            log=log,
            metrics=MetricsRegistry(),
            ledgers=harnesses,
            slo=SLOTracker(window=20),
            parallel=WIDTH,
        )
        assert reader._engine is not None and isinstance(
            reader._engine, FleetEngine
        )
        report = reader.run_campaign(Command.READ_TEMPERATURE, ROUNDS)
    bus.close()

    assert report["rounds"] == ROUNDS

    # Flush-latency gate: the stream writer appends, so per-round cost
    # must not grow with campaign length.
    stats = bus.flush_stats()
    assert stats["count"] >= ROUNDS
    assert stats["p99_s"] < P99_FLUSH_BUDGET_S, (
        f"p99 round flush {stats['p99_s'] * 1e3:.1f} ms exceeds "
        f"{P99_FLUSH_BUDGET_S * 1e3:.0f} ms budget "
        f"(p50 {stats['p50_s'] * 1e3:.1f} ms, max {stats['max_s'] * 1e3:.1f} ms)"
    )

    # The ring stayed bounded while seeing the whole campaign.
    assert len(recorder) == 256
    assert recorder.events_seen > ROUNDS

    # Streamed == batch at soak length, under threads.
    agg = StreamAggregator()
    agg.feed_file(path)
    assert agg.rounds_observed() == ROUNDS
    assert timeline_to_jsonl(agg.timeline_rows()) == timeline_to_jsonl(
        build_timeline(reader.round_log, log=log, ledgers=harnesses)
    )
