"""Tests for the metrics registry: instruments, labels, merge."""

import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc(self):
        reg = MetricsRegistry()
        reg.counter("polls").inc()
        reg.counter("polls").inc(2.0)
        assert reg.value("polls") == 3.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("polls").inc(-1.0)

    def test_labels_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("polls", node=1).inc()
        reg.counter("polls", node=2).inc(5)
        assert reg.value("polls", node=1) == 1.0
        assert reg.value("polls", node=2) == 5.0

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1) is reg.counter("x", a=1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("snr")
        gauge.set(10.0)
        gauge.inc(2.0)
        gauge.dec(4.0)
        assert gauge.value == 8.0


class TestHistogram:
    def test_bucket_placement(self):
        hist = Histogram(name="lat", buckets=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            hist.observe(v)
        assert hist.bucket_counts == [2, 1, 1]  # <=1, <=10, +Inf
        assert hist.count == 4
        assert hist.sum == 106.5

    def test_cumulative_counts(self):
        hist = Histogram(name="lat", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 100.0):
            hist.observe(v)
        assert hist.cumulative() == [(1.0, 1), (10.0, 2), (math.inf, 3)]

    def test_nan_counted_but_not_summed(self):
        hist = Histogram(name="ber", buckets=(0.5,))
        hist.observe(float("nan"))
        hist.observe(0.25)
        assert hist.count == 2
        assert hist.nan_count == 1
        assert hist.sum == 0.25
        assert hist.mean == 0.25

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(name="x", buckets=())
        with pytest.raises(ValueError):
            Histogram(name="x", buckets=(2.0, 1.0))

    def test_mean_empty_is_nan(self):
        assert math.isnan(Histogram(name="x", buckets=(1.0,)).mean)


class TestRegistry:
    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_iteration_sorted_and_deterministic(self):
        reg = MetricsRegistry()
        reg.counter("zeta")
        reg.counter("alpha", node=2)
        reg.counter("alpha", node=1)
        names = [(m.name, m.labels) for m in reg]
        assert names == sorted(names)

    def test_value_missing_raises(self):
        with pytest.raises(KeyError):
            MetricsRegistry().value("absent")


class TestMerge:
    def test_counters_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("polls", node=1).inc(2)
        b.counter("polls", node=1).inc(3)
        b.counter("polls", node=2).inc(1)
        merged = a.merge(b)
        assert merged.value("polls", node=1) == 5.0
        assert merged.value("polls", node=2) == 1.0
        # Operands untouched (MacStats.merge contract).
        assert a.value("polls", node=1) == 2.0

    def test_histograms_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", buckets=(1.0, 10.0)).observe(0.5)
        b.histogram("lat", buckets=(1.0, 10.0)).observe(5.0)
        merged = a.merge(b)
        hist = merged.histogram("lat", buckets=(1.0, 10.0))
        assert hist.count == 2
        assert hist.bucket_counts == [1, 1, 0]
        assert hist.sum == 5.5

    def test_histogram_bucket_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", buckets=(1.0,)).observe(0.5)
        b.histogram("lat", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_gauges_first_operand_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("health").set(1.0)
        b.gauge("health").set(3.0)
        assert a.merge(b).value("health") == 1.0
        # A gauge only the second operand has still carries over.
        b.gauge("only_b").set(7.0)
        assert a.merge(b).value("only_b") == 7.0

    def test_label_ordering_is_immaterial(self):
        # Kwarg order must not split one series in two — labels key by
        # sorted (name, value) pairs.
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("polls", node=1, channel=2).inc(2)
        b.counter("polls", channel=2, node=1).inc(3)
        merged = a.merge(b)
        assert merged.value("polls", node=1, channel=2) == 5.0
        assert merged.value("polls", channel=2, node=1) == 5.0
        # One merged series, not two.
        assert len([m for m in merged if m.name == "polls"]) == 1

    def test_merge_many_readers(self):
        readers = []
        for i in range(4):
            reg = MetricsRegistry()
            reg.counter("pab_mac_attempts_total").inc(i + 1)
            readers.append(reg)
        merged = readers[0].merge(*readers[1:])
        assert merged.value("pab_mac_attempts_total") == 10.0
