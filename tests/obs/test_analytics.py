"""Online anomaly detection: detectors, the monitor, and determinism.

The determinism contract under test mirrors the stream's: for a given
campaign the emitted anomaly sequence is byte-identical across repeated
runs, across sequential vs parallel execution, and across a
kill+resume splice (detector state rides the reader checkpoint).
"""

import json

import pytest

from repro.faults import EventLog, NoiseBurstInjector
from repro.net import Command, HealthPolicy, ReaderController, Response, RetryPolicy
from repro.obs import MetricsRegistry
from repro.obs.analytics import (
    SEVERITIES,
    AnomalyMonitor,
    CusumDetector,
    EwmaDetector,
    publish_anomalies,
)
from repro.obs.stream import (
    JsonlStreamSink,
    MemorySink,
    StreamAggregator,
    TelemetryBus,
    event_to_line,
    use_bus,
)


# ---------------------------------------------------------------------------
# Detector units
# ---------------------------------------------------------------------------


class TestEwmaDetector:
    def test_warmup_never_flags(self):
        detector = EwmaDetector(warmup=8)
        for x in [0.0, 100.0, -50.0, 3.0, 7.0, 1.0, 2.0, 9.0]:
            assert detector.observe(x) is None

    def test_flags_spike_after_stable_baseline(self):
        detector = EwmaDetector(warmup=8, threshold=4.0)
        for _ in range(12):
            assert detector.observe(1.0) is None
        hit = detector.observe(0.0)
        assert hit is not None
        assert hit["detector"] == "ewma"
        assert hit["value"] == 0.0
        assert hit["score"] >= 4.0

    def test_constant_series_has_finite_scores(self):
        # Zero variance must not divide by zero: the sigma floor keeps
        # the z-score finite (and the constant value itself un-flagged).
        detector = EwmaDetector(warmup=4)
        for _ in range(50):
            assert detector.observe(2.5) is None

    def test_adaptive_baseline_flags_recovery_too(self):
        detector = EwmaDetector(warmup=8, threshold=4.0)
        for _ in range(12):
            detector.observe(1.0)
        assert detector.observe(0.0) is not None  # onset
        for _ in range(20):
            detector.observe(0.0)                 # baseline re-learns 0.0
        assert detector.observe(1.0) is not None  # recovery flagged

    def test_snapshot_restore_round_trips(self):
        a = EwmaDetector(warmup=4)
        for x in [1.0, 2.0, 1.5, 1.2, 1.4, 1.1]:
            a.observe(x)
        b = EwmaDetector(warmup=4)
        b.restore_state(a.snapshot_state())
        for x in [1.3, 9.0, 1.2]:
            assert a.observe(x) == b.observe(x)
        assert a.snapshot_state() == b.snapshot_state()


class TestCusumDetector:
    def test_slow_drift_accumulates_to_detection(self):
        # Each step is only ~2 sigma from the frozen baseline — below
        # any single-sample threshold — but the sum trips.
        detector = CusumDetector(warmup=8, threshold=5.0, drift=0.5)
        baseline = [1.0, 1.02, 0.98, 1.01, 0.99, 1.0, 1.02, 0.98]
        for x in baseline:
            assert detector.observe(x) is None
        hits = [detector.observe(1.05) for _ in range(10)]
        assert any(h is not None for h in hits)

    def test_one_detection_per_excursion(self):
        # A persistent shift must not re-fire every round: the detector
        # disarms at the threshold crossing and rearms only after the
        # statistic decays back below it.
        detector = CusumDetector(warmup=8, threshold=5.0)
        for x in [1.0, 1.01, 0.99, 1.0, 1.01, 0.99, 1.0, 1.0]:
            detector.observe(x)
        hits = [detector.observe(2.0) for _ in range(30)]
        assert sum(1 for h in hits if h is not None) == 1

    def test_rearms_after_recovery(self):
        detector = CusumDetector(warmup=8, threshold=5.0)
        for x in [1.0, 1.01, 0.99, 1.0, 1.01, 0.99, 1.0, 1.0]:
            detector.observe(x)
        first = [detector.observe(2.0) for _ in range(10)]
        assert sum(1 for h in first if h) == 1
        # The clamp (2x threshold) bounds the decay time back to armed.
        recovery = [detector.observe(1.0) for _ in range(40)]
        assert all(h is None for h in recovery)
        assert detector.armed
        second = [detector.observe(2.0) for _ in range(10)]
        assert sum(1 for h in second if h) == 1

    def test_snapshot_restore_round_trips(self):
        a = CusumDetector(warmup=4)
        for x in [1.0, 1.1, 0.9, 1.0, 1.5, 1.6, 1.7]:
            a.observe(x)
        b = CusumDetector(warmup=4)
        b.restore_state(a.snapshot_state())
        for x in [1.8, 1.9, 1.0, 1.0]:
            assert a.observe(x) == b.observe(x)
        assert a.snapshot_state() == b.snapshot_state()


# ---------------------------------------------------------------------------
# The monitor
# ---------------------------------------------------------------------------


class TestAnomalyMonitor:
    def _warm(self, monitor, series="s", value=1.0, n=12, **kw):
        for _ in range(n):
            monitor.observe(series, value, **kw)

    def test_unknown_detector_kind_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown detector"):
            AnomalyMonitor(detectors=("bogus",))

    def test_payload_shape_and_rounding(self):
        monitor = AnomalyMonitor(detectors=("ewma",), warmup=8)
        self._warm(monitor, value=1.0, node=3)
        (payload,) = monitor.observe("s", 0.123456789, node=3, stage="mac", rnd=14)
        assert payload["series"] == "s"
        assert payload["node"] == 3
        assert payload["stage"] == "mac"
        assert payload["round"] == 14
        assert payload["severity"] in SEVERITIES
        assert payload["value"] == 0.123457  # 6-decimal rounding
        assert payload == json.loads(json.dumps(payload))

    def test_severity_escalates_with_score(self):
        monitor = AnomalyMonitor(
            detectors=("ewma",), ewma_threshold=4.0, critical_factor=2.0
        )
        self._warm(monitor, value=1.0)
        (payload,) = monitor.observe("s", 0.0)
        # Constant baseline: sigma floor 0.02 -> z = 50 >> 8.
        assert payload["severity"] == "critical"

    def test_disabled_monitor_is_inert(self):
        monitor = AnomalyMonitor(enabled=False)
        assert monitor.observe("s", 1.0) == []
        assert monitor.observe_campaign_round(0.0, {"outcomes": {}}) == []
        assert monitor.summary()["total"] == 0

    def test_non_finite_and_missing_values_skipped(self):
        monitor = AnomalyMonitor()
        assert monitor.observe("s", None) == []
        assert monitor.observe("s", float("nan")) == []
        assert monitor.observe("s", float("inf")) == []

    def test_series_are_independent_per_node(self):
        monitor = AnomalyMonitor(detectors=("ewma",))
        self._warm(monitor, node=1)
        # Node 2's detector has seen nothing: no detection, no warmup.
        assert monitor.observe("s", 0.0, node=2) == []
        assert monitor.observe("s", 0.0, node=1) != []

    def test_campaign_round_flags_delivery_and_names_stage(self):
        monitor = AnomalyMonitor(detectors=("ewma",))
        healthy = {
            "outcomes": {
                a: {"polled": True, "delivered": True} for a in (1, 2, 3)
            }
        }
        for t in range(12):
            assert monitor.observe_campaign_round(float(t), healthy) == []
        broken = {
            "outcomes": {
                1: {"polled": True, "delivered": True},
                2: {"polled": True, "delivered": False},
                3: {"polled": True, "delivered": True},
            }
        }
        hits = monitor.observe_campaign_round(12.0, broken)
        series = {(h["series"], h["node"]) for h in hits}
        assert ("delivery_ratio", -1) in series
        assert ("node_delivered", 2) in series
        by_series = {h["series"]: h for h in hits}
        assert by_series["delivery_ratio"]["stage"] == "mac"
        assert by_series["delivery_ratio"]["round"] == 12

    def test_campaign_round_watches_soc_and_burn(self):
        monitor = AnomalyMonitor(detectors=("ewma",))
        for t in range(12):
            record = {
                "outcomes": {1: {"polled": True, "delivered": True, "soc_v": 3.0}},
                "burn": {"delivery": 1.0},
            }
            monitor.observe_campaign_round(float(t), record)
        record = {
            "outcomes": {1: {"polled": True, "delivered": True, "soc_v": 1.8}},
            "burn": {"delivery": 14.0},
        }
        hits = monitor.observe_campaign_round(12.0, record)
        series = {h["series"] for h in hits}
        assert "soc_v" in series
        assert "slo_burn:delivery" in series
        stages = {h["series"]: h["stage"] for h in hits}
        assert stages["soc_v"] == "energy"
        assert stages["slo_burn:delivery"] == "slo"

    def test_link_quality_observes_histogram_delta_mean(self):
        monitor = AnomalyMonitor(detectors=("ewma",))
        registry = MetricsRegistry()
        snr = registry.histogram("pab_link_snr_db")
        for t in range(12):
            snr.observe(20.0)
            monitor.observe_campaign_round(
                float(t), {"outcomes": {}}, registry=registry
            )
        # Round 12's transactions average 0 dB: the *delta* mean is
        # anomalous even though the cumulative mean barely moves.
        snr.observe(0.0)
        hits = monitor.observe_campaign_round(
            12.0, {"outcomes": {}}, registry=registry
        )
        assert any(
            h["series"] == "snr_db" and h["stage"] == "link" for h in hits
        )

    def test_stage_fraction_series_from_profile_snapshot(self):
        monitor = AnomalyMonitor(detectors=("ewma",))
        for t in range(12):
            profile = {"stages": {"mac": {"total_s": 0.5}, "dsp": {"total_s": 0.5}}}
            monitor.observe_campaign_round(
                float(t), {"outcomes": {}}, profile=profile
            )
        hits = monitor.observe_campaign_round(
            12.0,
            {"outcomes": {}},
            profile={"stages": {"mac": {"total_s": 0.99}, "dsp": {"total_s": 0.01}}},
        )
        assert {h["series"] for h in hits} == {
            "stage_fraction:dsp", "stage_fraction:mac"
        }

    def test_summary_counts_by_severity(self):
        monitor = AnomalyMonitor(detectors=("ewma",))
        self._warm(monitor)
        monitor.observe("s", 0.0)
        summary = monitor.summary()
        assert summary["total"] == 1
        assert summary["warn"] + summary["critical"] == 1

    def test_snapshot_restore_continues_identically(self):
        a = AnomalyMonitor()
        values = [1.0, 1.01, 0.99, 1.0, 1.02, 0.98, 1.0, 1.0, 1.01, 0.99]
        for i, x in enumerate(values):
            a.observe("s", x, node=1, rnd=i)
        b = AnomalyMonitor()
        b.restore_state(a.snapshot_state())
        tail = [1.0, 0.0, 0.0, 1.0, 2.0]
        for i, x in enumerate(tail, start=len(values)):
            assert a.observe("s", x, node=1, rnd=i) == b.observe(
                "s", x, node=1, rnd=i
            )
        assert a.summary() == b.summary()
        assert a.snapshot_state() == b.snapshot_state()

    def test_restore_keeps_summary_total_across_checkpoint(self):
        a = AnomalyMonitor(detectors=("ewma",))
        self._warm(a)
        a.observe("s", 0.0)           # one pre-checkpoint detection
        state = a.snapshot_state()
        b = AnomalyMonitor(detectors=("ewma",))
        b.restore_state(state)
        assert b.summary()["total"] == 1
        assert b.anomalies == []      # envelope already on the stream
        assert b.snapshot_state() == a.snapshot_state()


class TestPublishAnomalies:
    def _detection(self, severity="warn"):
        return {
            "series": "delivery_ratio", "node": -1, "stage": "mac",
            "round": 12, "detector": "ewma", "severity": severity,
            "value": 0.5, "expected": 1.0, "deviation": -0.5,
            "score": 25.0, "threshold": 4.0,
        }

    def test_metrics_families(self):
        registry = MetricsRegistry()
        publish_anomalies(
            [self._detection(), self._detection("critical")],
            t=12.0, metrics=registry,
        )
        assert registry.value(
            "pab_anomaly_events_total",
            series="delivery_ratio", detector="ewma", severity="warn",
        ) == 1.0
        assert registry.value(
            "pab_anomaly_score", series="delivery_ratio", node=-1
        ) == 25.0

    def test_envelope_published_on_enabled_bus_only(self):
        sink = MemorySink()
        bus = TelemetryBus(sinks=[sink])
        publish_anomalies([self._detection()], t=12.0, bus=bus)
        (event,) = sink.events
        assert event["kind"] == "anomaly"
        assert event["source"] == "analytics"
        assert event["data"]["series"] == "delivery_ratio"
        disabled = TelemetryBus(enabled=False, sinks=[MemorySink()])
        publish_anomalies([self._detection()], t=12.0, bus=disabled)
        assert disabled.sinks[0].events == []


# ---------------------------------------------------------------------------
# Campaign-level determinism
# ---------------------------------------------------------------------------
#
# A 3-node stub fleet where node 2 goes dark at round 12 (after the
# 8-round detector warmup): the delivery shift is sharp, so both
# detector families fire and the anomaly stream is non-trivial.


class _StubResult:
    def __init__(self, packet):
        self.success = True
        self.demod = type("Demod", (), {})()
        self.demod.packet = packet
        self.demod.success = True


def _stub(address):
    def transact(query):
        response = Response(source=address, command=query.command)
        return _StubResult(response.to_packet())

    return transact


def _make_fleet(seed=7, nodes=3):
    log = EventLog()
    transports = {}
    for addr in range(1, nodes + 1):
        inner = _stub(addr)
        if addr == 2:
            inner = NoiseBurstInjector(
                inner, start=12, duration=6, node=addr, log=log,
                seed=seed + addr,
            )
        transports[addr] = inner
    reader = ReaderController(
        transports,
        retry_policy=RetryPolicy(
            max_retries=1, base_backoff_s=0.1, jitter=0.25, seed=seed
        ),
        health_policy=HealthPolicy(
            degrade_after=2, quarantine_after=4, recover_after=2,
            probe_backoff_rounds=2,
        ),
        log=log,
        metrics=MetricsRegistry(),
        analytics=AnomalyMonitor(),
    )
    return reader


def _anomaly_lines(events):
    return [event_to_line(e) for e in events if e["kind"] == "anomaly"]


def _run_streamed(parallel=0, *, rounds=20, seed=7):
    sink = MemorySink()
    bus = TelemetryBus(sinks=[sink])
    with use_bus(bus):
        reader = _make_fleet(seed=seed)
        if parallel:
            from repro.perf.fleet import FleetEngine

            reader.parallel = parallel
            reader._engine = FleetEngine(max_workers=parallel)
        reader.run_campaign(Command.PING, rounds)
    bus.close()
    return reader, sink


class TestCampaignDeterminism:
    def test_identical_campaigns_emit_byte_identical_anomalies(self):
        first = _anomaly_lines(_run_streamed()[1].events)
        second = _anomaly_lines(_run_streamed()[1].events)
        assert first, "fixture campaign must produce anomalies"
        assert first == second

    def test_parallel_equals_sequential(self):
        sequential = _anomaly_lines(_run_streamed(0)[1].events)
        assert sequential
        for width in (1, 3):
            assert _anomaly_lines(_run_streamed(width)[1].events) == sequential

    def test_monitor_state_checkpoints_with_reader(self):
        reader, _ = _run_streamed(rounds=10)
        state = reader.snapshot()
        assert "analytics" in state
        json.dumps(state)  # checkpoint must stay JSON-serializable
        fresh = _make_fleet()
        fresh.restore(state)
        assert (
            fresh.analytics.snapshot_state()
            == reader.analytics.snapshot_state()
        )

    def test_kill_resume_splice_matches_uninterrupted(self, tmp_path):
        # Reference: one uninterrupted 20-round campaign.
        _, full_sink = _run_streamed(rounds=20)
        reference = StreamAggregator()
        for event in full_sink.events:
            reference.feed(event)
        assert reference.anomalies, "reference campaign must flag anomalies"

        # Interrupted at round 14 (checkpoint at 8), resumed to 20 on a
        # fresh fleet appending to the same stream file.
        path = tmp_path / "stream.jsonl"
        bus = TelemetryBus(sinks=[JsonlStreamSink(path)])
        with use_bus(bus):
            reader = _make_fleet()
            reader.run_campaign(
                Command.PING, 14, checkpoint_every=8, checkpoint_dir=tmp_path
            )
        bus.close()
        resume_bus = TelemetryBus(sinks=[JsonlStreamSink(path)])
        resume_bus.seq = JsonlStreamSink.last_seq(path) + 1
        with use_bus(resume_bus):
            reader2 = _make_fleet()
            reader2.run_campaign(
                Command.PING, 20,
                resume_from=tmp_path / "checkpoint-000008.json",
            )
        resume_bus.close()

        spliced = StreamAggregator()
        spliced.feed_file(path)
        assert [e["data"] for e in spliced.anomalies] == [
            e["data"] for e in reference.anomalies
        ]
        assert spliced.anomaly_counts() == reference.anomaly_counts()
