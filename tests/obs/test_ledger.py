"""Tests for the per-node energy ledger and round-mode harness."""

import math

import pytest

from repro.circuits.storage import Supercapacitor
from repro.constants import POWER_UP_THRESHOLD_V
from repro.node.power import NodePowerModel, PowerState
from repro.obs import (
    DIRECTIONS,
    EnergyLedger,
    MetricsRegistry,
    NodeEnergyHarness,
    ProbeRegistry,
    metrics_to_prometheus,
    use_probes,
)


def charge_steps(cap, *, n=200, dt=0.05, v_oc=4.0, r_out=4e3, i_load=0.0):
    for _ in range(n):
        cap.charge_from_source(dt, v_oc, r_out, i_load_a=i_load)


class TestImportOrder:
    def test_net_first_import_does_not_cycle(self):
        """Regression: the ledger's repro.node dependency closes a cycle
        through net.messages -> dsp -> obs, so the obs package must load
        it lazily.  A fresh interpreter importing repro.net first used
        to raise ImportError."""
        import os
        import subprocess
        import sys

        code = (
            "import repro.net; import repro.obs; "
            "assert repro.obs.EnergyLedger.__name__ == 'EnergyLedger'"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True,
        )
        assert proc.returncode == 0, proc.stderr.decode()


class TestConservation:
    def test_balance_closes_to_float_precision(self):
        cap = Supercapacitor(initial_voltage_v=1.0)
        ledger = EnergyLedger(node=3).attach(cap)
        ledger.set_state(PowerState.IDLE)
        charge_steps(cap, i_load=50e-6)
        balance = ledger.balance()
        assert balance["harvested_j"] > 0
        assert balance["consumed_j"] > 0
        assert abs(balance["error_fraction"]) < 1e-9

    def test_clamp_loss_is_booked_not_silent(self):
        cap = Supercapacitor(initial_voltage_v=5.4, max_voltage_v=5.5)
        ledger = EnergyLedger().attach(cap)
        # Ferocious source: the cap hits the rating and the clamp bites.
        charge_steps(cap, n=50, dt=0.5, v_oc=20.0, r_out=100.0)
        assert cap.voltage_v == pytest.approx(5.5)
        assert ledger.clamped_j > 0
        assert abs(ledger.balance()["error_fraction"]) < 1e-9

    def test_floor_clamp_reduces_effective_load(self):
        cap = Supercapacitor(initial_voltage_v=0.05)
        ledger = EnergyLedger().attach(cap)
        # Load far beyond the stored charge: voltage floors at 0 V and
        # only the energy that existed is booked as consumed.
        cap.step(10.0, i_in_a=0.0, i_load_a=1.0)
        assert cap.voltage_v == 0.0
        assert ledger.consumed_j <= 0.5 * cap.capacitance_f * 0.05**2 + 1e-12
        assert abs(ledger.balance()["error_j"]) < 1e-12

    def test_reset_jump_lands_in_adjusted(self):
        cap = Supercapacitor(initial_voltage_v=1.0)
        ledger = EnergyLedger().attach(cap)
        charge_steps(cap, n=20)
        cap.reset(voltage_v=3.0)  # by-fiat jump, not a physical flow
        charge_steps(cap, n=20)
        balance = ledger.balance()
        assert balance["adjusted_j"] != 0.0
        assert abs(balance["error_fraction"]) < 1e-9

    def test_balance_keys(self):
        keys = set(EnergyLedger().balance())
        assert {
            "harvested_j", "consumed_j", "leaked_j", "clamped_j",
            "adjusted_j", "stored_delta_j", "error_j", "error_fraction",
        } <= keys


class TestBuckets:
    def test_flows_bucketed_by_state(self):
        cap = Supercapacitor(initial_voltage_v=2.0)
        ledger = EnergyLedger().attach(cap)
        ledger.set_state(PowerState.IDLE)
        charge_steps(cap, n=10, i_load=50e-6)
        ledger.set_state(PowerState.BACKSCATTER)
        charge_steps(cap, n=10, i_load=200e-6)
        assert ledger.total("consumed", PowerState.IDLE) > 0
        assert ledger.total("consumed", PowerState.BACKSCATTER) > 0
        assert ledger.consumed_j == pytest.approx(
            ledger.total("consumed", PowerState.IDLE)
            + ledger.total("consumed", PowerState.BACKSCATTER)
        )

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError):
            EnergyLedger().total("wasted")

    def test_duty_cycle_fractions(self):
        cap = Supercapacitor(initial_voltage_v=3.0)
        ledger = EnergyLedger().attach(cap)
        ledger.set_state(PowerState.IDLE)
        charge_steps(cap, n=30, dt=0.1)
        ledger.set_state(PowerState.DECODING)
        charge_steps(cap, n=10, dt=0.1)
        duty = ledger.duty_cycle()
        assert duty["idle"] == pytest.approx(0.75)
        assert duty["decoding"] == pytest.approx(0.25)
        assert sum(duty.values()) == pytest.approx(1.0)

    def test_duty_cycle_empty_before_any_time(self):
        assert EnergyLedger().duty_cycle() == {}

    def test_advance_without_capacitor_uses_power_model(self):
        model = NodePowerModel()
        ledger = EnergyLedger(node=1, power_model=model)
        ledger.advance(PowerState.IDLE, 10.0)
        expected = model.power_w(PowerState.IDLE) * 10.0
        assert ledger.consumed_j == pytest.approx(expected)
        ledger.advance(PowerState.IDLE, 5.0, harvested_w=2e-4)
        assert ledger.harvested_j == pytest.approx(1e-3)

    def test_advance_rejects_negative_dt(self):
        with pytest.raises(ValueError):
            EnergyLedger().advance(PowerState.IDLE, -1.0)


class TestBrownouts:
    def test_powered_to_cold_counts(self):
        ledger = EnergyLedger()
        ledger.set_state(PowerState.IDLE)
        ledger.set_state(PowerState.COLD)
        ledger.set_state(PowerState.IDLE)
        ledger.set_state(PowerState.COLD)
        assert ledger.brownouts == 2

    def test_cold_to_cold_does_not_count(self):
        ledger = EnergyLedger()
        ledger.set_state(PowerState.COLD)
        assert ledger.brownouts == 0

    def test_margin_nan_until_powered(self):
        cap = Supercapacitor(initial_voltage_v=1.0)
        ledger = EnergyLedger().attach(cap)
        charge_steps(cap, n=5)  # still COLD
        assert math.isnan(ledger.brownout_margin_v)

    def test_margin_measures_powered_headroom(self):
        cap = Supercapacitor(initial_voltage_v=3.0)
        ledger = EnergyLedger().attach(cap)
        ledger.set_state(PowerState.IDLE)
        charge_steps(cap, n=5, v_oc=0.0, i_load=1e-3)  # discharging
        assert ledger.brownout_margin_v == pytest.approx(
            cap.voltage_v - POWER_UP_THRESHOLD_V
        )


class TestSocSeries:
    def test_decimation_bounds_memory_and_doubles_stride(self):
        cap = Supercapacitor(initial_voltage_v=1.0)
        ledger = EnergyLedger(max_soc_samples=16).attach(cap)
        charge_steps(cap, n=500, dt=0.01)
        times, volts = ledger.soc_series()
        assert len(volts) <= 16
        assert ledger._soc_stride > 1
        assert times == sorted(times)

    def test_series_tracks_voltage(self):
        cap = Supercapacitor(initial_voltage_v=1.0)
        ledger = EnergyLedger().attach(cap)
        charge_steps(cap, n=50)
        _, volts = ledger.soc_series()
        assert volts[-1] == pytest.approx(cap.voltage_v)
        assert volts[-1] > volts[0]

    def test_tiny_cap_rejected(self):
        with pytest.raises(ValueError):
            EnergyLedger(max_soc_samples=1)

    def test_publish_probe_no_op_when_disabled(self):
        cap = Supercapacitor(initial_voltage_v=1.0)
        ledger = EnergyLedger().attach(cap)
        charge_steps(cap, n=5)
        assert ledger.publish_probe() is None

    def test_publish_probe_captures_waveform(self):
        cap = Supercapacitor(initial_voltage_v=1.0)
        ledger = EnergyLedger(node=5).attach(cap)
        charge_steps(cap, n=50)
        with use_probes(ProbeRegistry()) as probes:
            tap = ledger.publish_probe()
            assert tap is not None
            assert probes.latest("node.energy") is tap
        assert tap.diagnostics["node"] == 5
        assert list(tap.waveform) == ledger.soc_series()[1]


class TestMetricsExport:
    def make_ledger(self):
        cap = Supercapacitor(initial_voltage_v=2.0)
        ledger = EnergyLedger(node=4).attach(cap)
        ledger.set_state(PowerState.IDLE)
        charge_steps(cap, n=20, i_load=50e-6)
        return ledger

    def test_gauges_and_counters_published(self):
        ledger = self.make_ledger()
        registry = MetricsRegistry()
        ledger.to_metrics(registry)
        assert registry.value("pab_node_soc_volts", node=4) == pytest.approx(
            ledger.last_voltage_v
        )
        assert registry.value(
            "pab_node_energy_joules_total", node=4,
            direction="harvested", state="idle",
        ) == pytest.approx(ledger.harvested_j)

    def test_repeated_export_does_not_double_count(self):
        ledger = self.make_ledger()
        registry = MetricsRegistry()
        ledger.to_metrics(registry)
        first = registry.value(
            "pab_node_energy_joules_total", node=4,
            direction="consumed", state="idle",
        )
        ledger.to_metrics(registry)
        assert registry.value(
            "pab_node_energy_joules_total", node=4,
            direction="consumed", state="idle",
        ) == pytest.approx(first)

    def test_export_pushes_only_the_delta(self):
        cap = Supercapacitor(initial_voltage_v=2.0)
        ledger = EnergyLedger(node=4).attach(cap)
        ledger.set_state(PowerState.IDLE)
        registry = MetricsRegistry()
        charge_steps(cap, n=10)
        ledger.to_metrics(registry)
        charge_steps(cap, n=10)
        ledger.to_metrics(registry)
        assert registry.value(
            "pab_node_energy_joules_total", node=4,
            direction="harvested", state="idle",
        ) == pytest.approx(ledger.harvested_j)

    def test_prometheus_exposition_escapes_labels(self):
        ledger = self.make_ledger()
        registry = MetricsRegistry()
        ledger.to_metrics(registry)
        text = metrics_to_prometheus(registry)
        assert 'pab_node_energy_joules_total{' in text
        assert 'direction="harvested"' in text
        assert 'state="idle"' in text
        assert 'node="4"' in text
        # Directions are plain identifiers; nothing should need escaping.
        for direction in DIRECTIONS:
            assert "\\" not in direction


class TestNodeEnergyHarness:
    def test_powered_round_segments_and_books(self):
        harness = NodeEnergyHarness(2, v_oc_v=4.0)
        info = harness.on_poll_round(0.0, polled=True, success=True)
        assert info["node"] == 2
        assert info["powered"]
        ledger = harness.ledger
        assert ledger.state_seconds[PowerState.DECODING] == pytest.approx(0.1)
        assert ledger.state_seconds[PowerState.BACKSCATTER] == pytest.approx(0.2)
        assert ledger.state_seconds[PowerState.IDLE] == pytest.approx(0.7)
        assert abs(ledger.balance()["error_fraction"]) < 1e-9

    def test_unpolled_round_idles(self):
        harness = NodeEnergyHarness(2)
        harness.on_poll_round(0.0, polled=False, success=False)
        assert harness.ledger.state_seconds[PowerState.DECODING] == 0.0
        assert harness.ledger.state_seconds[PowerState.IDLE] == pytest.approx(1.0)

    def test_starved_node_browns_out_and_is_unsustainable(self):
        # Source below the cap voltage: diodes block, pure discharge.
        harness = NodeEnergyHarness(
            9, v_oc_v=1.5, initial_voltage_v=2.6, bitrate=2_000.0,
        )
        infos = [
            harness.on_poll_round(float(t), polled=True, success=True)
            for t in range(400)
        ]
        assert not infos[-1]["powered"]
        assert harness.ledger.brownouts >= 1
        assert harness.ledger.brownout_margin_v < 0.0
        # Every round after the brownout is energy-unsustainable.
        assert not infos[-1]["sustainable"]
        # Near-zero harvest makes the relative error meaningless; the
        # absolute books still close.
        assert abs(harness.ledger.balance()["error_j"]) < 1e-9

    def test_well_fed_node_is_sustainable(self):
        harness = NodeEnergyHarness(1, v_oc_v=4.5, r_out_ohm=2e3)
        # Let the cap settle toward equilibrium first.
        for t in range(30):
            info = harness.on_poll_round(float(t), polled=True, success=True)
        assert info["powered"]
        assert info["sustainable"]

    def test_round_history_feeds_timeline(self):
        harness = NodeEnergyHarness(3)
        harness.on_poll_round(0.0, polled=True, success=False)
        harness.on_poll_round(1.0, polled=True, success=True)
        assert len(harness.ledger.round_history) == 2
        assert harness.ledger.round_history[1]["t"] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeEnergyHarness(1, decode_s=0.6, backscatter_s=0.6)
        with pytest.raises(ValueError):
            NodeEnergyHarness(1, brownout_v=3.0, threshold_v=2.5)
        with pytest.raises(ValueError):
            NodeEnergyHarness(1, poll_period_s=0.0)

    def test_summary_and_metrics_delegate(self):
        harness = NodeEnergyHarness(6)
        harness.on_poll_round(0.0, polled=True, success=True)
        assert harness.summary()["node"] == 6
        registry = MetricsRegistry()
        harness.to_metrics(registry)
        assert registry.value("pab_node_soc_volts", node=6) > 0
