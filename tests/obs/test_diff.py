"""Campaign diff engine: loading, alignment, attribution, gating.

Two real streamed campaigns back the stream-kind tests: a clean seeded
run and the same fleet with a noise burst injected on node 2.  The
drift between them must be attributed to the right node and the right
failure-taxonomy class (and therefore the right stage), and the gate
must trip on the faulted pair while staying clean on the identical
pair — the exact contract the CI drift job relies on.
"""

import json

import pytest

from repro.faults import EventLog, NoiseBurstInjector
from repro.net import Command, HealthPolicy, ReaderController, Response, RetryPolicy
from repro.obs import MetricsRegistry, SLOTracker
from repro.obs.analytics import AnomalyMonitor
from repro.obs.diff import (
    ENERGY_BUCKETS,
    DiffThresholds,
    _delta_map,
    _energy_bucket,
    diff_campaigns,
    drift_to_json,
    load_artifact,
    render_drift,
)
from repro.obs.ledger import NodeEnergyHarness
from repro.obs.stream import JsonlStreamSink, TelemetryBus, use_bus


class _StubResult:
    def __init__(self, packet):
        self.success = True
        self.demod = type("Demod", (), {})()
        self.demod.packet = packet
        self.demod.success = True


def _stub(address):
    def transact(query):
        response = Response(source=address, command=query.command)
        return _StubResult(response.to_packet())

    return transact


def _run_campaign(path, *, fault=False, rounds=20, seed=7, nodes=3):
    log = EventLog()
    transports, harnesses = {}, {}
    for addr in range(1, nodes + 1):
        inner = _stub(addr)
        if fault and addr == 2:
            inner = NoiseBurstInjector(
                inner, start=12, duration=6, node=addr, log=log,
                seed=seed + addr,
            )
        transports[addr] = inner
        harnesses[addr] = NodeEnergyHarness(
            addr, v_oc_v=3.4 + 0.15 * addr, r_out_ohm=4.0e3,
            initial_voltage_v=3.0,
        )
    bus = TelemetryBus(sinks=[JsonlStreamSink(path)])
    with use_bus(bus):
        reader = ReaderController(
            transports,
            retry_policy=RetryPolicy(
                max_retries=1, base_backoff_s=0.1, jitter=0.25, seed=seed
            ),
            health_policy=HealthPolicy(
                degrade_after=2, quarantine_after=4, recover_after=2,
                probe_backoff_rounds=2,
            ),
            log=log,
            metrics=MetricsRegistry(),
            ledgers=harnesses,
            slo=SLOTracker(window=10),
            analytics=AnomalyMonitor(),
        )
        reader.run_campaign(Command.PING, rounds)
    bus.close()
    return path


@pytest.fixture(scope="module")
def clean_stream(tmp_path_factory):
    return _run_campaign(tmp_path_factory.mktemp("diff") / "clean.jsonl")


@pytest.fixture(scope="module")
def clean_stream_again(tmp_path_factory):
    return _run_campaign(tmp_path_factory.mktemp("diff") / "clean2.jsonl")


@pytest.fixture(scope="module")
def faulted_stream(tmp_path_factory):
    return _run_campaign(
        tmp_path_factory.mktemp("diff") / "faulted.jsonl", fault=True
    )


# ---------------------------------------------------------------------------
# Artifact loading
# ---------------------------------------------------------------------------


class TestLoadArtifact:
    def test_stream_summary_shape(self, clean_stream):
        summary = load_artifact(clean_stream)
        assert summary["kind"] == "stream"
        assert summary["rounds"] == 20
        assert summary["delivery_ratio"] == 1.0
        assert set(summary["per_node_delivery"]) == {"1", "2", "3"}
        assert len(summary["round_delivery"]) == 20
        assert summary["soc_final"]  # harnesses streamed SoC

    def test_faulted_stream_counts_taxonomy(self, faulted_stream):
        summary = load_artifact(faulted_stream)
        assert summary["faults"].get("noise_burst", 0) > 0
        assert "2" in summary["fault_nodes"]["noise_burst"]
        assert summary["delivery_ratio"] < 1.0

    def test_bench_document(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps({
            "records": [{
                "rounds": 5, "delivery_ratio": 0.9,
                "stages": {"mac": {"fraction": 0.6}, "dsp": {"fraction": 0.4}},
            }],
        }))
        summary = load_artifact(path)
        assert summary["kind"] == "bench"
        assert summary["stage_fractions"] == {"mac": 0.6, "dsp": 0.4}

    def test_report_document(self, tmp_path):
        path = tmp_path / "report.json"
        path.write_text(json.dumps({
            "rounds": 10,
            "network": {"delivery_ratio": 0.9},
            "nodes": {"1": {"delivery_ratio": 0.8}},
            "slo": {"delivery": {"burn_rate": 1.5}},
        }))
        summary = load_artifact(path)
        assert summary["kind"] == "report"
        assert summary["per_node_delivery"] == {"1": 0.8}
        assert summary["burn"] == {"delivery": 1.5}

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty artifact"):
            load_artifact(path)

    def test_garbage_raises(self, tmp_path):
        path = tmp_path / "garbage.txt"
        path.write_text("this is not telemetry\n")
        with pytest.raises(ValueError, match="not a campaign artifact"):
            load_artifact(path)

    def test_bench_without_records_raises(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text('{"records": []}')
        with pytest.raises(ValueError, match="no records"):
            load_artifact(path)


# ---------------------------------------------------------------------------
# Diffing and attribution
# ---------------------------------------------------------------------------


class TestDiffCampaigns:
    def test_identical_campaigns_gate_clean(self, clean_stream, clean_stream_again):
        report = diff_campaigns(clean_stream, clean_stream_again)
        assert report["gate"]["drifted"] is False
        assert report["gate"]["failures"] == []
        assert report["rounds_diverged"]["count"] == 0
        assert report["deltas"]["delivery_ratio"]["delta"] == 0.0

    def test_fault_injection_trips_gate(self, clean_stream, faulted_stream):
        report = diff_campaigns(clean_stream, faulted_stream)
        assert report["gate"]["drifted"] is True
        assert any("delivery" in f for f in report["gate"]["failures"])
        assert report["rounds_diverged"]["first"] >= 12

    def test_attribution_names_taxonomy_node_and_stage(
        self, clean_stream, faulted_stream
    ):
        report = diff_campaigns(clean_stream, faulted_stream)
        attribution = report["attribution"]
        kinds = {entry["kind"]: entry for entry in attribution}
        assert kinds["taxonomy"]["target"] == "noise_burst"
        assert kinds["taxonomy"]["stage"] == "link.hydrophone_dsp"
        assert kinds["node"]["target"] == "node 2"
        assert kinds["node"]["taxonomy"] == "noise_burst"
        assert kinds["node"]["stage"] == "link.hydrophone_dsp"

    def test_diff_is_symmetric_in_magnitude(self, clean_stream, faulted_stream):
        forward = diff_campaigns(clean_stream, faulted_stream)
        backward = diff_campaigns(faulted_stream, clean_stream)
        assert (
            forward["deltas"]["delivery_ratio"]["delta"]
            == -backward["deltas"]["delivery_ratio"]["delta"]
        )

    def test_loose_thresholds_pass_the_faulted_pair(
        self, clean_stream, faulted_stream
    ):
        report = diff_campaigns(
            clean_stream, faulted_stream,
            thresholds=DiffThresholds(
                delivery_ratio=1.0, node_delivery_ratio=1.0,
                stage_fraction=1.0, taxonomy_count=10_000,
                soc_v=10.0, burn_rate=1e9, anomaly_count=10_000,
            ),
        )
        assert report["gate"]["drifted"] is False

    def test_cross_kind_raises(self, clean_stream, tmp_path):
        bench = tmp_path / "BENCH.json"
        bench.write_text(json.dumps({
            "records": [{"rounds": 5, "stages": {"mac": {"fraction": 1.0}}}],
        }))
        with pytest.raises(ValueError, match="cannot diff"):
            diff_campaigns(clean_stream, bench)

    def test_bench_diff_attributes_stage(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps({"records": [{
            "rounds": 5, "stages": {
                "link.node": {"fraction": 0.5},
                "link.hydrophone_dsp": {"fraction": 0.5},
            },
        }]}))
        b.write_text(json.dumps({"records": [{
            "rounds": 5, "stages": {
                "link.node": {"fraction": 0.2},
                "link.hydrophone_dsp": {"fraction": 0.8},
            },
        }]}))
        report = diff_campaigns(a, b)
        assert report["kind"] == "bench"
        assert report["gate"]["drifted"] is True
        stage_entries = [
            e for e in report["attribution"] if e["kind"] == "stage"
        ]
        assert stage_entries[0]["target"] in (
            "link.node", "link.hydrophone_dsp"
        )

    def test_report_diff_round_count_mismatch_gates(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps({"rounds": 10, "network": {"delivery_ratio": 0.9}}))
        b.write_text(json.dumps({"rounds": 12, "network": {"delivery_ratio": 0.9}}))
        report = diff_campaigns(a, b)
        assert any("round count" in f for f in report["gate"]["failures"])


class TestDeterminism:
    def test_drift_json_byte_identical_across_runs(
        self, clean_stream, faulted_stream
    ):
        first = drift_to_json(diff_campaigns(clean_stream, faulted_stream))
        second = drift_to_json(diff_campaigns(clean_stream, faulted_stream))
        assert first == second
        assert first.endswith("\n")
        json.loads(first)  # canonical rendering stays parseable

    def test_rerun_campaign_diffs_clean_and_identically(
        self, clean_stream, clean_stream_again
    ):
        # The golden-baseline property: re-running the seeded campaign
        # produces an artifact whose diff against the original is clean.
        report = diff_campaigns(clean_stream, clean_stream_again)
        assert report["gate"]["drifted"] is False


class TestRenderDrift:
    def test_render_names_attribution_and_gate(
        self, clean_stream, faulted_stream
    ):
        text = render_drift(diff_campaigns(clean_stream, faulted_stream))
        assert "campaign diff (stream)" in text
        assert "-- attribution (most suspect first) --" in text
        assert "noise_burst" in text
        assert "link.hydrophone_dsp" in text
        assert "-- gate: DRIFTED --" in text
        assert "FAIL" in text

    def test_render_clean(self, clean_stream, clean_stream_again):
        text = render_drift(diff_campaigns(clean_stream, clean_stream_again))
        assert "gate: clean" in text
        assert "FAIL" not in text


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


class TestHelpers:
    def test_delta_map_keeps_missing_distinct_from_zero(self):
        out = _delta_map({"x": 1.0}, {"y": 2.0})
        assert out["x"] == {"a": 1.0, "b": None, "delta": -1.0}
        assert out["y"] == {"a": None, "b": 2.0, "delta": 2.0}

    def test_delta_map_skips_double_nan(self):
        out = _delta_map({"x": float("nan")}, {"x": float("nan")})
        assert out == {}

    def test_energy_bucket_thresholds(self):
        thresholds = DiffThresholds()
        assert _energy_bucket(3.0, thresholds) == "charged"
        assert _energy_bucket(2.5, thresholds) == "charged"
        assert _energy_bucket(2.3, thresholds) == "marginal"
        assert _energy_bucket(2.0, thresholds) == "browned_out"
        assert set(ENERGY_BUCKETS) == {"charged", "marginal", "browned_out"}
