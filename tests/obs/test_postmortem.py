"""Tests for decode post-mortems: classification, assembly, JSONL."""

import numpy as np
import pytest

from repro.faults.injectors import (
    FAULT_FAILING_STAGES,
    BrownoutInjector,
    GarbledReplyInjector,
    GilbertElliottInjector,
    NoiseBurstInjector,
    TransportError,
    TransportExceptionInjector,
)
from repro.obs.postmortem import (
    DecodePostmortem,
    StageFinding,
    load_postmortems_jsonl,
    postmortems_to_jsonl,
    write_postmortems_jsonl,
)
from repro.obs.probe import ProbeRegistry, use_probes


class OkResult:
    success = True


QUERY = object()  # injectors never look inside the query


def ok_transport(query):
    return OkResult()


class TestFromFault:
    @pytest.mark.parametrize("fault", sorted(FAULT_FAILING_STAGES))
    def test_names_the_failing_stage(self, fault):
        pm = DecodePostmortem.from_fault(fault, node=7)
        assert pm.failure == "injected_fault"
        assert pm.fault == fault
        assert pm.failing_stage == FAULT_FAILING_STAGES[fault]
        assert fault in pm.verdict
        assert pm.failing_stage in pm.verdict
        assert pm.node == 7

    def test_unknown_fault_still_classifies(self):
        pm = DecodePostmortem.from_fault("made_up")
        assert pm.failing_stage == "unknown"
        assert pm.failure == "injected_fault"

    def test_stage_map_covers_all_injectors(self):
        assert FAULT_FAILING_STAGES == {
            "noise_burst": "link.hydrophone_dsp",
            "brownout": "link.node",
            "gilbert_elliott": "link.uplink_propagation",
            "garbled": "link.hydrophone_dsp",
            "transport_exception": "transport",
            "worker_crash": "engine",
            "watchdog_timeout": "engine",
        }


class TestInjectorsRecordPostmortems:
    """Acceptance criterion: every injector class files a verdict."""

    @pytest.mark.parametrize("make", [
        lambda: NoiseBurstInjector(ok_transport, start=0, duration=1),
        lambda: BrownoutInjector(ok_transport, at=0),
        lambda: GilbertElliottInjector(
            ok_transport, start_bad=True, bad_loss=1.0, p_bad_to_good=0.0,
            seed=0,
        ),
        lambda: GarbledReplyInjector(ok_transport, at=(0,)),
    ])
    def test_injected_result_carries_postmortem(self, make):
        probes = ProbeRegistry()
        with use_probes(probes):
            result = make()(QUERY)
        assert not result.success
        pm = result.postmortem
        assert pm is not None
        assert pm.fault == result.fault
        assert pm.failing_stage == FAULT_FAILING_STAGES[result.fault]
        assert result.fault in pm.verdict
        assert probes.postmortems == [pm]

    def test_transport_exception_files_before_raising(self):
        probes = ProbeRegistry()
        inj = TransportExceptionInjector(ok_transport, at=(0,))
        with use_probes(probes):
            with pytest.raises(TransportError):
                inj(QUERY)
        assert len(probes.postmortems) == 1
        assert probes.postmortems[0].fault == "transport_exception"
        assert probes.postmortems[0].failing_stage == "transport"

    def test_probes_disabled_means_no_postmortem(self):
        inj = BrownoutInjector(ok_transport, at=0)
        result = inj(QUERY)  # global registry is disabled by default
        assert result.postmortem is None


class _FailingLinkRuns:
    """Shared noisy-link transacts (expensive, so class-scoped)."""

    @staticmethod
    def run(noise_db):
        from repro.acoustics import POOL_A, Position
        from repro.acoustics.noise import AmbientNoiseModel
        from repro.core import BackscatterLink, Projector
        from repro.net.messages import Command, Query
        from repro.node.node import PABNode
        from repro.piezo import Transducer

        transducer = Transducer.from_cylinder_design()
        f = transducer.resonance_hz
        projector = Projector(
            transducer=transducer, drive_voltage_v=50.0, carrier_hz=f
        )
        node = PABNode(address=7, channel_frequencies_hz=(f,), bitrate=1_000.0)
        link = BackscatterLink(
            POOL_A, projector, Position(0.5, 1.5, 0.6),
            node, Position(1.5, 1.5, 0.6), Position(1.0, 0.8, 0.6),
            noise=AmbientNoiseModel(
                spectrum="flat", flat_level_db=noise_db, seed=0
            ),
        )
        probes = ProbeRegistry()
        with use_probes(probes):
            result = link.transact(Query(destination=7, command=Command.PING))
        return probes, result


class TestFromLink(_FailingLinkRuns):
    @pytest.fixture(scope="class")
    def crc_failed(self):
        return self.run(noise_db=120.0)

    def test_crc_fail_autopsy(self, crc_failed):
        probes, result = crc_failed
        assert not result.success
        pm = result.postmortem
        assert pm is not None
        assert pm.failure == "crc_fail"
        assert pm.failing_stage == "link.hydrophone_dsp"
        assert "sync found" in pm.verdict
        assert "CRC failed" in pm.verdict
        assert probes.postmortems == [pm]

    def test_findings_cover_the_pipeline(self, crc_failed):
        _, result = crc_failed
        stages = {f.stage for f in result.postmortem.findings}
        assert "link.node" in stages
        assert "sync.detect_packet" in stages
        assert "link.hydrophone_dsp" in stages

    def test_render_contains_verdict_and_findings(self, crc_failed):
        _, result = crc_failed
        text = result.postmortem.render()
        assert "crc_fail at link.hydrophone_dsp" in text
        assert "verdict:" in text
        assert "[ok]" in text

    def test_verdict_on_the_root_span(self):
        from repro.obs.trace import Tracer, use_tracer

        tracer = Tracer()
        with use_tracer(tracer):
            _, result = self.run(noise_db=120.0)
        root = [s for s in tracer.spans if s.name == "link.transact"][0]
        assert root.attrs["postmortem_verdict"] == result.postmortem.verdict
        assert root.attrs["failing_stage"] == "link.hydrophone_dsp"


class TestFromLinkShapes:
    """Classification paths exercised with synthetic results/taps."""

    class _Result:
        powered_up = True
        query_decoded = True
        response = object()
        demod = None
        fault = None
        snr_db = float("nan")
        budget = None

        @property
        def success(self):
            return False

    def test_no_power_up(self):
        result = self._Result()
        result.powered_up = False
        probes = ProbeRegistry()
        probes.capture(
            "link.node", "power_up", incident_pressure_pa=3.0, powered=False
        )
        pm = DecodePostmortem.from_link(result, probes)
        assert pm.failure == "no_power_up"
        assert pm.failing_stage == "link.node"
        assert pm.findings[0].status == "failed"

    def test_query_not_decoded(self):
        result = self._Result()
        result.query_decoded = False
        pm = DecodePostmortem.from_link(result, ProbeRegistry())
        assert pm.failure == "query_not_decoded"

    def test_no_response(self):
        result = self._Result()
        result.response = None
        pm = DecodePostmortem.from_link(result, ProbeRegistry())
        assert pm.failure == "no_response"

    def test_sync_miss_quotes_the_margin(self):
        result = self._Result()
        probes = ProbeRegistry()
        probes.capture(
            "sync.detect_packet", "correlation",
            peak=0.08, threshold=0.12, margin=-0.04, peak_sigma=2.1,
            found=False,
        )
        pm = DecodePostmortem.from_link(result, probes)
        assert pm.failure == "sync_miss"
        assert "0.08" in pm.verdict
        assert "2.1 sigma" in pm.verdict
        assert "-0.04" in pm.verdict

    def test_zf_ill_conditioning_wins_over_crc(self):
        result = self._Result()
        probes = ProbeRegistry()
        probes.capture(
            "mimo.zero_forcing", "channel", cond=87.0, ill_conditioned=True,
        )
        pm = DecodePostmortem.from_link(result, probes)
        assert pm.failure == "zf_ill_conditioned"
        assert pm.failing_stage == "mimo.zero_forcing"
        assert "cond=87" in pm.verdict
        assert "under-separated" in pm.verdict

    def test_fault_result_delegates_to_from_fault(self):
        result = self._Result()
        result.fault = "brownout"
        pm = DecodePostmortem.from_link(result, ProbeRegistry())
        assert pm.failure == "injected_fault"
        assert pm.failing_stage == "link.node"


class TestJsonl:
    def _sample(self):
        return [
            DecodePostmortem.from_fault("brownout", node=3),
            DecodePostmortem(
                failure="crc_fail", failing_stage="link.hydrophone_dsp",
                verdict="eye closed", txn=2,
                findings=[StageFinding(
                    stage="link.node", status="ok", detail="powered",
                    data={"snr_db": 4.5},
                )],
            ),
        ]

    def test_round_trip(self, tmp_path):
        originals = self._sample()
        path = write_postmortems_jsonl(
            tmp_path / "new_dir" / "pm.jsonl", originals
        )
        loaded = load_postmortems_jsonl(path)
        assert [pm.to_dict() for pm in loaded] == [
            pm.to_dict() for pm in originals
        ]

    def test_one_line_per_postmortem(self):
        text = postmortems_to_jsonl(self._sample())
        assert text.count("\n") == 2
        assert text.endswith("\n")

    def test_empty_dump(self):
        assert postmortems_to_jsonl([]) == ""

    def test_non_finite_data_serialises(self, tmp_path):
        pm = DecodePostmortem(
            failure="sync_miss", failing_stage="link.hydrophone_dsp",
            verdict="v",
            findings=[StageFinding(
                stage="s", status="failed", detail="d",
                data={"snr_db": float("nan"), "peak": np.float64(0.25)},
            )],
        )
        path = write_postmortems_jsonl(tmp_path / "pm.jsonl", [pm])
        loaded = load_postmortems_jsonl(path)[0]
        assert loaded.findings[0].data["snr_db"] == "nan"
        assert loaded.findings[0].data["peak"] == 0.25
