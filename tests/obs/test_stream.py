"""Streaming telemetry bus, sinks, and the stream aggregator.

The contract under test, end to end:

* producers publish incrementally through the process-global
  :class:`TelemetryBus` (disabled by default — everything here opts in);
* the stream is byte-identical across sequential and parallel
  execution (publication happens on the reader's merge side, and the
  parallel round stages *every* shared-log reference, injector chains
  included);
* :class:`StreamAggregator` reduces a stream — including a resumed
  campaign's re-streamed overlap — back to the exact batch outputs:
  timeline rows, event log, final SLO burn.
"""

import math
import urllib.error
import urllib.request

import pytest

from repro.faults import (
    BrownoutInjector,
    EventLog,
    NoiseBurstInjector,
    TransportExceptionInjector,
)
from repro.net import Command, HealthPolicy, ReaderController, Response, RetryPolicy
from repro.obs import MetricsRegistry, SLOTracker
from repro.obs.ledger import NodeEnergyHarness
from repro.obs.recorder import FlightRecorder
from repro.obs.stream import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    JsonlStreamSink,
    MemorySink,
    MetricsSnapshotServer,
    StreamAggregator,
    TelemetryBus,
    event_from_line,
    event_to_line,
    get_bus,
    set_bus,
    use_bus,
)
from repro.obs.timeline import build_timeline, timeline_to_jsonl


# ---------------------------------------------------------------------------
# A miniature chaos fleet: stub firmware + fault injectors bound to the
# SHARED event log (the hard case for parallel stream identity) +
# energy harnesses + SLO tracking.
# ---------------------------------------------------------------------------


class _StubResult:
    def __init__(self, packet):
        self.success = True
        self.demod = type("Demod", (), {})()
        self.demod.packet = packet
        self.demod.success = True


def _stub(address):
    def transact(query):
        if query.command is Command.READ_TEMPERATURE:
            raw = int((18.0 + address) * 100.0 + 10_000)
            data = bytes([(raw >> 8) & 0xFF, raw & 0xFF])
            response = Response(source=address, command=query.command, data=data)
        else:
            response = Response(source=address, command=query.command)
        return _StubResult(response.to_packet())

    return transact


def _make_fleet(seed=7, nodes=5, window=10):
    log = EventLog()
    transports, harnesses = {}, {}
    for addr in range(1, nodes + 1):
        inner = _stub(addr)
        role = addr % 3
        if role == 1:
            inner = NoiseBurstInjector(
                inner, start=2 + addr, duration=4, node=addr, log=log,
                seed=seed + addr,
            )
        elif role == 2:
            inner = TransportExceptionInjector(
                inner, at=(3, 7 + addr), node=addr, log=log, seed=seed + addr
            )
        else:
            inner = BrownoutInjector(
                inner, at=4, dark_for=8, node=addr, log=log, seed=seed + addr
            )
        transports[addr] = inner
        v_oc = 1.9 if addr == nodes else 3.4 + 0.15 * addr
        harnesses[addr] = NodeEnergyHarness(
            addr, v_oc_v=v_oc, r_out_ohm=4.0e3, initial_voltage_v=3.0
        )
    reader = ReaderController(
        transports,
        retry_policy=RetryPolicy(
            max_retries=1, base_backoff_s=0.1, jitter=0.25, seed=seed
        ),
        health_policy=HealthPolicy(
            degrade_after=2, quarantine_after=4, recover_after=2,
            probe_backoff_rounds=2,
        ),
        log=log,
        metrics=MetricsRegistry(),
        ledgers=harnesses,
        slo=SLOTracker(window=window),
    )
    return reader, log, harnesses


def _run_streamed(parallel=0, *, rounds=10, seed=7, sinks=None):
    """One streamed campaign; returns (reader, log, harnesses, sink)."""
    sink = MemorySink()
    bus = TelemetryBus(sinks=[sink] + list(sinks or []))
    with use_bus(bus):
        reader, log, harnesses = _make_fleet(seed=seed)
        if parallel:
            from repro.perf.fleet import FleetEngine

            reader.parallel = parallel
            reader._engine = FleetEngine(max_workers=parallel)
        reader.run_campaign(Command.READ_TEMPERATURE, rounds)
    bus.close()
    return reader, log, harnesses, sink


# ---------------------------------------------------------------------------
# Event schema and envelope
# ---------------------------------------------------------------------------


class TestEventSchema:
    def test_envelope_fields_and_version(self):
        bus = TelemetryBus(sinks=[sink := MemorySink()])
        event = bus.publish("round", t=3.0, node=4, source="reader",
                            data={"x": 1})
        assert event == sink.events[0]
        assert event["schema"] == SCHEMA_VERSION
        assert event["seq"] == 0
        assert event["t"] == 3.0
        assert event["node"] == 4
        assert event["kind"] == "round"
        assert event["source"] == "reader"
        assert event["data"] == {"x": 1}

    def test_line_is_compact_sorted_json(self):
        line = event_to_line({"b": 1, "a": {"z": 2, "y": 3}})
        assert line == '{"a":{"y":3,"z":2},"b":1}'

    def test_line_round_trips_nan(self):
        # SLO burn rates are NaN before the window fills; the stream
        # must round-trip them exactly for streamed == batch to hold.
        event = {"v": float("nan"), "w": float("inf")}
        back = event_from_line(event_to_line(event))
        assert math.isnan(back["v"]) and math.isinf(back["w"])

    def test_documented_kinds(self):
        for kind in ("stream_start", "event", "span", "metrics", "soc",
                     "slo", "round", "postmortem", "checkpoint",
                     "pool_rebuild", "profile", "anomaly"):
            assert kind in EVENT_KINDS

    def test_aggregator_rejects_newer_schema(self):
        agg = StreamAggregator()
        with pytest.raises(ValueError, match="schema"):
            agg.feed({"schema": SCHEMA_VERSION + 1, "seq": 0, "kind": "round",
                      "t": 0.0, "node": -1, "source": "", "data": {}})


class TestTelemetryBus:
    def test_disabled_publish_is_inert(self):
        sink = MemorySink()
        bus = TelemetryBus(enabled=False, sinks=[sink])
        assert bus.publish("round", data={"x": 1}) is None
        assert sink.events == []
        assert bus.seq == 0

    def test_global_bus_disabled_by_default(self):
        assert not get_bus().enabled

    def test_use_bus_restores_previous(self):
        original = get_bus()
        replacement = TelemetryBus()
        with use_bus(replacement):
            assert get_bus() is replacement
        assert get_bus() is original

    def test_seq_monotonic_across_kinds(self):
        bus = TelemetryBus(sinks=[sink := MemorySink()])
        bus.publish("event")
        bus.publish("soc")
        bus.publish("round")
        assert [e["seq"] for e in sink.events] == [0, 1, 2]

    def test_flush_stats_percentiles(self):
        bus = TelemetryBus(sinks=[MemorySink()])
        for _ in range(10):
            bus.flush()
        stats = bus.flush_stats()
        assert stats["count"] == 10
        assert stats["p50_s"] <= stats["p99_s"] <= stats["max_s"]

    def test_flush_stats_empty(self):
        stats = TelemetryBus(sinks=[MemorySink()]).flush_stats()
        assert stats == {"count": 0, "p50_s": 0.0, "p99_s": 0.0, "max_s": 0.0}

    def test_flush_stats_single_sample_is_that_sample(self):
        bus = TelemetryBus(sinks=[MemorySink()])
        bus.flush_latencies.append(0.5)
        stats = bus.flush_stats()
        assert stats["count"] == 1
        assert stats["p50_s"] == stats["p99_s"] == stats["max_s"] == 0.5

    def test_flush_stats_two_samples_interpolate(self):
        # Linear interpolation between closest ranks: the median of
        # {0, 1} is 0.5 and p99 is 0.99 — neither degenerates to the
        # max the way nearest-rank did.
        bus = TelemetryBus(sinks=[MemorySink()])
        bus.flush_latencies.extend([0.0, 1.0])
        stats = bus.flush_stats()
        assert stats["p50_s"] == 0.5
        assert abs(stats["p99_s"] - 0.99) < 1e-12
        assert stats["max_s"] == 1.0

    def test_flush_stats_exact_at_sample_points(self):
        bus = TelemetryBus(sinks=[MemorySink()])
        bus.flush_latencies.extend([1.0, 2.0, 3.0])
        assert bus.flush_stats()["p50_s"] == 2.0

    def test_recorders_are_duck_typed(self):
        bus = TelemetryBus(sinks=[MemorySink()])
        recorder = bus.add_sink(FlightRecorder(capacity=4))
        assert bus.recorders() == [recorder]


class TestJsonlStreamSink:
    def test_buffers_until_flush(self, tmp_path):
        path = tmp_path / "s.jsonl"
        sink = JsonlStreamSink(path)
        bus = TelemetryBus(sinks=[sink])
        bus.publish("event", data={"n": 1})
        assert not path.exists() or path.read_text() == ""
        bus.flush()
        assert len(path.read_text().splitlines()) == 1

    def test_appends_across_instances_and_last_seq(self, tmp_path):
        path = tmp_path / "s.jsonl"
        first = TelemetryBus(sinks=[JsonlStreamSink(path)])
        first.publish("event")
        first.publish("event")
        first.close()
        assert JsonlStreamSink.last_seq(path) == 1
        second = TelemetryBus(sinks=[JsonlStreamSink(path)])
        second.seq = JsonlStreamSink.last_seq(path) + 1
        second.publish("event")
        second.close()
        seqs = [event_from_line(l)["seq"] for l in path.read_text().splitlines()]
        assert seqs == [0, 1, 2]

    def test_rotation_bounds_file_size(self, tmp_path):
        path = tmp_path / "s.jsonl"
        sink = JsonlStreamSink(path, max_bytes=500, max_files=2)
        bus = TelemetryBus(sinks=[sink])
        for i in range(100):
            bus.publish("event", t=float(i), data={"pad": "x" * 40})
            bus.flush()
        bus.close()
        assert path.stat().st_size <= 1_000
        assert (tmp_path / "s.jsonl.1").exists()
        assert not (tmp_path / "s.jsonl.3").exists()

    def test_last_seq_of_missing_file(self, tmp_path):
        assert JsonlStreamSink.last_seq(tmp_path / "nope.jsonl") is None


class TestMetricsSnapshotServer:
    def test_serves_prometheus_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("pab_polls_total", node=1).inc(3)
        with MetricsSnapshotServer(registry, port=0) as server:
            url = f"http://127.0.0.1:{server.port}/metrics"
            body = urllib.request.urlopen(url, timeout=5).read().decode()
            assert 'pab_polls_total{node="1"} 3' in body
            assert "# TYPE pab_polls_total counter" in body
            # Live: a later scrape sees the updated value.
            registry.counter("pab_polls_total", node=1).inc()
            body = urllib.request.urlopen(url, timeout=5).read().decode()
            assert 'pab_polls_total{node="1"} 4' in body

    def test_healthz_and_unknown_path(self):
        with MetricsSnapshotServer(MetricsRegistry(), port=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            assert urllib.request.urlopen(base + "/healthz", timeout=5).status == 200
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(base + "/nope", timeout=5)

    def test_concurrent_scrapes_during_writes_never_tear(self):
        # A campaign mutates the registry while Prometheus scrapes it:
        # every scrape must be a well-formed exposition (one HELP/TYPE
        # per family, parseable sample lines), never a torn snapshot or
        # a 500, and /healthz must stay live throughout.
        import threading

        registry = MetricsRegistry()
        registry.counter("pab_scrape_test_total", node=0).inc()
        stop = threading.Event()

        def writer():
            node = 0
            while not stop.is_set():
                node = (node + 1) % 8
                registry.counter("pab_scrape_test_total", node=node).inc()
                registry.gauge("pab_scrape_gauge", node=node).set(node * 0.5)

        thread = threading.Thread(target=writer, daemon=True)
        with MetricsSnapshotServer(registry, port=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            thread.start()
            try:
                for _ in range(20):
                    response = urllib.request.urlopen(
                        base + "/metrics", timeout=5
                    )
                    assert response.status == 200
                    body = response.read().decode()
                    lines = body.splitlines()
                    assert lines, "scrape returned an empty body"
                    families = [
                        l.split()[2] for l in lines
                        if l.startswith("# TYPE")
                    ]
                    assert len(families) == len(set(families)), (
                        "torn exposition: duplicate TYPE lines"
                    )
                    for line in lines:
                        if line.startswith("#"):
                            continue
                        name_part, _, value = line.rpartition(" ")
                        assert name_part, f"malformed sample line: {line!r}"
                        float(value)  # every sample value parses
                    health = urllib.request.urlopen(
                        base + "/healthz", timeout=5
                    )
                    assert health.status == 200
            finally:
                stop.set()
                thread.join(timeout=5)
        assert not thread.is_alive()


# ---------------------------------------------------------------------------
# Campaign streams: identity across modes, streamed == batch, resume
# ---------------------------------------------------------------------------


def _stream_lines(sink):
    return [event_to_line(e) for e in sink.events]


class TestCampaignStream:
    def test_stream_covers_every_producer(self):
        _, _, _, sink = _run_streamed()
        kinds = {e["kind"] for e in sink.events}
        assert {"event", "soc", "slo", "round", "metrics"} <= kinds

    def test_parallel_stream_identical_to_sequential(self):
        sequential = _stream_lines(_run_streamed(0)[3])
        for width in (1, 4):
            assert _stream_lines(_run_streamed(width)[3]) == sequential

    def test_streamed_timeline_equals_batch(self):
        reader, log, harnesses, sink = _run_streamed()
        agg = StreamAggregator()
        for event in sink.events:
            agg.feed(event)
        batch = timeline_to_jsonl(
            build_timeline(reader.round_log, log=log, ledgers=harnesses)
        )
        assert timeline_to_jsonl(agg.timeline_rows()) == batch
        assert agg.event_log().to_jsonl() == log.to_jsonl()
        assert agg.rounds_observed() == 10

    def test_streamed_final_burn_equals_batch(self):
        reader, _, _, sink = _run_streamed()
        agg = StreamAggregator()
        for event in sink.events:
            agg.feed(event)
        batch_burn = reader.round_log[-1]["burn"]
        streamed = agg.final_burn()
        assert sorted(streamed) == sorted(batch_burn)
        for objective, value in batch_burn.items():
            assert repr(streamed[objective]) == repr(value)

    def test_refeeding_is_idempotent(self):
        # The resume-overlap guarantee in miniature: feeding the same
        # stream twice reduces to the same state as feeding it once.
        _, _, _, sink = _run_streamed()
        once, twice = StreamAggregator(), StreamAggregator()
        for event in sink.events:
            once.feed(event)
        for event in sink.events + sink.events:
            twice.feed(event)
        assert timeline_to_jsonl(twice.timeline_rows()) == timeline_to_jsonl(
            once.timeline_rows()
        )
        assert twice.event_log().to_jsonl() == once.event_log().to_jsonl()

    def test_metrics_events_carry_absolute_values(self):
        _, _, _, sink = _run_streamed()
        rounds_total = [
            e["data"]["values"]["pab_reader_rounds_total"]
            for e in sink.events
            if e["kind"] == "metrics"
            and "pab_reader_rounds_total" in e["data"]["values"]
        ]
        assert rounds_total == sorted(rounds_total)
        assert rounds_total[-1] == 10.0

    def test_checkpoint_events_mark_boundaries(self, tmp_path):
        sink = MemorySink()
        bus = TelemetryBus(sinks=[sink])
        with use_bus(bus):
            reader, _, _ = _make_fleet()
            reader.run_campaign(
                Command.READ_TEMPERATURE, 9,
                checkpoint_every=4, checkpoint_dir=tmp_path,
            )
        marks = [e["data"] for e in sink.events if e["kind"] == "checkpoint"]
        assert [m["round"] for m in marks] == [4, 8]
        assert marks[0]["path"] == "checkpoint-000004.json"

    def test_resumed_stream_replays_to_uninterrupted_state(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        # Uninterrupted streamed run: the reference reduction.
        full_reader, full_log, full_harnesses, full_sink = _run_streamed(rounds=10)
        reference = StreamAggregator()
        for event in full_sink.events:
            reference.feed(event)

        # Interrupted run: stream the first 6 rounds and checkpoint at 4.
        bus = TelemetryBus(sinks=[JsonlStreamSink(path)])
        with use_bus(bus):
            reader, _, _ = _make_fleet()
            reader.run_campaign(
                Command.READ_TEMPERATURE, 6,
                checkpoint_every=4, checkpoint_dir=tmp_path,
            )
        bus.close()

        # Resume from round 4 on a FRESH fleet, appending to the same
        # stream with continued sequence numbers.  Rounds 4-5 are
        # re-streamed (they post-date the checkpoint) — byte-identical
        # to the first pass, so the last-write-wins reduction dedups.
        resume_bus = TelemetryBus(sinks=[JsonlStreamSink(path)])
        resume_bus.seq = JsonlStreamSink.last_seq(path) + 1
        with use_bus(resume_bus):
            reader2, _, _ = _make_fleet()
            reader2.run_campaign(
                Command.READ_TEMPERATURE, 10,
                resume_from=tmp_path / "checkpoint-000004.json",
            )
        resume_bus.close()

        spliced = StreamAggregator()
        spliced.feed_file(path)
        assert timeline_to_jsonl(spliced.timeline_rows()) == timeline_to_jsonl(
            reference.timeline_rows()
        )
        assert spliced.event_log().to_jsonl() == reference.event_log().to_jsonl()
        assert spliced.delivery_totals() == reference.delivery_totals()


def _envelope(kind, *, seq=0, t=0.0, node=-1, source="test", data=None):
    return {
        "schema": SCHEMA_VERSION, "seq": seq, "t": t, "node": node,
        "kind": kind, "source": source, "data": data or {},
    }


class TestUnknownKinds:
    """Forward compatibility: newer producers may add envelope kinds."""

    def test_unknown_kind_skipped_and_counted(self):
        agg = StreamAggregator()
        agg.feed(_envelope("hologram", data={"x": 1}))
        agg.feed(_envelope("hologram", seq=1))
        agg.feed(_envelope("round", seq=2, data={"t": 0.0, "outcomes": {}}))
        assert agg.unknown_kinds == {"hologram": 2}
        assert agg.rounds_observed() == 1  # known kinds still reduce

    def test_unknown_kind_counter_metric(self):
        registry = MetricsRegistry()
        agg = StreamAggregator(metrics=registry)
        agg.feed(_envelope("hologram"))
        assert registry.value(
            "pab_stream_unknown_kinds_total", kind="hologram"
        ) == 1.0

    def test_known_kinds_never_counted(self):
        agg = StreamAggregator()
        for kind in EVENT_KINDS:
            if kind in ("event", "round", "soc", "slo"):
                continue  # these require structured payloads
            agg.feed(_envelope(kind, data={"t": 0.0, "round": 0}))
        assert agg.unknown_kinds == {}


class TestAnomalyReduction:
    def _anomaly(self, *, seq=0, rnd=3, series="delivery_ratio", node=-1,
                 detector="ewma", severity="warn"):
        return _envelope("anomaly", seq=seq, t=float(rnd), node=node,
                         source="analytics", data={
                             "series": series, "node": node, "stage": "mac",
                             "round": rnd, "detector": detector,
                             "severity": severity, "value": 0.5,
                             "expected": 1.0, "deviation": -0.5,
                             "score": 25.0, "threshold": 4.0,
                         })

    def test_refeeding_is_idempotent(self):
        # The resume-overlap case: the same detection re-streamed under
        # a fresh seq must not double-count.
        agg = StreamAggregator()
        agg.feed(self._anomaly(seq=0))
        agg.feed(self._anomaly(seq=99))
        assert len(agg.anomalies) == 1
        assert agg.anomaly_counts() == {"warn": 1}

    def test_ordering_and_round_filter(self):
        agg = StreamAggregator()
        agg.feed(self._anomaly(rnd=7, series="soc_v", node=2))
        agg.feed(self._anomaly(rnd=3))
        agg.feed(self._anomaly(rnd=3, detector="cusum", severity="critical"))
        rounds = [e["data"]["round"] for e in agg.anomalies]
        assert rounds == [3, 3, 7]
        assert len(agg.anomalies_for_round(3)) == 2
        assert agg.anomaly_counts() == {"warn": 2, "critical": 1}

    def test_anomaly_line_highlights_and_names_series(self):
        line = StreamAggregator.anomaly_line(
            self._anomaly(rnd=12, series="soc_v", node=5,
                          severity="critical")
        )
        assert line.startswith("!! critical")
        assert "round   12" in line
        assert "node 5" in line
        assert "soc_v [mac]" in line
        assert "ewma" in line
        assert "score=25.00" in line

    def test_anomaly_line_fleet_series(self):
        line = StreamAggregator.anomaly_line(self._anomaly())
        assert "fleet" in line
        assert "delivery_ratio" in line


class TestRoundLine:
    def test_round_line_renders_delivery_soc_and_burn(self):
        _, _, _, sink = _run_streamed()
        agg = StreamAggregator()
        for event in sink.events:
            agg.feed(event)
        line = agg.round_line(9)
        assert line.startswith("round    9")
        assert "delivered" in line
        assert "soc_min" in line
        assert "burn" in line

    def test_delivery_totals_accumulate(self):
        _, _, _, sink = _run_streamed()
        agg = StreamAggregator()
        for event in sink.events:
            agg.feed(event)
        totals = agg.delivery_totals()
        assert 0 < totals["delivered"] <= totals["polled"] <= 50


class TestLogBusBinding:
    def test_reader_binds_enabled_bus_to_log(self):
        bus = TelemetryBus(sinks=[MemorySink()])
        with use_bus(bus):
            reader, log, _ = _make_fleet()
        assert log.bus is bus

    def test_disabled_bus_not_bound(self):
        reader, log, _ = _make_fleet()
        assert log.bus is None

    def test_log_records_publish_event_kind(self):
        sink = MemorySink()
        bus = TelemetryBus(sinks=[sink])
        log = EventLog()
        log.bus = bus
        log.record(2.0, 5, "fault", injector="noise_burst")
        (event,) = sink.events
        assert event["kind"] == "event"
        assert event["source"] == "log"
        assert event["data"]["kind"] == "fault"
        assert event["data"]["node"] == 5
