"""Campaign profiler: attribution, flamegraph exports, determinism.

The contracts under test:

* the global profiler ships disabled and every hook is inert then;
* worker/cache/stage/memory attributions reduce to the documented
  report shapes;
* flamegraph exports (collapsed-stack text + speedscope JSON) are pure
  functions of the spans — byte-identical across runs under a
  :class:`VirtualClock`, and the speedscope document's per-frame totals
  equal the tracer's own ``stage_totals`` (the 1% acceptance criterion
  holds exactly by construction);
* the reader marks rounds merge-side and publishes ``profile`` stream
  events that :class:`StreamAggregator` reduces back (``hot_stage``,
  ``round_line``).
"""

import json
import tracemalloc

from repro.obs import MetricsRegistry
from repro.obs.profiler import (
    CampaignProfiler,
    collapsed_stacks,
    get_profiler,
    profile_stage_costs,
    set_profiler,
    speedscope_document,
    speedscope_stage_totals,
    use_profiler,
    write_flamegraphs,
)
from repro.obs.stream import MemorySink, StreamAggregator, TelemetryBus, use_bus
from repro.obs.trace import Tracer, VirtualClock, use_tracer
from repro.perf import LRUCache
from repro.perf.fleet import FleetEngine


class TestGlobalProfiler:
    def test_disabled_by_default(self):
        assert not get_profiler().enabled

    def test_use_profiler_restores_previous(self):
        original = get_profiler()
        replacement = CampaignProfiler()
        with use_profiler(replacement):
            assert get_profiler() is replacement
        assert get_profiler() is original

    def test_set_profiler_returns_previous(self):
        original = get_profiler()
        replacement = CampaignProfiler()
        assert set_profiler(replacement) is original
        assert set_profiler(original) is replacement

    def test_disabled_hooks_are_inert(self):
        profiler = CampaignProfiler(enabled=False)
        profiler.record_worker_sample(
            worker="w", key=1, queue_wait_s=0.1, wall_s=0.2, cpu_s=0.2
        )
        profiler.record_engine_round(wall_s=1.0, width=2)
        profiler.record_cache_miss("c", 0.5)
        assert profiler.on_round(0.0) == {}
        assert profiler.worker_report() == {}
        assert profiler.stage_totals() == {}
        assert profiler.round_snapshots == []


class TestWorkerAttribution:
    def test_report_math(self):
        profiler = CampaignProfiler()
        profiler.record_worker_sample(
            worker="w0", key=1, queue_wait_s=0.1, wall_s=2.0, cpu_s=0.5
        )
        profiler.record_worker_sample(
            worker="w0", key=2, queue_wait_s=0.3, wall_s=2.0, cpu_s=1.5
        )
        profiler.record_engine_round(wall_s=5.0, width=2)
        report = profiler.worker_report()
        w = report["w0"]
        assert w["units"] == 2
        assert w["busy_s"] == 4.0
        assert w["gil_ratio"] == 0.5          # 2.0 cpu / 4.0 busy
        assert w["utilization"] == 0.8        # 4.0 busy / 5.0 engine wall
        assert w["queue_wait_s"] == 0.4
        assert profiler.engine_wall_s() == 5.0

    def test_fleet_engine_records_one_sample_per_unit(self):
        profiler = CampaignProfiler()
        engine = FleetEngine(max_workers=2)
        try:
            with use_profiler(profiler):
                results = engine.run_round(
                    {k: (lambda k=k: k * 10) for k in range(4)}
                )
        finally:
            engine.shutdown()
        assert results == [(k, k * 10) for k in range(4)]
        report = profiler.worker_report()
        assert sum(w["units"] for w in report.values()) == 4
        assert all(name.startswith("fleet") for name in report)
        assert profiler.engine_wall_s() > 0.0

    def test_fleet_engine_disabled_profiler_records_nothing(self):
        engine = FleetEngine(max_workers=1)
        try:
            engine.run_round({1: lambda: 1})
        finally:
            engine.shutdown()
        assert get_profiler().worker_report() == {}


class TestCacheAttribution:
    def test_lru_miss_costs_feed_saved_estimate(self):
        cache = LRUCache("t_prof_cache", maxsize=4)
        profiler = CampaignProfiler()
        with use_profiler(profiler):
            cache.get_or_compute("k", lambda: 1)   # miss (timed)
            cache.get_or_compute("k", lambda: 1)   # hit
            cache.get_or_compute("k", lambda: 1)   # hit
        report = profiler.cache_report({"t_prof_cache": cache.stats()})
        entry = report["t_prof_cache"]
        assert entry["hits"] == 2 and entry["misses"] == 1
        assert entry["miss_cost_s"] > 0.0
        assert entry["saved_s"] == 2 * entry["miss_cost_s"]

    def test_unobserved_cache_reports_zero_not_a_guess(self):
        cache = LRUCache("t_prof_cold", maxsize=4)
        cache.get_or_compute("k", lambda: 1)  # profiler disabled: untimed
        cache.get_or_compute("k", lambda: 1)
        report = CampaignProfiler().cache_report(
            {"t_prof_cold": cache.stats()}
        )
        assert report["t_prof_cold"]["miss_cost_s"] == 0.0
        assert report["t_prof_cold"]["saved_s"] == 0.0


class TestOnRound:
    def _traced(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass

    def test_folds_only_new_spans_each_round(self):
        tracer = Tracer(clock=VirtualClock(tick=1.0))
        profiler = CampaignProfiler()
        self._traced(tracer)
        first = profiler.on_round(0.0, tracer=tracer)
        assert first["stages"]["outer"]["count"] == 1
        self._traced(tracer)
        self._traced(tracer)
        second = profiler.on_round(1.0, tracer=tracer)
        assert second["stages"]["inner"]["count"] == 2
        totals = profiler.stage_totals()
        assert totals["outer"]["count"] == 3
        assert totals["inner"]["total_s"] == 3.0  # one tick each
        assert [s["round"] for s in profiler.round_snapshots] == [0, 1]

    def test_drains_pending_worker_samples_into_snapshot(self):
        profiler = CampaignProfiler()
        profiler.record_worker_sample(
            worker="w0", key=1, queue_wait_s=0.0, wall_s=1.0, cpu_s=1.0
        )
        snap = profiler.on_round(0.0, tracer=Tracer(enabled=False))
        assert snap["workers"]["w0"]["units"] == 1
        # Drained: the next round starts clean.
        again = profiler.on_round(1.0, tracer=Tracer(enabled=False))
        assert "workers" not in again

    def test_memory_marks_and_close(self):
        assert not tracemalloc.is_tracing()
        profiler = CampaignProfiler(memory=True)
        with use_profiler(profiler):
            snap = profiler.on_round(0.0, tracer=Tracer(enabled=False))
            assert snap["mem_peak_b"] >= snap["mem_current_b"] >= 0
            assert tracemalloc.is_tracing()
            profiler.on_round(1.0, tracer=Tracer(enabled=False))
            report = profiler.memory_report()
            assert report["rounds"] == 2
            assert report["peak_b"] >= 0
        # use_profiler closed it: tracemalloc stopped (it started it).
        assert not tracemalloc.is_tracing()

    def test_reset_clears_everything(self):
        profiler = CampaignProfiler()
        profiler.record_cache_miss("c", 0.1)
        profiler.record_worker_sample(
            worker="w", key=1, queue_wait_s=0.0, wall_s=1.0, cpu_s=1.0
        )
        profiler.on_round(0.0, tracer=Tracer(enabled=False))
        profiler.reset()
        assert profiler.round_snapshots == []
        assert profiler.worker_report() == {}
        assert profiler.cache_report({}) == {}


def _traced_campaign():
    """A deterministic two-round span forest under a unit-tick clock."""
    tracer = Tracer(clock=VirtualClock(tick=1.0))
    for _ in range(2):
        with tracer.span("round"):
            with tracer.span("link.node"):
                pass
            with tracer.span("link.dsp"):
                with tracer.span("fft"):
                    pass
    return tracer


class TestFlamegraphs:
    def test_collapsed_stacks_exact(self):
        tracer = Tracer(clock=VirtualClock(tick=1.0))
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        text = collapsed_stacks(tracer.spans)
        assert text == "root 3\nroot;a 1\nroot;b 2\nroot;b;c 1\n"

    def test_collapsed_scale_converts_units(self):
        tracer = Tracer(clock=VirtualClock(tick=0.5))
        with tracer.span("only"):
            pass
        assert collapsed_stacks(tracer.spans, scale=2.0) == "only 1\n"

    def test_speedscope_totals_equal_tracer_totals(self):
        tracer = _traced_campaign()
        doc = speedscope_document(tracer.spans)
        flame = speedscope_stage_totals(doc)
        for name, entry in tracer.stage_totals().items():
            assert flame[name] == entry["total_s"]

    def test_speedscope_document_shape(self):
        tracer = _traced_campaign()
        doc = speedscope_document(tracer.spans, name="t", unit="none")
        assert doc["$schema"].startswith("https://www.speedscope.app/")
        (profile,) = doc["profiles"]
        assert profile["type"] == "evented"
        assert profile["startValue"] <= profile["endValue"]
        # Well-nested: every open has a close, depth never goes negative.
        depth = 0
        for event in profile["events"]:
            depth += 1 if event["type"] == "O" else -1
            assert depth >= 0
        assert depth == 0
        names = [f["name"] for f in doc["shared"]["frames"]]
        assert len(names) == len(set(names))  # frames deduplicated

    def test_exports_byte_identical_across_runs(self, tmp_path):
        first = write_flamegraphs(tmp_path / "a" / "flame",
                                  _traced_campaign().spans)
        second = write_flamegraphs(tmp_path / "b" / "flame",
                                   _traced_campaign().spans)
        for kind in ("collapsed", "speedscope"):
            assert first[kind].read_bytes() == second[kind].read_bytes()
        # And the JSON parses back to a speedscope doc.
        doc = json.loads(first["speedscope"].read_text())
        assert doc["exporter"] == "repro.obs.profiler"

    def test_empty_spans_export_cleanly(self, tmp_path):
        assert collapsed_stacks([]) == ""
        doc = speedscope_document([])
        assert doc["profiles"][0]["events"] == []
        paths = write_flamegraphs(tmp_path / "flame", [])
        assert paths["collapsed"].read_text() == ""


class TestProfileStageCosts:
    def test_dual_pass_joins_by_stage(self):
        def run(tracer):
            with tracer.span("work"):
                sum(i * i for i in range(2_000))
            with tracer.span("other"):
                pass

        costs = profile_stage_costs(run, repeats=2)
        assert set(costs) == {"work", "other"}
        work = costs["work"]
        assert work["count"] == 1.0
        assert work["wall_s"] > 0.0
        assert work["cpu_s"] >= 0.0
        total = sum(e["fraction"] for e in costs.values())
        assert abs(total - 1.0) < 1e-9

    def test_stages_filter_restricts_denominator(self):
        def run(tracer):
            with tracer.span("parent"):
                with tracer.span("leaf"):
                    sum(i for i in range(1_000))

        costs = profile_stage_costs(run, repeats=1, stages=["leaf"])
        assert set(costs) == {"leaf"}
        assert costs["leaf"]["fraction"] == 1.0


class TestToMetrics:
    def test_gauges_exported(self):
        profiler = CampaignProfiler()
        tracer = Tracer(clock=VirtualClock(tick=1.0))
        with tracer.span("link.node"):
            pass
        profiler.on_round(0.0, tracer=tracer)
        profiler.record_worker_sample(
            worker="w0", key=1, queue_wait_s=0.25, wall_s=2.0, cpu_s=1.0
        )
        profiler.record_engine_round(wall_s=4.0, width=1)
        cache = LRUCache("t_prof_metrics", maxsize=2)
        with use_profiler(profiler):
            cache.get_or_compute("k", lambda: 1)
            cache.get_or_compute("k", lambda: 1)
        registry = MetricsRegistry()
        profiler.to_metrics(
            registry, cache_stats={"t_prof_metrics": cache.stats()}
        )
        assert registry.value(
            "pab_profile_stage_seconds", stage="link.node"
        ) == 1.0
        assert registry.value(
            "pab_profile_worker_busy_seconds", worker="w0"
        ) == 2.0
        assert registry.value(
            "pab_profile_worker_gil_ratio", worker="w0"
        ) == 0.5
        assert registry.value(
            "pab_profile_worker_utilization", worker="w0"
        ) == 0.5
        assert registry.value(
            "pab_profile_cache_saved_seconds", cache="t_prof_metrics"
        ) > 0.0


# ---------------------------------------------------------------------------
# Reader integration: merge-side round marks -> profile stream events
# ---------------------------------------------------------------------------


class _StubResult:
    success = False
    demod = None


def _span_stub(address):
    """A transport that records one link-stage span per transaction."""
    from repro.obs.trace import get_tracer

    def transact(query):
        with get_tracer().span("link.node", node=address):
            pass
        return _StubResult()

    return transact


def _profiled_campaign(rounds=3, nodes=2):
    from repro.net.messages import Command
    from repro.net.reader import ReaderController

    sink = MemorySink()
    bus = TelemetryBus(sinks=[sink])
    tracer = Tracer(clock=VirtualClock(tick=1.0))
    profiler = CampaignProfiler()
    transports = {a: _span_stub(a) for a in range(1, nodes + 1)}
    with use_bus(bus), use_tracer(tracer), use_profiler(profiler):
        reader = ReaderController(transports, max_retries=0)
        reader.run_campaign(Command.PING, rounds)
    bus.close()
    return profiler, sink


class TestReaderIntegration:
    def test_rounds_marked_and_published(self):
        profiler, sink = _profiled_campaign(rounds=3, nodes=2)
        assert len(profiler.round_snapshots) == 3
        profile_events = [e for e in sink.events if e["kind"] == "profile"]
        assert len(profile_events) == 3
        assert all(e["source"] == "profiler" for e in profile_events)
        # Round 0 folded exactly this round's spans: 2 nodes -> count 2.
        # (Later rounds add health-policy probe traffic on failures.)
        assert profile_events[0]["data"]["stages"]["link.node"]["count"] == 2
        for event in profile_events:
            assert event["data"]["stages"]["link.node"]["count"] >= 2

    def test_aggregator_reduces_hot_stage_and_round_line(self):
        _, sink = _profiled_campaign(rounds=2, nodes=2)
        agg = StreamAggregator()
        for event in sink.events:
            agg.feed(event)
        assert len(agg.profiles) == 2
        stage, fraction = agg.hot_stage(0)
        assert stage == "link.node"
        assert 0.0 < fraction <= 1.0
        line = agg.round_line(0)
        assert "hot node" in line

    def test_refeeding_profiles_is_idempotent(self):
        _, sink = _profiled_campaign(rounds=2, nodes=1)
        agg = StreamAggregator()
        for event in sink.events + sink.events:
            agg.feed(event)
        assert len(agg.profiles) == 2

    def test_disabled_profiler_publishes_no_profile_events(self):
        from repro.net.messages import Command
        from repro.net.reader import ReaderController

        sink = MemorySink()
        bus = TelemetryBus(sinks=[sink])
        with use_bus(bus):
            reader = ReaderController({1: _span_stub(1)}, max_retries=0)
            reader.run_campaign(Command.PING, 2)
        bus.close()
        assert [e for e in sink.events if e["kind"] == "profile"] == []
