"""Flight recorder: bounded ring, deterministic dumps, crash artifacts.

The recorder is a bus sink holding the last N events in memory so a
dying campaign can leave its final moments on disk.  The guarantees:

* the ring NEVER exceeds its capacity, no matter how long the campaign
  (a 1k-round chaos campaign here);
* with the same seed, the dump is byte-identical between sequential
  and ``parallel=N`` execution — the recorder sees the merge-side
  stream, which is itself mode-independent;
* a fatal :class:`CampaignAbort` dumps the ring next to the campaign's
  checkpoints (``flight-recorder-NNNNNN.jsonl``).
"""

import pytest

from repro.faults import BrownoutInjector, EventLog, NoiseBurstInjector
from repro.net import Command, HealthPolicy, ReaderController, Response, RetryPolicy
from repro.obs import MetricsRegistry, SLOTracker
from repro.obs.ledger import NodeEnergyHarness
from repro.obs.recorder import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    dump_flight_recorders,
)
from repro.obs.stream import TelemetryBus, use_bus
from repro.resilience import CampaignAbort, install_worker_crash


class _StubResult:
    def __init__(self, packet):
        self.success = True
        self.demod = type("Demod", (), {})()
        self.demod.packet = packet
        self.demod.success = True


def _stub(address):
    def transact(query):
        return _StubResult(
            Response(source=address, command=query.command).to_packet()
        )

    return transact


def _chaos_reader(seed, log, *, nodes=4, ledgers=True):
    transports, harnesses = {}, {}
    for addr in range(1, nodes + 1):
        inner = _stub(addr)
        if addr % 2:
            inner = NoiseBurstInjector(
                inner, start=2 + addr, duration=4, node=addr, log=log,
                seed=seed + addr,
            )
        else:
            inner = BrownoutInjector(
                inner, at=3, dark_for=6, node=addr, log=log, seed=seed + addr
            )
        transports[addr] = inner
        harnesses[addr] = NodeEnergyHarness(
            addr, v_oc_v=3.3, r_out_ohm=4.0e3, initial_voltage_v=3.0
        )
    return ReaderController(
        transports,
        retry_policy=RetryPolicy(
            max_retries=1, base_backoff_s=0.1, jitter=0.25, seed=seed
        ),
        health_policy=HealthPolicy(
            degrade_after=2, quarantine_after=4, recover_after=2,
            probe_backoff_rounds=2,
        ),
        log=log,
        metrics=MetricsRegistry(),
        ledgers=harnesses if ledgers else None,
        slo=SLOTracker(window=10) if ledgers else None,
    )


class TestRing:
    def test_bounded_and_counts_everything(self):
        recorder = FlightRecorder(capacity=16)
        bus = TelemetryBus(sinks=[recorder])
        for i in range(100):
            bus.publish("event", t=float(i))
        assert len(recorder) == 16
        assert recorder.events_seen == 100
        assert [e["t"] for e in recorder.snapshot()] == [
            float(i) for i in range(84, 100)
        ]

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY

    def test_dump_jsonl(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        bus = TelemetryBus(sinks=[recorder])
        for i in range(6):
            bus.publish("soc", t=float(i), node=1)
        path = recorder.dump_jsonl(tmp_path / "fr.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 4
        assert '"kind":"soc"' in lines[0]

    def test_ring_bounded_under_1k_round_chaos_campaign(self):
        recorder = FlightRecorder(capacity=64)
        bus = TelemetryBus(sinks=[recorder])
        with use_bus(bus):
            reader = _chaos_reader(5, EventLog(), ledgers=False)
            reader.run_campaign(Command.PING, 1_000)
        assert len(recorder) == 64
        assert recorder.events_seen > 1_000


class TestDeterminism:
    def _dump(self, parallel):
        recorder = FlightRecorder(capacity=128)
        bus = TelemetryBus(sinks=[recorder])
        with use_bus(bus):
            reader = _chaos_reader(9, EventLog())
            if parallel:
                from repro.perf.fleet import FleetEngine

                reader.parallel = parallel
                reader._engine = FleetEngine(max_workers=parallel)
            reader.run_campaign(Command.READ_TEMPERATURE, 25)
        return recorder.to_jsonl()

    def test_dump_byte_identical_sequential_vs_parallel(self):
        sequential = self._dump(0)
        assert sequential  # non-empty: the ring saw the campaign
        for width in (1, 4):
            assert self._dump(width) == sequential, f"width {width}"

    def test_dump_repeatable(self):
        assert self._dump(2) == self._dump(2)


class TestCrashDump:
    def test_campaign_abort_dumps_next_to_checkpoints(self, tmp_path):
        recorder = FlightRecorder(capacity=32)
        bus = TelemetryBus(sinks=[recorder])
        with use_bus(bus):
            reader = _chaos_reader(3, EventLog())
            # Crash before the injectors can quarantine the node (a
            # quarantined shard's worker never runs, so never crashes).
            install_worker_crash(reader, 2, rounds=(2,), fatal=True)
            with pytest.raises(CampaignAbort):
                reader.run_campaign(
                    Command.READ_TEMPERATURE, 12,
                    checkpoint_every=1, checkpoint_dir=tmp_path,
                )
        dump = reader.last_recorder_dump
        assert dump is not None
        assert dump.name == "flight-recorder-000002.jsonl"
        assert dump.parent == tmp_path
        assert (tmp_path / "checkpoint-000001.json").exists()
        lines = dump.read_text().splitlines()
        assert 0 < len(lines) <= 32
        # The ring's tail holds the abort-adjacent telemetry.
        assert any('"kind":"round"' in line for line in lines)

    def test_no_dump_without_checkpoint_dir(self):
        bus = TelemetryBus(sinks=[FlightRecorder(capacity=8)])
        with use_bus(bus):
            reader = _chaos_reader(3, EventLog())
            install_worker_crash(reader, 2, rounds=(2,), fatal=True)
            with pytest.raises(CampaignAbort):
                reader.run_campaign(Command.READ_TEMPERATURE, 8)
        assert reader.last_recorder_dump is None


class TestArtifactHook:
    def test_dump_flight_recorders_sanitizes_and_writes(self, tmp_path):
        recorder = FlightRecorder(capacity=8)
        bus = TelemetryBus(sinks=[recorder])
        bus.publish("event", t=1.0)
        with use_bus(bus):
            paths = dump_flight_recorders(
                tmp_path, "tests/obs/test_x.py::TestY::test_z[param 1]"
            )
        assert len(paths) == 1
        assert paths[0].parent == tmp_path
        assert "::" not in paths[0].name and " " not in paths[0].name
        assert paths[0].name.endswith("-flight-recorder.jsonl")

    def test_empty_recorders_not_dumped(self, tmp_path):
        bus = TelemetryBus(sinks=[FlightRecorder(capacity=8)])
        with use_bus(bus):
            assert dump_flight_recorders(tmp_path, "nodeid") == []

    def test_disabled_bus_dumps_nothing(self, tmp_path):
        assert dump_flight_recorders(tmp_path, "nodeid") == []
