"""Tests for the merged campaign timeline renderer/exporters."""

import json
import math

from repro.faults import EventLog
from repro.obs import (
    EnergyLedger,
    build_timeline,
    render_timeline,
    soc_rows,
    timeline_to_csv,
    timeline_to_jsonl,
    write_timeline_csv,
    write_timeline_jsonl,
)
from repro.obs.timeline import COLUMNS


def make_campaign():
    """Two rounds, two nodes: node 2 quarantines with a fault at t=1."""
    log = EventLog()
    log.record(1.0, 2, "fault", injector="noise_burst")
    log.record(1.2, 2, "state", **{"from": "HEALTHY"}, to="DEGRADED")
    log.record(1.7, 2, "state", **{"from": "DEGRADED"}, to="QUARANTINED")
    ledger = EnergyLedger(node=1)
    ledger.record_round(
        t=0.0, soc_v=3.0, harvested_j=2e-4, consumed_j=1e-4, sustainable=True,
    )
    ledger.record_round(
        t=1.0, soc_v=2.9, harvested_j=1e-4, consumed_j=2e-4, sustainable=False,
    )
    round_log = [
        {
            "t": 0.0,
            "outcomes": {
                1: {"polled": True, "delivered": True, "up": True,
                    "health": "HEALTHY"},
                2: {"polled": True, "delivered": True, "up": True,
                    "health": "HEALTHY"},
            },
            "burn": {"delivery": 0.0, "energy": 0.0},
        },
        {
            "t": 1.0,
            "outcomes": {
                1: {"polled": True, "delivered": True, "up": True,
                    "health": "HEALTHY"},
                2: {"polled": True, "delivered": False, "up": False,
                    "health": "QUARANTINED"},
            },
            "burn": {"delivery": 2.5, "energy": 0.0},
        },
    ]
    return round_log, log, {1: ledger}


class TestBuild:
    def test_one_row_per_round_and_node(self):
        round_log, log, ledgers = make_campaign()
        rows = build_timeline(round_log, log=log, ledgers=ledgers)
        assert [(r["round"], r["node"]) for r in rows] == [
            (0, 1), (0, 2), (1, 1), (1, 2),
        ]

    def test_transition_and_fault_annotations(self):
        round_log, log, ledgers = make_campaign()
        rows = build_timeline(round_log, log=log, ledgers=ledgers)
        node2_round1 = rows[3]
        # Both transitions happened during round 1: FROM of the first,
        # TO of the last, plus the injected fault count.
        assert node2_round1["transition"] == "HEALTHY>QUARANTINED"
        assert node2_round1["health"] == "Q"
        assert node2_round1["faults"] == 1

    def test_energy_columns_from_ledger_history(self):
        round_log, log, ledgers = make_campaign()
        rows = build_timeline(round_log, log=log, ledgers=ledgers)
        assert rows[0]["soc_v"] == 3.0
        assert rows[2]["sustainable"] == 0
        # Node 2 has no ledger: energy cells are NaN/blank.
        assert math.isnan(rows[1]["soc_v"])
        assert rows[1]["sustainable"] == ""

    def test_burn_columns(self):
        round_log, log, ledgers = make_campaign()
        rows = build_timeline(round_log, log=log, ledgers=ledgers)
        assert rows[2]["burn_delivery"] == 2.5

    def test_sources_are_optional(self):
        round_log, _, _ = make_campaign()
        rows = build_timeline(round_log)
        assert len(rows) == 4
        assert rows[0]["transition"] == ""
        assert rows[0]["faults"] == 0

    def test_accepts_harness_wrappers(self):
        class FakeHarness:
            def __init__(self, ledger):
                self.ledger = ledger

        def denan(rows):
            return [
                {k: None if isinstance(v, float) and v != v else v
                 for k, v in row.items()}
                for row in rows
            ]

        round_log, log, ledgers = make_campaign()
        wrapped = {n: FakeHarness(l) for n, l in ledgers.items()}
        assert denan(build_timeline(round_log, ledgers=wrapped)) == denan(
            build_timeline(round_log, ledgers=ledgers)
        )


class TestRender:
    def test_text_table_has_header_and_rows(self):
        round_log, log, ledgers = make_campaign()
        text = render_timeline(build_timeline(round_log, log=log, ledgers=ledgers))
        lines = text.splitlines()
        for col in COLUMNS:
            assert col in lines[0]
        assert len(lines) == 2 + 4  # header + rule + rows

    def test_max_rows_truncates_with_a_note(self):
        round_log, log, ledgers = make_campaign()
        text = render_timeline(
            build_timeline(round_log, log=log, ledgers=ledgers), max_rows=2
        )
        assert "(2 more rows)" in text

    def test_empty_timeline(self):
        assert render_timeline([]) == "(empty timeline)\n"


class TestExports:
    def test_csv_round_trips_columns(self, tmp_path):
        round_log, log, ledgers = make_campaign()
        rows = build_timeline(round_log, log=log, ledgers=ledgers)
        path = write_timeline_csv(tmp_path / "sub" / "tl.csv", rows)
        lines = path.read_text().splitlines()
        assert lines[0] == ",".join(COLUMNS)
        assert len(lines) == 1 + len(rows)

    def test_jsonl_is_valid_and_nan_free(self, tmp_path):
        round_log, log, ledgers = make_campaign()
        rows = build_timeline(round_log, log=log, ledgers=ledgers)
        path = write_timeline_jsonl(tmp_path / "tl.jsonl", rows)
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(records) == len(rows)
        # Node 2 had no ledger: its NaN SoC serialises as null.
        assert records[1]["soc_v"] is None
        assert records[0]["soc_v"] == 3.0

    def test_exports_are_deterministic(self):
        def build():
            round_log, log, ledgers = make_campaign()
            rows = build_timeline(round_log, log=log, ledgers=ledgers)
            return timeline_to_csv(rows), timeline_to_jsonl(rows)

        assert build() == build()

    def test_empty_jsonl(self):
        assert timeline_to_jsonl([]) == ""


class TestSocRows:
    def test_flattens_ledgers_in_node_order(self):
        a, b = EnergyLedger(node=2), EnergyLedger(node=1)
        a.soc_t, a.soc_v = [0.0, 1.0], [2.5, 2.6]
        b.soc_t, b.soc_v = [0.0], [3.0]
        rows = soc_rows({2: a, 1: b})
        assert rows == [(1, 0.0, 3.0), (2, 0.0, 2.5), (2, 1.0, 2.6)]
