"""Tests for the exporters: JSONL traces, Prometheus text, CSV, adapters."""

import ast
import json
import pathlib

from repro.faults.events import EventLog
from repro.obs.export import (
    METRIC_HELP,
    _escape_help,
    events_to_metrics,
    metrics_to_csv,
    metrics_to_prometheus,
    rows_to_csv,
    spans_to_jsonl,
    write_csv,
    write_spans_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, VirtualClock


def synthetic_workload(tracer):
    """A deterministic nested-span workload (a fake transaction)."""
    with tracer.span("link.transact", destination=7):
        with tracer.span("link.pwm_synthesis", samples=1000):
            pass
        with tracer.span("link.node", phase="decode"):
            with tracer.span("node.decode_query", node=7):
                pass
        with tracer.span("link.hydrophone_dsp", snr_db=float("nan")):
            pass


class TestSpansJsonl:
    def test_one_json_object_per_span_with_duration(self):
        tracer = Tracer(clock=VirtualClock(tick=1.0))
        synthetic_workload(tracer)
        lines = spans_to_jsonl(tracer.spans).strip().splitlines()
        assert len(lines) == len(tracer.spans) == 5
        for line in lines:
            record = json.loads(line)
            assert {"name", "span_id", "parent_id", "start_s", "end_s",
                    "duration_s", "attrs"} <= set(record)
            assert record["duration_s"] > 0

    def test_non_finite_attrs_serialised_as_strings(self):
        tracer = Tracer(clock=VirtualClock(tick=1.0))
        synthetic_workload(tracer)
        dsp = [json.loads(l) for l in spans_to_jsonl(tracer.spans).splitlines()
               if '"link.hydrophone_dsp"' in l]
        assert dsp[0]["attrs"]["snr_db"] == "nan"

    def test_byte_deterministic_under_virtual_clock(self):
        def run():
            tracer = Tracer(clock=VirtualClock(tick=1.0))
            synthetic_workload(tracer)
            return spans_to_jsonl(tracer.spans).encode()

        assert run() == run()

    def test_empty_trace_is_empty_string(self):
        assert spans_to_jsonl([]) == ""

    def test_write_to_file(self, tmp_path):
        tracer = Tracer(clock=VirtualClock(tick=1.0))
        synthetic_workload(tracer)
        path = write_spans_jsonl(tmp_path / "trace.jsonl", tracer.spans)
        assert path.read_text() == spans_to_jsonl(tracer.spans)


class TestPrometheus:
    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("pab_polls_total", node=1).inc(3)
        reg.gauge("pab_node_health_code", node=1).set(2)
        reg.histogram("pab_lat_seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = metrics_to_prometheus(reg)
        assert "# TYPE pab_polls_total counter" in text
        assert 'pab_polls_total{node="1"} 3' in text
        assert "# TYPE pab_node_health_code gauge" in text
        assert 'pab_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'pab_lat_seconds_bucket{le="+Inf"} 1' in text
        assert "pab_lat_seconds_sum 0.05" in text
        assert "pab_lat_seconds_count 1" in text

    def test_type_line_once_per_family(self):
        reg = MetricsRegistry()
        reg.counter("polls", node=1).inc()
        reg.counter("polls", node=2).inc()
        text = metrics_to_prometheus(reg)
        assert text.count("# TYPE polls counter") == 1

    def test_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b").inc()
            reg.counter("a", x=2).inc()
            reg.counter("a", x=1).inc()
            return metrics_to_prometheus(reg)

        assert build() == build()

    def test_empty_registry(self):
        assert metrics_to_prometheus(MetricsRegistry()) == ""

    def test_label_values_escaped(self):
        # Prometheus exposition: backslash, double-quote, and newline
        # in label values must be escaped or the scrape breaks.
        reg = MetricsRegistry()
        reg.counter("polls", reason='say "hi"').inc()
        reg.counter("polls", reason="line1\nline2").inc(2)
        reg.counter("polls", reason="back\\slash").inc(3)
        text = metrics_to_prometheus(reg)
        assert 'reason="say \\"hi\\""' in text
        assert 'reason="line1\\nline2"' in text
        assert 'reason="back\\\\slash"' in text
        # No raw newline may survive inside any exposition line.
        for line in text.splitlines():
            assert line.count('"') % 2 == 0


class TestHelpLines:
    def test_help_precedes_type_once_per_family(self):
        reg = MetricsRegistry()
        reg.counter("pab_mac_attempts_total", node=1).inc()
        reg.counter("pab_mac_attempts_total", node=2).inc()
        text = metrics_to_prometheus(reg)
        assert text.count("# HELP pab_mac_attempts_total ") == 1
        assert text.index("# HELP pab_mac_attempts_total") < text.index(
            "# TYPE pab_mac_attempts_total"
        )

    def test_known_family_gets_documented_help(self):
        reg = MetricsRegistry()
        reg.counter("pab_mac_attempts_total", node=1).inc()
        line = next(
            l for l in metrics_to_prometheus(reg).splitlines()
            if l.startswith("# HELP")
        )
        # Curated text from METRIC_HELP, not the generic fallback.
        assert line != "# HELP pab_mac_attempts_total pab_mac_attempts_total (counter)."
        assert len(line.split(None, 3)[3]) > 10

    def test_unknown_family_gets_fallback_help(self):
        reg = MetricsRegistry()
        reg.gauge("custom_thing").set(1.0)
        text = metrics_to_prometheus(reg)
        assert "# HELP custom_thing custom_thing (gauge)." in text

    def test_help_text_escaping(self):
        # Prometheus HELP lines escape only backslash and newline
        # (unlike label values, quotes stay raw).
        assert _escape_help("say \\ and\nstop") == "say \\\\ and\\nstop"
        assert _escape_help('quote " stays') == 'quote " stays'

    def test_every_help_line_is_single_line(self):
        reg = MetricsRegistry()
        for name in sorted(METRIC_HELP):
            reg.counter(name).inc()
        text = metrics_to_prometheus(reg)
        help_lines = [l for l in text.splitlines() if l.startswith("# HELP")]
        assert len(help_lines) == len(METRIC_HELP)
        for line in help_lines:
            assert "\n" not in line


#: Call names that register a metric family.  ``counter``/``gauge``/
#: ``histogram`` are the registry API; ``_count`` (MAC) and
#: ``_push_counter`` (energy ledger) are producer-side wrappers that
#: pass a literal family name through.
_REGISTRATION_CALLS = {"counter", "gauge", "histogram", "_count", "_push_counter"}


def _registered_families() -> set:
    """Every ``pab_*`` family registered anywhere under ``src/repro``.

    Walks the AST of every module and collects string-literal positional
    arguments of registration calls.  Scanning positional args (not just
    the first) catches wrappers like ``_push_counter(registry, name, v)``;
    walking the AST (not the text) skips docstring examples.
    """
    src_root = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
    names = set()
    for path in sorted(src_root.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call) and node.args):
                continue
            func = node.func
            call_name = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name)
                else None
            )
            if call_name not in _REGISTRATION_CALLS:
                continue
            for arg in node.args:
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value.startswith("pab_")
                ):
                    names.add(arg.value)
    return names


class TestHelpCoverage:
    def test_every_registered_family_has_curated_help(self):
        registered = _registered_families()
        assert registered, "AST scan found no registration sites"
        missing = registered - set(METRIC_HELP)
        assert not missing, (
            f"pab_* families registered without a METRIC_HELP entry: "
            f"{sorted(missing)}"
        )

    def test_no_stale_help_entries(self):
        # Every curated entry must correspond to a family some module
        # actually registers — stale entries hide renames (the scrape
        # would fall back to generated help for the new name).
        stale = set(METRIC_HELP) - _registered_families()
        assert not stale, f"METRIC_HELP entries with no registration site: {sorted(stale)}"


class TestCsv:
    def test_rows_to_csv_formats_like_experiment_table(self):
        text = rows_to_csv(("a", "b"), [(1.0, float("nan")), (1e-6, "x")])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1.000,nan"
        assert lines[2] == "1.000e-06,x"

    def test_write_csv(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", ("col",), [(1,), (2,)])
        assert path.read_text() == "col\n1\n2\n"

    def test_metrics_to_csv(self):
        reg = MetricsRegistry()
        reg.counter("polls", node=1).inc(2)
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        text = metrics_to_csv(reg)
        assert "name,labels,type,value,count" in text
        assert "polls,node=1,counter,2.000," in text
        assert "lat,,histogram,0.500,1" in text


class TestEventLogAdapter:
    def test_batch_replay(self):
        log = EventLog()
        log.record(0, 1, "fault", injector="noise_burst")
        log.record(1, 1, "retry")
        log.record(2, 1, "fault", injector="brownout")
        reg = events_to_metrics(log)
        assert reg.value("pab_events_total", kind="fault") == 2.0
        assert reg.value("pab_events_total", kind="retry") == 1.0

    def test_live_binding_counts_as_recorded(self):
        reg = MetricsRegistry()
        log = EventLog(metrics=reg)
        log.record(0, 1, "fault")
        log.record(1, 1, "fault")
        assert reg.value("pab_events_total", kind="fault") == 2.0

    def test_replay_into_existing_registry(self):
        log = EventLog()
        log.record(0, 1, "probe")
        reg = MetricsRegistry()
        out = events_to_metrics(log, reg)
        assert out is reg
        assert reg.value("pab_events_total", kind="probe") == 1.0
