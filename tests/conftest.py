"""Suite-wide pytest hooks.

When ``PAB_ARTIFACT_DIR`` is set (the CI obs/chaos jobs point it at a
directory uploaded as a workflow artifact), any test that fails with
signal taps or decode post-mortems in the global probe registry gets
them persisted — the probe ``.npz`` and post-mortem JSONL a developer
would otherwise have to rerun the job to capture.  A failing test that
left a flight recorder on the global telemetry bus likewise gets its
last-events ring dumped as JSONL.
"""

from __future__ import annotations

import os

import pytest


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    directory = os.environ.get("PAB_ARTIFACT_DIR")
    if not directory or report.when != "call" or not report.failed:
        return
    from repro.obs.probe import dump_failure_artifacts
    from repro.obs.recorder import dump_flight_recorders

    dump_failure_artifacts(directory, item.nodeid)
    dump_flight_recorders(directory, item.nodeid)
