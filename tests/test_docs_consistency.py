"""Documentation consistency: every file the docs reference must exist."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


def referenced_paths(text):
    """Paths that look like repo files inside backticks."""
    candidates = re.findall(r"`([\w/\.\-]+\.(?:py|md|toml|csv))`", text)
    for c in candidates:
        # Results CSVs are generated artefacts, not tracked sources.
        if c.startswith("benchmarks/results/"):
            continue
        yield c


@pytest.mark.parametrize("doc", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
def test_referenced_files_exist(doc):
    text = (ROOT / doc).read_text()
    missing = []
    for path in referenced_paths(text):
        # Bare bench names in EXPERIMENTS.md live under benchmarks/.
        options = [ROOT / path, ROOT / "benchmarks" / path]
        if not any(p.exists() for p in options):
            missing.append(path)
    assert not missing, f"{doc} references missing files: {missing}"


def test_every_benchmark_is_documented():
    """Each bench file appears in README or EXPERIMENTS."""
    docs = (ROOT / "README.md").read_text() + (ROOT / "EXPERIMENTS.md").read_text()
    benches = sorted(
        p.name for p in (ROOT / "benchmarks").glob("test_*.py")
    )
    missing = [b for b in benches if b not in docs]
    assert not missing, f"undocumented benchmarks: {missing}"


def test_every_example_is_documented():
    docs = (ROOT / "README.md").read_text()
    examples = sorted(p.name for p in (ROOT / "examples").glob("*.py"))
    missing = [e for e in examples if e not in docs]
    assert not missing, f"undocumented examples: {missing}"


def test_every_source_module_has_docstring():
    """Every public module opens with a docstring."""
    import ast

    missing = []
    for path in sorted((ROOT / "src" / "repro").rglob("*.py")):
        tree = ast.parse(path.read_text())
        if ast.get_docstring(tree) is None:
            missing.append(str(path.relative_to(ROOT)))
    assert not missing, f"modules without docstrings: {missing}"


def test_design_lists_all_subpackages():
    design = (ROOT / "DESIGN.md").read_text()
    for sub in ("acoustics", "piezo", "circuits", "dsp", "sensing", "node",
                "net", "core"):
        assert f"{sub}/" in design
