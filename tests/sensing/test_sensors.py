"""Tests for the pH, pressure, and temperature sensing chains."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sensing import (
    I2CBus,
    I2CError,
    MS5837,
    PhProbe,
    PhSensor,
    ThermistorChannel,
    WaterColumn,
)
from repro.sensing.ph import nernst_slope_v
from repro.sensing.pressure import (
    ATMOSPHERE_MBAR,
    DEFAULT_PROM,
    MS5837Driver,
    compensate,
    synthesize_raw,
)


class TestPh:
    def test_nernst_slope_at_25c(self):
        assert nernst_slope_v(25.0) == pytest.approx(0.05916, abs=1e-4)

    def test_neutral_ph_zero_emf(self):
        assert PhProbe().emf(7.0) == 0.0

    def test_acid_positive_emf(self):
        assert PhProbe().emf(4.0) > 0.0

    def test_paper_verification_point(self):
        """Sec. 6.5: 'the MCU computes the correct pH (of 7)'."""
        sensor = PhSensor()
        assert sensor.read_ph(7.0) == pytest.approx(7.0, abs=0.1)

    @settings(max_examples=25)
    @given(ph=st.floats(2.0, 12.0))
    def test_accuracy_across_range(self, ph):
        sensor = PhSensor()
        assert sensor.read_ph(ph) == pytest.approx(ph, abs=0.15)

    def test_aged_probe_still_invertible(self):
        sensor = PhSensor(probe=PhProbe(slope_efficiency=0.9))
        assert sensor.read_ph(5.0) == pytest.approx(5.0, abs=0.2)

    def test_payload_roundtrip(self):
        sensor = PhSensor()
        payload = sensor.encode_reading(7.42)
        assert PhSensor.decode_reading(payload) == pytest.approx(7.42)

    def test_validation(self):
        with pytest.raises(ValueError):
            PhProbe().emf(20.0)
        with pytest.raises(ValueError):
            PhProbe(slope_efficiency=0.1)
        with pytest.raises(ValueError):
            PhSensor().encode_reading(15.0)
        with pytest.raises(ValueError):
            PhSensor.decode_reading(b"\x00")
        with pytest.raises(ValueError):
            nernst_slope_v(500.0)


class TestCompensationMath:
    def test_synthesize_compensate_roundtrip(self):
        p, t = 1013.25, 21.5
        d1, d2 = synthesize_raw(p, t, DEFAULT_PROM)
        p2, t2 = compensate(d1, d2, DEFAULT_PROM)
        assert p2 == pytest.approx(p, abs=0.2)
        assert t2 == pytest.approx(t, abs=0.02)

    @settings(max_examples=25)
    @given(
        depth=st.floats(0.0, 100.0),
        temp=st.floats(1.0, 35.0),
    )
    def test_roundtrip_property(self, depth, temp):
        col = WaterColumn(depth_m=depth, temperature_c=temp)
        d1, d2 = synthesize_raw(col.absolute_pressure_mbar, temp, DEFAULT_PROM)
        p2, t2 = compensate(d1, d2, DEFAULT_PROM)
        assert p2 == pytest.approx(col.absolute_pressure_mbar, rel=1e-3)
        assert t2 == pytest.approx(temp, abs=0.05)


class TestMS5837:
    def make(self, depth=0.0, temp=21.0):
        env = WaterColumn(depth_m=depth, temperature_c=temp)
        bus = I2CBus()
        bus.attach(MS5837(env))
        return bus, MS5837Driver(bus), env

    def test_paper_verification_point(self):
        """Sec. 6.5: correct readings of room temperature and ~1 bar."""
        _bus, driver, _env = self.make(depth=0.0, temp=21.0)
        pressure, temperature = driver.read()
        assert pressure == pytest.approx(ATMOSPHERE_MBAR, rel=0.01)
        assert temperature == pytest.approx(21.0, abs=0.1)

    def test_depth_increases_pressure(self):
        _b, shallow, _e = self.make(depth=0.5)
        _b2, deep, _e2 = self.make(depth=10.0)
        assert deep.read()[0] > shallow.read()[0] + 800.0

    def test_prom_read(self):
        bus, driver, _ = self.make()
        driver.initialise()
        assert driver._prom == DEFAULT_PROM

    def test_conversion_requires_reset(self):
        env = WaterColumn()
        device = MS5837(env)
        with pytest.raises(I2CError, match="reset"):
            device.write(bytes([0x40]))

    def test_unknown_command_rejected(self):
        device = MS5837(WaterColumn())
        with pytest.raises(I2CError):
            device.write(bytes([0x99]))

    def test_multibyte_command_rejected(self):
        device = MS5837(WaterColumn())
        with pytest.raises(I2CError):
            device.write(b"\x1e\x00")

    def test_payload_roundtrip(self):
        payload = MS5837Driver.encode_reading(1013.2, 21.57)
        p, t = MS5837Driver.decode_reading(payload)
        assert p == pytest.approx(1013.2)
        assert t == pytest.approx(21.57)

    def test_encode_validates(self):
        with pytest.raises(ValueError):
            MS5837Driver.encode_reading(99_999.0, 21.0)
        with pytest.raises(ValueError):
            MS5837Driver.decode_reading(b"\x00\x00")

    def test_environment_change_tracked(self):
        bus, driver, env = self.make(depth=0.0)
        p0, _ = driver.read()
        env.depth_m = 5.0
        p1, _ = driver.read()
        assert p1 > p0 + 400.0


class TestThermistor:
    def test_r25(self):
        assert ThermistorChannel().resistance(25.0) == pytest.approx(10_000.0)

    def test_ntc_behaviour(self):
        ch = ThermistorChannel()
        assert ch.resistance(50.0) < ch.resistance(0.0)

    def test_roundtrip_through_divider(self):
        ch = ThermistorChannel()
        v = ch.divider_voltage(18.0)
        assert ch.temperature_from_voltage(v) == pytest.approx(18.0, abs=1e-9)

    @settings(max_examples=25)
    @given(t=st.floats(0.0, 40.0))
    def test_full_chain_accuracy(self, t):
        ch = ThermistorChannel()
        assert ch.read(t) == pytest.approx(t, abs=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermistorChannel(r25_ohm=0.0)
        with pytest.raises(ValueError):
            ThermistorChannel().temperature_from_voltage(5.0)
        with pytest.raises(ValueError):
            ThermistorChannel().resistance(-300.0)
