"""Tests for ADC and I2C bus models."""

import pytest
from hypothesis import given, strategies as st

from repro.sensing import I2CBus, I2CDevice, I2CError, SarADC


class TestSarADC:
    def test_full_scale(self):
        adc = SarADC(noise_lsb_rms=0.0)
        assert adc.sample(1.8) == adc.max_code

    def test_zero(self):
        adc = SarADC(noise_lsb_rms=0.0)
        assert adc.sample(0.0) == 0

    def test_midscale(self):
        adc = SarADC(noise_lsb_rms=0.0)
        assert adc.sample(0.9) == pytest.approx(512, abs=1)

    def test_clipping(self):
        adc = SarADC(noise_lsb_rms=0.0)
        assert adc.sample(5.0) == adc.max_code
        assert adc.sample(-1.0) == 0

    def test_lsb(self):
        adc = SarADC(resolution_bits=10, reference_v=1.8)
        assert adc.lsb_v == pytest.approx(1.8 / 1024)

    def test_to_voltage_roundtrip(self):
        adc = SarADC(noise_lsb_rms=0.0)
        code = adc.sample(1.0)
        assert adc.to_voltage(code) == pytest.approx(1.0, abs=adc.lsb_v)

    def test_to_voltage_validates(self):
        with pytest.raises(ValueError):
            SarADC().to_voltage(5000)

    def test_averaging_reduces_noise(self):
        adc = SarADC(noise_lsb_rms=2.0, seed=1)
        import numpy as np

        singles = [adc.to_voltage(adc.sample(0.9)) for _ in range(50)]
        averaged = [adc.sample_average(0.9, n=64) for _ in range(50)]
        assert np.std(averaged) < np.std(singles)

    def test_validation(self):
        with pytest.raises(ValueError):
            SarADC(resolution_bits=2)
        with pytest.raises(ValueError):
            SarADC(reference_v=0.0)
        with pytest.raises(ValueError):
            SarADC().sample_average(1.0, n=0)

    @given(v=st.floats(0.0, 1.8))
    def test_monotone(self, v):
        adc = SarADC(noise_lsb_rms=0.0)
        assert adc.sample(min(v + 0.01, 1.8)) >= adc.sample(v)


class Echo(I2CDevice):
    address = 0x42

    def __init__(self):
        self.buffer = b""

    def write(self, data: bytes) -> None:
        self.buffer = data

    def read(self, length: int) -> bytes:
        return self.buffer[:length].ljust(length, b"\x00")


class TestI2CBus:
    def test_attach_and_scan(self):
        bus = I2CBus()
        bus.attach(Echo())
        assert bus.scan() == [0x42]

    def test_write_read(self):
        bus = I2CBus()
        bus.attach(Echo())
        bus.write(0x42, b"\xab\xcd")
        assert bus.read(0x42, 2) == b"\xab\xcd"

    def test_write_read_combined(self):
        bus = I2CBus()
        bus.attach(Echo())
        assert bus.write_read(0x42, b"\x55", 1) == b"\x55"

    def test_nack_on_missing_device(self):
        bus = I2CBus()
        with pytest.raises(I2CError, match="NACK"):
            bus.write(0x10, b"\x00")
        with pytest.raises(I2CError, match="NACK"):
            bus.read(0x10, 1)

    def test_address_conflict(self):
        bus = I2CBus()
        bus.attach(Echo())
        with pytest.raises(ValueError, match="conflict"):
            bus.attach(Echo())

    def test_reserved_addresses_rejected(self):
        bus = I2CBus()
        bad = Echo()
        bad.address = 0x03
        with pytest.raises(ValueError):
            bus.attach(bad)

    def test_detach(self):
        bus = I2CBus()
        bus.attach(Echo())
        bus.detach(0x42)
        assert bus.scan() == []
        with pytest.raises(KeyError):
            bus.detach(0x42)

    def test_negative_read_length(self):
        bus = I2CBus()
        bus.attach(Echo())
        with pytest.raises(ValueError):
            bus.read(0x42, -1)
