"""Tests for addressing and application messages."""

import pytest
from hypothesis import given, strategies as st

from repro.net import BROADCAST, Command, NodeAddress, Query, Response
from repro.net.messages import BITRATE_TABLE
from repro.sensing.ph import PhSensor
from repro.sensing.pressure import MS5837Driver


class TestNodeAddress:
    def test_accepts_own_and_broadcast(self):
        a = NodeAddress(7)
        assert a.accepts(7)
        assert a.accepts(BROADCAST)
        assert not a.accepts(8)

    def test_broadcast_flag(self):
        assert NodeAddress(0xFF).is_broadcast
        assert not NodeAddress(0).is_broadcast

    def test_int_conversion(self):
        assert int(NodeAddress(42)) == 42

    def test_str(self):
        assert str(NodeAddress(0x0A)) == "node-0x0a"

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeAddress(256)
        with pytest.raises(ValueError):
            NodeAddress(-1)

    def test_ordering(self):
        assert NodeAddress(1) < NodeAddress(2)


class TestQuery:
    def test_packet_roundtrip(self):
        q = Query(destination=7, command=Command.READ_PH, argument=3)
        assert Query.from_packet(q.to_packet()) == q

    @given(
        dest=st.integers(0, 255),
        cmd=st.sampled_from(list(Command)),
        arg=st.integers(0, 255),
    )
    def test_roundtrip_property(self, dest, cmd, arg):
        q = Query(destination=dest, command=cmd, argument=arg)
        assert Query.from_packet(q.to_packet()) == q

    def test_rejects_short_payload(self):
        from repro.dsp.packets import Packet

        with pytest.raises(ValueError):
            Query.from_packet(Packet(address=1, payload=b"\x01"))

    def test_rejects_unknown_command(self):
        from repro.dsp.packets import Packet

        with pytest.raises(ValueError, match="unknown command"):
            Query.from_packet(Packet(address=1, payload=b"\x99\x00"))

    def test_bitrate_lookup(self):
        q = Query(destination=1, command=Command.SET_BITRATE, argument=5)
        assert q.bitrate() == BITRATE_TABLE[5]

    def test_bitrate_lookup_wrong_command(self):
        q = Query(destination=1, command=Command.PING)
        with pytest.raises(ValueError):
            q.bitrate()

    def test_bitrate_table_matches_paper_rates(self):
        """Sec. 6.1b lists the tested bitrates."""
        for rate in (100.0, 200.0, 400.0, 600.0, 800.0, 1_000.0, 2_000.0,
                     2_800.0, 3_000.0, 5_000.0):
            assert rate in BITRATE_TABLE

    def test_validation(self):
        with pytest.raises(ValueError):
            Query(destination=300, command=Command.PING)
        with pytest.raises(ValueError):
            Query(destination=1, command=Command.PING, argument=300)


class TestResponse:
    def test_packet_roundtrip(self):
        r = Response(source=9, command=Command.READ_PH, data=b"\x02\xe6")
        assert Response.from_packet(r.to_packet()) == r

    def test_ph_reading(self):
        payload = PhSensor().encode_reading(7.42)
        r = Response(source=1, command=Command.READ_PH, data=payload)
        reading = r.reading()
        assert reading.kind == "ph"
        assert reading.values[0] == pytest.approx(7.42)

    def test_pressure_temp_reading(self):
        payload = MS5837Driver.encode_reading(1013.2, 21.5)
        r = Response(source=1, command=Command.READ_PRESSURE_TEMP, data=payload)
        p, t = r.reading().values
        assert p == pytest.approx(1013.2)
        assert t == pytest.approx(21.5)

    def test_temperature_reading(self):
        raw = int(round((18.5 + 100.0) * 100.0))
        r = Response(
            source=1,
            command=Command.READ_TEMPERATURE,
            data=bytes([(raw >> 8) & 0xFF, raw & 0xFF]),
        )
        assert r.reading().values[0] == pytest.approx(18.5)

    def test_ping_reading(self):
        assert Response(source=1, command=Command.PING).reading().kind == "pong"

    def test_no_reading_for_config_commands(self):
        r = Response(source=1, command=Command.SET_BITRATE, data=b"\x05")
        with pytest.raises(ValueError):
            r.reading()

    def test_reading_str(self):
        payload = PhSensor().encode_reading(7.0)
        r = Response(source=1, command=Command.READ_PH, data=payload)
        assert "ph(" in str(r.reading())
