"""Tests for SNR-driven rate adaptation."""

import pytest

from repro.net.rate_adaptation import (
    DECODE_THRESHOLD_DB,
    RateAdapter,
    best_static_rate,
)


class TestRateAdapter:
    def test_starts_at_bottom(self):
        adapter = RateAdapter()
        assert adapter.bitrate == 100.0

    def test_ladder_excludes_undecodable_5kbps(self):
        assert 5_000.0 not in RateAdapter().ladder
        assert 3_000.0 in RateAdapter().ladder

    def test_steps_up_after_streak(self):
        adapter = RateAdapter(up_streak=3)
        for _ in range(3):
            adapter.report(success=True, snr_db=20.0)
        assert adapter.bitrate == 200.0

    def test_no_step_up_without_margin(self):
        adapter = RateAdapter(up_streak=2, up_margin_db=6.0)
        for _ in range(10):
            adapter.report(success=True, snr_db=DECODE_THRESHOLD_DB + 1.0)
        assert adapter.bitrate == 100.0

    def test_steps_down_on_failure(self):
        adapter = RateAdapter(start_index=4)
        before = adapter.bitrate
        adapter.report(success=False)
        assert adapter.bitrate < before

    def test_steps_down_on_low_snr_even_if_decoded(self):
        adapter = RateAdapter(start_index=4)
        before = adapter.bitrate
        adapter.report(success=True, snr_db=1.0)
        assert adapter.bitrate < before

    def test_clamped_at_ends(self):
        adapter = RateAdapter()
        adapter.report(success=False)
        assert adapter.bitrate == 100.0  # already at the bottom
        top = RateAdapter(start_index=8)
        for _ in range(20):
            top.report(success=True, snr_db=30.0)
        assert top.bitrate == top.ladder[-1]

    def test_failure_resets_streak(self):
        adapter = RateAdapter(up_streak=3)
        adapter.report(success=True, snr_db=20.0)
        adapter.report(success=True, snr_db=20.0)
        adapter.report(success=False)
        adapter.report(success=True, snr_db=20.0)
        adapter.report(success=True, snr_db=20.0)
        assert adapter.bitrate == 100.0  # streak broken, never stepped up

    def test_converges_on_channel_with_known_knee(self):
        """Against a Fig. 8-shaped SNR profile, the adapter settles near
        the fastest decodable rate."""
        snr_profile = {
            100.0: 26.0, 200.0: 24.0, 400.0: 19.0, 600.0: 15.0,
            800.0: 12.0, 1_000.0: 11.0, 2_000.0: 6.0, 2_800.0: 5.0,
            3_000.0: 3.0,
        }
        adapter = RateAdapter(up_streak=2, up_margin_db=4.0)
        for _ in range(60):
            snr = snr_profile[adapter.bitrate]
            adapter.report(success=snr > DECODE_THRESHOLD_DB, snr_db=snr)
        # Settles in the 1-2.8 kbps region (fast but with margin).
        assert 800.0 <= adapter.bitrate <= 2_800.0

    def test_reset(self):
        adapter = RateAdapter(up_streak=1)
        adapter.report(success=True, snr_db=30.0)
        adapter.reset()
        assert adapter.bitrate == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RateAdapter(ladder=())
        with pytest.raises(ValueError):
            RateAdapter(ladder=(200.0, 100.0))
        with pytest.raises(ValueError):
            RateAdapter(start_index=99)
        with pytest.raises(ValueError):
            RateAdapter(up_streak=0)


class TestBestStaticRate:
    def test_picks_fastest_decodable(self):
        snrs = {100.0: 20.0, 1_000.0: 8.0, 3_000.0: 1.0}
        assert best_static_rate(snrs) == 1_000.0

    def test_margin_pushes_down(self):
        snrs = {100.0: 20.0, 1_000.0: 8.0, 3_000.0: 1.0}
        assert best_static_rate(snrs, margin_db=10.0) == 100.0

    def test_nothing_decodable(self):
        with pytest.raises(ValueError):
            best_static_rate({1_000.0: 0.0})
