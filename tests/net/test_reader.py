"""Tests for the reader-side controller."""

import pytest

from repro.acoustics import POOL_A, Position
from repro.core import BackscatterLink, Projector
from repro.net import Command
from repro.net.messages import BITRATE_TABLE
from repro.net.reader import ReaderController
from repro.node.node import Environment, PABNode
from repro.piezo import Transducer
from repro.sensing.pressure import WaterColumn


class StubResult:
    def __init__(self, success, packet=None):
        self.success = success

        class D:
            pass

        self.demod = D()
        self.demod.packet = packet


class StubNodeTransport:
    """A behaviourally faithful stand-in: executes queries against real
    firmware without the waveform physics (fast)."""

    def __init__(self, address, fail_first=0):
        self.node = PABNode(
            address=address,
            environment=Environment(
                water=WaterColumn(depth_m=0.4, temperature_c=19.0),
                true_ph=7.2,
            ),
        )
        self.node.force_power(True)
        self.fail_first = fail_first
        self.calls = 0

    def __call__(self, query):
        self.calls += 1
        if self.calls <= self.fail_first:
            return StubResult(False)
        response = self.node.respond(query)
        if response is None:
            return StubResult(False)
        self.node.firmware.response_sent()
        return StubResult(True, response.to_packet())


class TestConfiguration:
    def make(self):
        return ReaderController({1: StubNodeTransport(1), 2: StubNodeTransport(2)})

    def test_set_bitrate_acknowledged(self):
        reader = self.make()
        assert reader.set_bitrate(1, 2_000.0)
        assert reader.nodes[1].bitrate == 2_000.0

    def test_set_bitrate_unknown_value(self):
        with pytest.raises(ValueError, match="BITRATE_TABLE"):
            self.make().set_bitrate(1, 1_234.0)

    def test_set_resonance_mode_rejected_by_single_mode_node(self):
        reader = self.make()
        # Default nodes have one mode; asking for mode 1 gets no ack.
        assert not reader.set_resonance_mode(1, 1)
        assert reader.nodes[1].resonance_mode is None

    def test_set_resonance_mode_zero_acknowledged(self):
        reader = self.make()
        assert reader.set_resonance_mode(2, 0)
        assert reader.nodes[2].resonance_mode == 0

    def test_unknown_address(self):
        with pytest.raises(KeyError):
            self.make().poll(9, Command.PING)

    def test_empty_transports(self):
        with pytest.raises(ValueError):
            ReaderController({})


class TestPolling:
    def test_poll_reads_sensor(self):
        reader = ReaderController({1: StubNodeTransport(1)})
        reading = reader.poll(1, Command.READ_PH)
        assert reading is not None
        assert reading.kind == "ph"
        assert reading.values[0] == pytest.approx(7.2, abs=0.15)

    def test_poll_round_covers_all_nodes(self):
        reader = ReaderController(
            {1: StubNodeTransport(1), 2: StubNodeTransport(2)}
        )
        round_result = reader.poll_round(Command.READ_PRESSURE_TEMP)
        assert set(round_result) == {1, 2}
        assert all(r is not None for r in round_result.values())

    def test_retries_recover_flaky_node(self):
        reader = ReaderController(
            {1: StubNodeTransport(1, fail_first=2)}, max_retries=2
        )
        assert reader.poll(1, Command.PING) is not None

    def test_run_schedule_counts(self):
        reader = ReaderController({1: StubNodeTransport(1)})
        delivered = reader.run_schedule(Command.READ_TEMPERATURE, rounds=3)
        assert delivered[1] == 3
        assert len(reader.nodes[1].readings) == 3

    def test_schedule_validation(self):
        reader = ReaderController({1: StubNodeTransport(1)})
        with pytest.raises(ValueError):
            reader.run_schedule(Command.PING, rounds=0)

    def test_summary(self):
        reader = ReaderController({1: StubNodeTransport(1)})
        reader.set_bitrate(1, BITRATE_TABLE[5])
        reader.poll(1, Command.READ_PH)
        summary = reader.summary()
        assert summary[0]["address"] == 1
        assert summary[0]["bitrate"] == BITRATE_TABLE[5]
        assert summary[0]["readings"] == 1


class TestEnergyAndSloIntegration:
    def make(self, *, fail_first=0):
        from repro.obs import MetricsRegistry, NodeEnergyHarness, SLOTracker

        harnesses = {
            1: NodeEnergyHarness(1, v_oc_v=4.0),
            # Starved: source below the cap voltage, pure discharge.
            2: NodeEnergyHarness(2, v_oc_v=1.5, initial_voltage_v=2.6),
        }
        metrics = MetricsRegistry()
        reader = ReaderController(
            {1: StubNodeTransport(1), 2: StubNodeTransport(2, fail_first=fail_first)},
            metrics=metrics,
            ledgers=harnesses,
            slo=SLOTracker(),
        )
        return reader, harnesses, metrics

    def test_round_log_tracks_outcomes_and_burn(self):
        reader, _, _ = self.make()
        reader.poll_round(Command.READ_PH)
        reader.poll_round(Command.READ_PH)
        assert len(reader.round_log) == 2
        record = reader.round_log[0]
        assert set(record["outcomes"]) == {1, 2}
        assert set(record["burn"]) == {"availability", "delivery", "energy"}
        info = record["outcomes"][1]
        assert info["polled"] and info["delivered"] and info["up"]
        assert "sustainable" in info and "soc_v" in info

    def test_harnesses_advance_with_the_campaign_clock(self):
        reader, harnesses, _ = self.make()
        reader.run_schedule(Command.READ_PH, 5)
        assert harnesses[1].ledger.t == pytest.approx(5.0)
        assert len(harnesses[1].ledger.round_history) == 5
        assert abs(harnesses[1].ledger.balance()["error_fraction"]) < 1e-9

    def test_report_carries_energy_and_slo_sections(self):
        reader, _, metrics = self.make()
        report = reader.run_campaign(Command.READ_PH, 4)
        assert set(report["energy"]) == {1, 2}
        assert report["energy"][1]["node"] == 1
        assert "duty_cycle" in report["energy"][1]
        assert report["slo"]["rounds"] == 4
        assert "delivery" in report["slo"]["fleet"]
        # Ledger + SLO gauges landed in the shared registry.
        assert metrics.value("pab_node_soc_volts", node=1) > 0
        assert metrics.value(
            "pab_slo_compliance", objective="delivery", node="fleet"
        ) == pytest.approx(1.0)

    def test_untracked_reader_keeps_no_round_log(self):
        reader = ReaderController({1: StubNodeTransport(1)})
        reader.poll_round(Command.READ_PH)
        assert reader.round_log == []
        assert "energy" not in reader.report()
        assert "slo" not in reader.report()

    def test_failed_delivery_burns_the_budget(self):
        reader, _, _ = self.make(fail_first=100)
        reader.run_schedule(Command.READ_PH, 4)
        good, bad = reader.slo.counts("delivery", 2)
        assert bad > 0
        assert reader.slo.error_budget_remaining("delivery", 2) < 1.0


class TestEndToEndWithWaveformLink:
    def test_full_stack_configuration_and_sensing(self):
        """ReaderController over the real waveform link."""
        transducer = Transducer.from_cylinder_design()
        f = transducer.resonance_hz
        projector = Projector(
            transducer=transducer, drive_voltage_v=50.0, carrier_hz=f
        )
        node = PABNode(
            address=0x21,
            channel_frequencies_hz=(f,),
            environment=Environment(
                water=WaterColumn(depth_m=0.7, temperature_c=17.0)
            ),
        )
        link = BackscatterLink(
            POOL_A, projector, Position(0.5, 1.5, 0.6),
            node, Position(1.5, 1.5, 0.6), Position(1.0, 0.8, 0.6),
        )
        reader = ReaderController({0x21: link.run_query})
        assert reader.set_bitrate(0x21, 400.0)
        assert node.bitrate == 400.0  # the command took effect on-node
        reading = reader.poll(0x21, Command.READ_PRESSURE_TEMP)
        assert reading is not None
        pressure, temperature = reading.values
        assert temperature == pytest.approx(17.0, abs=0.3)
