"""Tests for the slotted-ALOHA inventory layer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.inventory import (
    InventoryReader,
    expected_rounds,
    slot_choice,
)


class TestSlotChoice:
    def test_deterministic(self):
        assert slot_choice(7, 3, 8) == slot_choice(7, 3, 8)

    def test_changes_with_nonce(self):
        choices = {slot_choice(7, nonce, 64) for nonce in range(32)}
        assert len(choices) > 10  # spread over slots across rounds

    def test_in_range(self):
        for addr in range(30):
            assert 0 <= slot_choice(addr, 1, 5) < 5

    def test_roughly_uniform(self):
        counts = [0] * 4
        for addr in range(400):
            counts[slot_choice(addr, 9, 4)] += 1
        assert min(counts) > 50

    def test_validation(self):
        with pytest.raises(ValueError):
            slot_choice(1, 1, 0)


class TestInventoryReader:
    def test_discovers_everyone(self):
        reader = InventoryReader(initial_frame_size=4)
        population = set(range(1, 13))
        discovered, stats = reader.run(population)
        assert discovered == population
        assert stats.rounds >= 1
        assert stats.singles + stats.resolved_collisions >= len(population)

    def test_empty_population(self):
        discovered, stats = InventoryReader().run([])
        assert discovered == set()
        assert stats.rounds == 1

    def test_single_node(self):
        discovered, stats = InventoryReader(initial_frame_size=1).run([42])
        assert discovered == {42}

    def test_collision_decoding_speeds_discovery(self):
        """With the paper's 2-way collision decoder, 2-node collision
        slots resolve instead of wasting the round."""
        population = set(range(40))
        base_reader = InventoryReader(
            initial_frame_size=8, collision_decode_limit=1
        )
        pab_reader = InventoryReader(
            initial_frame_size=8, collision_decode_limit=2
        )
        _d1, base = base_reader.run(population)
        _d2, pab = pab_reader.run(population)
        assert pab.efficiency > base.efficiency
        assert pab.resolved_collisions > 0

    def test_frame_adaptation_handles_dense_population(self):
        reader = InventoryReader(initial_frame_size=1, max_rounds=200)
        population = set(range(60))
        discovered, stats = reader.run(population)
        assert discovered == population

    def test_max_rounds_bounds_work(self):
        reader = InventoryReader(initial_frame_size=1, max_rounds=2)
        discovered, stats = reader.run(set(range(100)))
        assert stats.rounds == 2  # gave up, bounded

    def test_validation(self):
        with pytest.raises(ValueError):
            InventoryReader(initial_frame_size=0)
        with pytest.raises(ValueError):
            InventoryReader(collision_decode_limit=0)
        with pytest.raises(ValueError):
            InventoryReader(max_rounds=0)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(0, 50))
    def test_discovery_complete_for_any_population(self, n):
        reader = InventoryReader(initial_frame_size=8, max_rounds=400)
        population = set(range(n))
        discovered, _stats = reader.run(population)
        assert discovered == population


class TestExpectedRounds:
    def test_more_nodes_more_rounds(self):
        assert expected_rounds(64, 16) > expected_rounds(4, 16)

    def test_zero_nodes_zero_rounds(self):
        assert expected_rounds(0, 8) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_rounds(-1, 8)
