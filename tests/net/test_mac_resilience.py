"""MAC hardening tests: exception containment, backoff, stats edge cases."""

import math

import pytest

from repro.faults import EventLog
from repro.net import Command, MacStats, PollingMac, Query, RetryPolicy


PING = Query(destination=1, command=Command.PING)


class FakeResult:
    def __init__(self, success):
        self.success = success


def always_fail(query):
    return FakeResult(False)


def always_succeed(query):
    return FakeResult(True)


class TestExceptionContainment:
    def test_exception_is_a_failed_attempt(self):
        def boom(query):
            raise RuntimeError("modem fell over")

        mac = PollingMac(transact=boom, max_retries=2)
        result = mac.poll(PING)
        assert result is None
        assert mac.stats.attempts == 3
        assert mac.stats.retries == 2
        assert mac.stats.exceptions == 3
        assert mac.stats.successes == 0
        assert isinstance(mac.last_exception, RuntimeError)

    def test_counters_stay_consistent_across_mixed_outcomes(self):
        outcomes = iter(["raise", "fail", "ok"])

        def flaky(query):
            outcome = next(outcomes)
            if outcome == "raise":
                raise OSError("transient")
            return FakeResult(outcome == "ok")

        mac = PollingMac(transact=flaky, max_retries=2)
        result = mac.poll(PING)
        assert result.success
        assert mac.stats.attempts == 3
        assert mac.stats.retries == 2
        assert mac.stats.exceptions == 1
        assert mac.stats.successes == 1
        # Airtime was charged for every attempt, including the raising one.
        assert mac.stats.airtime_s == pytest.approx(3 * 0.3)

    def test_exception_recovery_next_poll(self):
        calls = {"n": 0}

        def first_raises(query):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("one-off")
            return FakeResult(True)

        mac = PollingMac(transact=first_raises, max_retries=1)
        assert mac.poll(PING).success
        assert mac.poll(PING).success
        assert mac.last_exception is None  # cleared per poll


class TestResultShapeEdgeCases:
    def test_result_missing_success_attribute(self):
        mac = PollingMac(transact=lambda q: object(), max_retries=1)
        result = mac.poll(PING)
        assert result is not None
        assert mac.stats.successes == 0
        assert mac.stats.attempts == 2

    def test_result_missing_demod(self):
        mac = PollingMac(transact=always_succeed, max_retries=0)
        assert mac.poll(PING).success
        assert mac.stats.successes == 1
        assert mac.stats.payload_bits_delivered == 0

    def test_demod_packet_without_payload_attribute(self):
        class R:
            success = True

            class demod:
                packet = b"\x00\x01"  # raw bytes, not a Packet

        mac = PollingMac(transact=lambda q: R(), max_retries=0)
        mac.poll(PING)
        assert mac.stats.payload_bits_delivered == 0


class TestRetryBounds:
    def test_zero_retries(self):
        mac = PollingMac(transact=always_fail, max_retries=0)
        result = mac.poll(PING)
        assert not result.success
        assert mac.stats.attempts == 1
        assert mac.stats.retries == 0
        assert mac.stats.delivery_ratio == 0.0

    def test_all_attempts_fail(self):
        mac = PollingMac(transact=always_fail, max_retries=3)
        mac.poll(PING)
        assert mac.stats.attempts == 4
        assert mac.stats.retries == 3
        assert mac.stats.successes == 0
        assert mac.stats.delivery_ratio == 0.0

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            PollingMac(transact=always_fail, max_retries=-1)


class TestRetryPolicy:
    def test_backoff_sequence_no_jitter(self):
        policy = RetryPolicy(
            max_retries=3, base_backoff_s=0.1, multiplier=2.0, jitter=0.0
        )
        assert [policy.backoff_s(i) for i in range(3)] == pytest.approx(
            [0.1, 0.2, 0.4]
        )

    def test_backoff_ceiling(self):
        policy = RetryPolicy(
            base_backoff_s=1.0, multiplier=10.0, jitter=0.0, max_backoff_s=3.0
        )
        assert policy.backoff_s(5) == 3.0

    def test_jitter_is_seeded(self):
        a = [RetryPolicy(jitter=0.5, seed=42).backoff_s(i) for i in range(5)]
        b = [RetryPolicy(jitter=0.5, seed=42).backoff_s(i) for i in range(5)]
        assert a == b

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_backoff_s=1.0, multiplier=1.0, jitter=0.25, seed=0)
        for i in range(100):
            assert 0.75 <= policy.backoff_s(0) <= 1.25

    def test_mac_accounts_backoff_time(self):
        policy = RetryPolicy(
            max_retries=3, base_backoff_s=0.1, multiplier=2.0, jitter=0.0
        )
        mac = PollingMac(transact=always_fail, retry_policy=policy)
        mac.poll(PING)
        assert mac.stats.backoff_s == pytest.approx(0.1 + 0.2 + 0.4)
        assert mac.stats.retries == 3

    def test_policy_overrides_max_retries(self):
        policy = RetryPolicy(max_retries=1, base_backoff_s=0.0, jitter=0.0)
        mac = PollingMac(transact=always_fail, max_retries=5, retry_policy=policy)
        mac.poll(PING)
        assert mac.stats.attempts == 2

    def test_timeout_budget_stops_retrying(self):
        # Each attempt burns 0.3 s airtime; backoff is 0.5 s flat.  After
        # attempt 1 (0.3 s) + wait (0.5 s) + attempt 2 (0.3 s) the next
        # wait would blow the 1.2 s budget.
        policy = RetryPolicy(
            max_retries=10,
            base_backoff_s=0.5,
            multiplier=1.0,
            jitter=0.0,
            timeout_budget_s=1.2,
        )
        log = EventLog()
        mac = PollingMac(transact=always_fail, retry_policy=policy, log=log, node=4)
        mac.poll(PING)
        assert mac.stats.attempts == 2
        assert len(log.filter(node=4, kind="give_up")) == 1

    def test_sleep_callable_invoked(self):
        waits = []
        policy = RetryPolicy(max_retries=2, base_backoff_s=0.1, jitter=0.0)
        mac = PollingMac(transact=always_fail, retry_policy=policy, sleep=waits.append)
        mac.poll(PING)
        assert waits == pytest.approx([0.1, 0.2])

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_budget_s=0.0)

    def test_events_logged(self):
        policy = RetryPolicy(max_retries=1, base_backoff_s=0.1, jitter=0.0)
        log = EventLog()

        def boom(query):
            raise RuntimeError("x")

        mac = PollingMac(transact=boom, retry_policy=policy, log=log, node=2)
        mac.poll(PING)
        assert len(log.filter(node=2, kind="exception")) == 2
        assert len(log.filter(node=2, kind="retry")) == 1
        assert len(log.filter(node=2, kind="backoff")) == 1


class TestMacStats:
    def test_merge_sums_every_counter(self):
        a = MacStats(
            attempts=10,
            successes=8,
            retries=2,
            payload_bits_delivered=640,
            airtime_s=3.0,
            backoff_s=0.5,
            exceptions=1,
        )
        b = MacStats(
            attempts=4,
            successes=1,
            retries=3,
            payload_bits_delivered=80,
            airtime_s=1.2,
            backoff_s=0.7,
            exceptions=2,
        )
        merged = a.merge(b)
        assert merged.attempts == 14
        assert merged.successes == 9
        assert merged.retries == 5
        assert merged.payload_bits_delivered == 720
        assert merged.airtime_s == pytest.approx(4.2)
        assert merged.backoff_s == pytest.approx(1.2)
        assert merged.exceptions == 3
        # Operands untouched.
        assert a.attempts == 10 and b.attempts == 4

    def test_merge_multiple(self):
        parts = [MacStats(attempts=i, successes=i) for i in (1, 2, 3)]
        merged = parts[0].merge(*parts[1:])
        assert merged.attempts == 6

    def test_merged_delivery_ratio(self):
        a = MacStats(attempts=5, successes=4, retries=1)  # 4 distinct
        b = MacStats(attempts=3, successes=1, retries=2)  # 1 distinct
        assert a.merge(b).delivery_ratio == pytest.approx(5 / 5)

    def test_delivery_ratio_all_retries(self):
        # Degenerate: attempts == retries (no distinct queries).
        assert MacStats(attempts=3, retries=3, successes=1).delivery_ratio == 0.0

    def test_delivery_ratio_empty(self):
        assert MacStats().delivery_ratio == 0.0

    def test_delivery_ratio_clamped(self):
        # Hand-built inconsistent counters must not report > 1.
        assert MacStats(attempts=2, retries=1, successes=5).delivery_ratio == 1.0

    def test_goodput_zero_airtime(self):
        assert MacStats(payload_bits_delivered=100).goodput_bps == 0.0
        assert not math.isnan(MacStats().goodput_bps)
