"""Tests for the FDMA channel plan and polling MAC."""

import pytest

from repro.net import Channel, ChannelPlan, Command, MacStats, PollingMac, Query


class TestChannel:
    def test_validation(self):
        with pytest.raises(ValueError):
            Channel(index=0, frequency_hz=0.0)
        with pytest.raises(ValueError):
            Channel(index=-1, frequency_hz=15_000.0)


class TestChannelPlan:
    def test_default_matches_paper(self):
        plan = ChannelPlan()
        assert plan.frequencies_hz == (15_000.0, 18_000.0)

    def test_spacing_enforced(self):
        with pytest.raises(ValueError, match="closer"):
            ChannelPlan(frequencies_hz=(15_000.0, 15_500.0))

    def test_sorted(self):
        plan = ChannelPlan(frequencies_hz=(18_000.0, 12_000.0, 15_000.0))
        assert plan.frequencies_hz == (12_000.0, 15_000.0, 18_000.0)

    def test_assign_and_lookup(self):
        plan = ChannelPlan()
        ch = plan.assign(0x01, 1)
        assert ch.frequency_hz == 18_000.0
        assert plan.channel_of(0x01).index == 1

    def test_channel_exclusive(self):
        plan = ChannelPlan()
        plan.assign(0x01, 0)
        with pytest.raises(ValueError, match="already held"):
            plan.assign(0x02, 0)

    def test_reassign_same_node_ok(self):
        plan = ChannelPlan()
        plan.assign(0x01, 0)
        plan.assign(0x01, 0)

    def test_unassigned_lookup(self):
        with pytest.raises(KeyError):
            ChannelPlan().channel_of(0x09)

    def test_concurrent_groups(self):
        plan = ChannelPlan()
        assert plan.concurrent_groups() == []
        plan.assign(0x01, 0)
        plan.assign(0x02, 1)
        assert plan.concurrent_groups() == [[0x01, 0x02]]

    def test_capacity_factor(self):
        plan = ChannelPlan()
        assert plan.aggregate_capacity_factor == 1
        plan.assign(0x01, 0)
        plan.assign(0x02, 1)
        assert plan.aggregate_capacity_factor == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelPlan(frequencies_hz=())
        with pytest.raises(ValueError):
            ChannelPlan(frequencies_hz=(-1.0, 18_000.0))
        with pytest.raises(ValueError):
            ChannelPlan().assign(0x01, 5)


class FakeResult:
    def __init__(self, success, payload=b""):
        self.success = success
        if success:
            class P:  # minimal packet-like object
                pass

            packet = P()
            packet.payload = payload

            class D:
                pass

            self.demod = D()
            self.demod.packet = packet
        else:
            self.demod = None


class FlakyLink:
    """Fails the first ``fail_count`` attempts, then succeeds."""

    def __init__(self, fail_count):
        self.fail_count = fail_count
        self.calls = 0

    def __call__(self, query):
        self.calls += 1
        if self.calls <= self.fail_count:
            return FakeResult(False)
        return FakeResult(True, payload=b"\x01\x02")


class TestPollingMac:
    def query(self):
        return Query(destination=1, command=Command.PING)

    def test_success_first_try(self):
        mac = PollingMac(transact=FlakyLink(0))
        result = mac.poll(self.query())
        assert result.success
        assert mac.stats.attempts == 1
        assert mac.stats.retries == 0
        assert mac.stats.successes == 1
        assert mac.stats.payload_bits_delivered == 16

    def test_retry_then_success(self):
        mac = PollingMac(transact=FlakyLink(2), max_retries=2)
        result = mac.poll(self.query())
        assert result.success
        assert mac.stats.attempts == 3
        assert mac.stats.retries == 2

    def test_gives_up_after_max_retries(self):
        mac = PollingMac(transact=FlakyLink(10), max_retries=2)
        result = mac.poll(self.query())
        assert not result.success
        assert mac.stats.attempts == 3
        assert mac.stats.successes == 0

    def test_delivery_ratio(self):
        mac = PollingMac(transact=FlakyLink(1), max_retries=1)
        mac.poll(self.query())
        mac.poll(self.query())
        assert mac.stats.delivery_ratio == pytest.approx(1.0)

    def test_goodput_accounting(self):
        mac = PollingMac(
            transact=FlakyLink(0),
            airtime_estimator=lambda q, r: 0.5,
        )
        mac.poll(self.query())
        assert mac.stats.airtime_s == pytest.approx(0.5)
        assert mac.stats.goodput_bps == pytest.approx(16 / 0.5)

    def test_run_schedule(self):
        mac = PollingMac(transact=FlakyLink(0))
        results = mac.run_schedule([self.query() for _ in range(3)])
        assert len(results) == 3
        assert mac.stats.successes == 3

    def test_empty_stats(self):
        stats = MacStats()
        assert stats.delivery_ratio == 0.0
        assert stats.goodput_bps == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PollingMac(transact=FlakyLink(0), max_retries=-1)
