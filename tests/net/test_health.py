"""Tests for the per-node health state machine."""

import pytest

from repro.faults import EventLog
from repro.net import HealthPolicy, HealthState, NodeHealth


def make(policy=None, log=None):
    return NodeHealth(node=1, policy=policy or HealthPolicy(), log=log)


class TestPolicyValidation:
    def test_thresholds(self):
        with pytest.raises(ValueError):
            HealthPolicy(degrade_after=0)
        with pytest.raises(ValueError):
            HealthPolicy(degrade_after=3, quarantine_after=3)
        with pytest.raises(ValueError):
            HealthPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            HealthPolicy(probe_backoff_rounds=4, max_probe_backoff_rounds=2)


class TestTransitions:
    def test_starts_healthy(self):
        assert make().state is HealthState.HEALTHY

    def test_single_failure_stays_healthy(self):
        h = make()
        assert h.on_result(False, 0.0) is None
        assert h.state is HealthState.HEALTHY

    def test_degrades_after_consecutive_failures(self):
        h = make(HealthPolicy(degrade_after=2))
        h.on_result(False, 0.0)
        assert h.on_result(False, 1.0) == "degrade"
        assert h.state is HealthState.DEGRADED

    def test_success_resets_failure_streak(self):
        h = make(HealthPolicy(degrade_after=2))
        h.on_result(False, 0.0)
        h.on_result(True, 1.0)
        h.on_result(False, 2.0)
        assert h.state is HealthState.HEALTHY

    def test_degraded_recovers_after_success_streak(self):
        h = make(HealthPolicy(degrade_after=2, recover_after=2))
        h.on_result(False, 0.0)
        h.on_result(False, 1.0)
        h.on_result(True, 2.0)
        assert h.state is HealthState.DEGRADED
        assert h.on_result(True, 3.0) == "recovered"
        assert h.state is HealthState.HEALTHY

    def test_quarantine_after_more_failures(self):
        h = make(HealthPolicy(degrade_after=2, quarantine_after=4))
        for t in range(3):
            h.on_result(False, float(t))
        assert h.state is HealthState.DEGRADED
        assert h.on_result(False, 3.0) == "quarantine"
        assert h.state is HealthState.QUARANTINED
        assert h.next_probe_t == 3.0 + h.policy.probe_backoff_rounds


class TestProbing:
    def quarantined(self, **kwargs):
        policy = HealthPolicy(degrade_after=1, quarantine_after=2, **kwargs)
        h = make(policy)
        h.on_result(False, 0.0)
        h.on_result(False, 1.0)
        assert h.state is HealthState.QUARANTINED
        return h

    def test_not_due_before_backoff(self):
        h = self.quarantined(probe_backoff_rounds=3)
        assert not h.due_for_probe(2.0)
        assert h.due_for_probe(4.0)

    def test_probe_success_recovers(self):
        h = self.quarantined()
        h.start_probe(3.0)
        assert h.state is HealthState.PROBING
        assert h.on_result(True, 3.0) == "recovered"
        assert h.state is HealthState.HEALTHY

    def test_probe_failure_doubles_backoff(self):
        h = self.quarantined(probe_backoff_rounds=2, backoff_multiplier=2.0)
        h.start_probe(3.0)
        h.on_result(False, 3.0)
        assert h.state is HealthState.QUARANTINED
        assert h.next_probe_t == 3.0 + 4.0
        h.start_probe(7.0)
        h.on_result(False, 7.0)
        assert h.next_probe_t == 7.0 + 8.0

    def test_backoff_capped(self):
        h = self.quarantined(
            probe_backoff_rounds=2, backoff_multiplier=10.0, max_probe_backoff_rounds=5
        )
        h.start_probe(3.0)
        h.on_result(False, 3.0)
        assert h.next_probe_t == 3.0 + 5.0

    def test_recovery_resets_backoff(self):
        h = self.quarantined(probe_backoff_rounds=2)
        h.start_probe(3.0)
        h.on_result(False, 3.0)  # backoff now 4
        h.start_probe(7.0)
        h.on_result(True, 7.0)  # recovered
        # Re-quarantine: the backoff starts over at 2.
        h.on_result(False, 8.0)
        h.on_result(False, 9.0)
        assert h.state is HealthState.QUARANTINED
        assert h.next_probe_t == 9.0 + 2.0

    def test_cannot_probe_healthy_node(self):
        with pytest.raises(ValueError):
            make().start_probe(0.0)


class TestEventLogging:
    def test_transitions_logged(self):
        log = EventLog()
        h = NodeHealth(
            node=5, policy=HealthPolicy(degrade_after=1, quarantine_after=2), log=log
        )
        h.on_result(False, 0.0)
        h.on_result(False, 1.0)
        h.start_probe(3.0)
        h.on_result(True, 3.0)
        states = [dict(e.detail)["to"] for e in log.filter(node=5, kind="state")]
        assert states == ["DEGRADED", "QUARANTINED", "PROBING", "HEALTHY"]
