"""Tests for the TDMA baseline and throughput comparison."""

import pytest

from repro.net import (
    SlotTiming,
    TdmaScheduler,
    compare_throughput,
    slot_timing,
)


class TestSlotTiming:
    def test_total(self):
        slot = SlotTiming(query_s=0.5, reply_s=0.1, guard_s=0.05)
        assert slot.total_s == pytest.approx(0.65)

    def test_slot_timing_components(self):
        slot = slot_timing(payload_bytes=4, bitrate=1_000.0)
        assert slot.query_s > 0
        # Reply: (13+8+8+32+16) bits / 1 kbps.
        assert slot.reply_s == pytest.approx((13 + 16 + 32 + 16) / 1_000.0)

    def test_faster_bitrate_shorter_reply(self):
        slow = slot_timing(4, 500.0)
        fast = slot_timing(4, 2_000.0)
        assert fast.reply_s < slow.reply_s
        assert fast.query_s == slow.query_s  # downlink rate unchanged

    def test_validation(self):
        with pytest.raises(ValueError):
            slot_timing(-1, 1_000.0)
        with pytest.raises(ValueError):
            slot_timing(4, 0.0)


class TestThroughputComparison:
    def test_two_nodes_double_throughput(self):
        """The paper's headline concurrency gain (Sec. 1: 'doubling the
        network throughput through concurrent transmissions')."""
        cmp = compare_throughput(2, payload_bytes=4, bitrate=1_000.0)
        assert cmp.speedup == pytest.approx(2.0)

    def test_n_nodes_scale(self):
        cmp = compare_throughput(4, payload_bytes=4, bitrate=1_000.0)
        assert cmp.speedup == pytest.approx(4.0)

    def test_decoding_losses_reduce_gain(self):
        cmp = compare_throughput(
            2, payload_bytes=4, bitrate=1_000.0, fdma_success_ratio=0.75
        )
        assert cmp.speedup == pytest.approx(1.5)

    def test_single_node_no_gain(self):
        cmp = compare_throughput(1, payload_bytes=4, bitrate=1_000.0)
        assert cmp.speedup == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_throughput(0, 4, 1_000.0)
        with pytest.raises(ValueError):
            compare_throughput(2, 4, 1_000.0, fdma_success_ratio=2.0)


class TestTdmaScheduler:
    def test_round_robin_order(self):
        sched = TdmaScheduler([3, 1, 2])
        assert sched.next_round() == [1, 2, 3]

    def test_failed_nodes_prioritised(self):
        sched = TdmaScheduler([1, 2, 3])
        sched.report(3, success=False)
        assert sched.next_round()[0] == 3

    def test_success_clears_deficit(self):
        sched = TdmaScheduler([1, 2])
        sched.report(2, success=False)
        sched.report(2, success=True)
        assert sched.next_round() == [1, 2]

    def test_repeated_failures_accumulate(self):
        sched = TdmaScheduler([1, 2, 3])
        sched.report(2, success=False)
        sched.report(3, success=False)
        sched.report(3, success=False)
        assert sched.next_round() == [3, 2, 1]

    def test_duplicate_addresses_deduped(self):
        sched = TdmaScheduler([1, 1, 2])
        assert sched.addresses == [1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            TdmaScheduler([])
        with pytest.raises(KeyError):
            TdmaScheduler([1]).report(9, success=True)
