"""Tests for packet framing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dsp import DEFAULT_FORMAT, Packet, PacketFormat
from repro.dsp.packets import (
    BROADCAST_ADDRESS,
    DOWNLINK_PREAMBLE,
    FramingError,
    bits_to_bytes,
    bytes_to_bits,
)


class TestBitHelpers:
    def test_roundtrip(self):
        data = b"\x00\xff\xa5"
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_msb_first(self):
        np.testing.assert_array_equal(
            bytes_to_bits(b"\x80"), [1, 0, 0, 0, 0, 0, 0, 0]
        )

    def test_rejects_partial_bytes(self):
        with pytest.raises(ValueError):
            bits_to_bytes([1, 0, 1])

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            bits_to_bytes([2] * 8)

    @given(data=st.binary(max_size=32))
    def test_roundtrip_property(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data


class TestPacketFormat:
    def test_default_preamble_is_barker(self):
        assert len(DEFAULT_FORMAT.preamble) == 13

    def test_downlink_preamble_length_matches_paper(self):
        # Sec. 5.1a: "The transmitter's downlink query includes a 9-bit
        # preamble."
        assert len(DOWNLINK_PREAMBLE) == 9

    def test_overhead(self):
        assert DEFAULT_FORMAT.overhead_bits() == 13 + 8 + 8 + 16

    def test_frame_bits(self):
        p = Packet(address=1, payload=b"abc")
        assert DEFAULT_FORMAT.frame_bits(p) == DEFAULT_FORMAT.overhead_bits() + 24

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketFormat(preamble=(1, 0))
        with pytest.raises(ValueError):
            PacketFormat(preamble=(1, 0, 2, 1, 1))


class TestPacket:
    def test_roundtrip(self):
        p = Packet(address=42, payload=b"hello")
        assert Packet.from_bits(p.to_bits()) == p

    def test_empty_payload(self):
        p = Packet(address=0)
        assert Packet.from_bits(p.to_bits()) == p

    def test_broadcast_address(self):
        p = Packet(address=BROADCAST_ADDRESS)
        assert Packet.from_bits(p.to_bits()).address == 0xFF

    def test_address_validation(self):
        with pytest.raises(ValueError):
            Packet(address=300)

    def test_corrupted_payload_raises(self):
        bits = Packet(address=1, payload=b"data!").to_bits()
        bits[30] ^= 1
        with pytest.raises(FramingError):
            Packet.from_bits(bits)

    def test_bad_preamble_raises(self):
        bits = Packet(address=1, payload=b"x").to_bits()
        bits[0] ^= 1
        with pytest.raises(FramingError):
            Packet.from_bits(bits)

    def test_truncated_raises(self):
        bits = Packet(address=1, payload=b"a long payload").to_bits()
        with pytest.raises(FramingError):
            Packet.from_bits(bits[:40])

    def test_trailing_bits_ignored(self):
        p = Packet(address=9, payload=b"xy")
        bits = np.concatenate([p.to_bits(), np.zeros(37, dtype=np.int8)])
        assert Packet.from_bits(bits) == p

    def test_payload_too_long(self):
        with pytest.raises(ValueError):
            Packet(address=1, payload=b"a" * 300).to_bits()

    @given(addr=st.integers(0, 255), payload=st.binary(max_size=40))
    def test_roundtrip_property(self, addr, payload):
        p = Packet(address=addr, payload=payload)
        assert Packet.from_bits(p.to_bits()) == p
