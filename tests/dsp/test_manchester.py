"""Tests for Manchester line coding."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dsp import (
    manchester_decode_chips,
    manchester_encode,
    manchester_expected_chips,
)
from repro.dsp.manchester import has_midbit_transition

bit_lists = st.lists(st.integers(0, 1), min_size=1, max_size=64)


class TestEncode:
    def test_zero_is_high_low(self):
        np.testing.assert_array_equal(manchester_encode([0]), [1, 0])

    def test_one_is_low_high(self):
        np.testing.assert_array_equal(manchester_encode([1]), [0, 1])

    def test_every_bit_has_midbit_transition(self):
        """The property the paper cites for robust bit delineation."""
        chips = manchester_encode([0, 1, 1, 0, 1, 0, 0])
        assert has_midbit_transition(chips)

    def test_dc_free(self):
        chips = manchester_encode(np.random.default_rng(0).integers(0, 2, 100))
        assert np.mean(chips) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            manchester_encode([2])
        with pytest.raises(ValueError):
            manchester_encode(np.ones((2, 2)))

    def test_empty(self):
        assert len(manchester_encode([])) == 0


class TestDecode:
    @given(bits=bit_lists)
    def test_roundtrip(self, bits):
        chips = manchester_encode(bits).astype(float)
        np.testing.assert_array_equal(manchester_decode_chips(chips), bits)

    def test_noisy_decode(self):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, 500)
        chips = manchester_expected_chips(bits) + rng.normal(0, 0.4, 1000)
        errors = int(np.sum(manchester_decode_chips(chips) != bits))
        assert errors <= 3

    def test_rejects_odd_chips(self):
        with pytest.raises(ValueError):
            manchester_decode_chips([1.0, 0.0, 1.0])

    def test_expected_chips_bipolar(self):
        chips = manchester_expected_chips([0, 1])
        assert set(np.unique(chips)) <= {-1.0, 1.0}


class TestInvariants:
    def test_midbit_check_rejects_bad_stream(self):
        assert not has_midbit_transition([1, 1, 0, 1])
        assert not has_midbit_transition([1, 0, 1])

    @given(bits=bit_lists)
    def test_all_encodings_pass_invariant(self, bits):
        assert has_midbit_transition(manchester_encode(bits))
