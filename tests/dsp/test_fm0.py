"""Tests for FM0 line coding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp import (
    CHIPS_PER_BIT,
    fm0_decode_chips,
    fm0_encode,
    fm0_expected_chips,
    fm0_ml_decode,
)

bit_lists = st.lists(st.integers(0, 1), min_size=1, max_size=64)


class TestEncode:
    def test_length(self):
        assert len(fm0_encode([1, 0, 1])) == 3 * CHIPS_PER_BIT

    def test_transition_at_every_bit_boundary(self):
        """The defining FM0 property the paper relies on for robust bit
        delineation: the level always flips at a bit boundary."""
        bits = [1, 1, 0, 0, 1, 0, 1]
        chips = fm0_encode(bits)
        for i in range(1, len(bits)):
            last_of_prev = chips[2 * i - 1]
            first_of_cur = chips[2 * i]
            assert first_of_cur != last_of_prev

    def test_zero_has_midbit_transition(self):
        chips = fm0_encode([0])
        assert chips[0] != chips[1]

    def test_one_holds_level(self):
        chips = fm0_encode([1])
        assert chips[0] == chips[1]

    def test_initial_level(self):
        up = fm0_encode([1], initial_level=0)
        down = fm0_encode([1], initial_level=1)
        assert up[0] != down[0]

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            fm0_encode([0, 2])
        with pytest.raises(ValueError):
            fm0_encode([1], initial_level=5)

    def test_empty(self):
        assert len(fm0_encode([])) == 0


class TestHardDecode:
    @given(bits=bit_lists)
    def test_roundtrip(self, bits):
        chips = fm0_encode(bits)
        np.testing.assert_array_equal(fm0_decode_chips(chips), bits)

    def test_rejects_odd_chips(self):
        with pytest.raises(ValueError):
            fm0_decode_chips([1, 0, 1])

    def test_soft_returns_margins(self):
        bits, margins = fm0_decode_chips(
            fm0_encode([1, 0]).astype(float), soft=True
        )
        assert len(bits) == len(margins) == 2


class TestMLDecode:
    @given(bits=bit_lists)
    @settings(max_examples=30)
    def test_noiseless_roundtrip(self, bits):
        amplitudes = fm0_encode(bits).astype(float) * 2.0 - 1.0
        np.testing.assert_array_equal(fm0_ml_decode(amplitudes), bits)

    def test_robust_to_moderate_noise(self):
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, 200)
        amplitudes = fm0_encode(bits) * 2.0 - 1.0 + rng.normal(0, 0.35, 400)
        decoded = fm0_ml_decode(amplitudes)
        errors = int(np.sum(decoded != bits))
        assert errors <= 2

    def test_beats_naive_decode_in_noise(self):
        """Viterbi exploits FM0 memory, so in heavy noise it should make
        no more errors than per-bit hard decisions."""
        rng = np.random.default_rng(11)
        bits = rng.integers(0, 2, 500)
        amplitudes = fm0_encode(bits) * 2.0 - 1.0 + rng.normal(0, 0.8, 1000)
        ml_errors = int(np.sum(fm0_ml_decode(amplitudes) != bits))
        hard = fm0_decode_chips((amplitudes > 0).astype(float))
        hard_errors = int(np.sum(hard != bits))
        assert ml_errors <= hard_errors

    def test_unknown_initial_level_recovered(self):
        bits = np.array([1, 0, 0, 1, 1, 0])
        amplitudes = fm0_encode(bits, initial_level=0) * 2.0 - 1.0
        decoded = fm0_ml_decode(amplitudes, initial_level=1)
        np.testing.assert_array_equal(decoded, bits)

    def test_empty(self):
        assert len(fm0_ml_decode(np.zeros(0))) == 0

    def test_validates_shape(self):
        with pytest.raises(ValueError):
            fm0_ml_decode(np.zeros(3))


class TestExpectedChips:
    def test_bipolar(self):
        chips = fm0_expected_chips([1, 0, 1])
        assert set(np.unique(chips)) <= {-1.0, 1.0}

    def test_matches_encode(self):
        bits = [0, 1, 1, 0]
        np.testing.assert_array_equal(
            fm0_expected_chips(bits), fm0_encode(bits) * 2.0 - 1.0
        )
