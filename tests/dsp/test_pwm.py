"""Tests for the PWM downlink line code."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp import PWMCode, pwm_encode
from repro.dsp.pwm import pwm_decode_edges, pwm_decode_envelope

CODE = PWMCode(short_s=1e-3, long_s=2e-3, gap_s=1e-3)
FS = 96_000.0


class TestPWMCode:
    def test_one_twice_as_long_as_zero(self):
        """Paper Sec. 5.1a: the '1' bit is twice as long as the '0' bit."""
        assert CODE.long_s == pytest.approx(2 * CODE.short_s)

    def test_symbol_durations(self):
        assert CODE.symbol_duration(0) == pytest.approx(2e-3)
        assert CODE.symbol_duration(1) == pytest.approx(3e-3)

    def test_frame_duration(self):
        assert CODE.frame_duration([0, 1]) == pytest.approx(5e-3)

    def test_mean_bit_rate(self):
        assert CODE.mean_bit_rate == pytest.approx(1.0 / 2.5e-3)

    def test_harvest_duty_cycle_above_half(self):
        """PWM keeps the carrier on most of the time, which is why the
        paper chose it for harvesting."""
        assert CODE.harvest_duty_cycle > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            PWMCode(short_s=2e-3, long_s=1e-3)
        with pytest.raises(ValueError):
            PWMCode(gap_s=0.0)


class TestEncode:
    def test_envelope_binary(self):
        env = pwm_encode([1, 0, 1], CODE, FS)
        assert set(np.unique(env)) <= {0.0, 1.0}

    def test_length_matches_duration(self):
        bits = [1, 0, 0, 1]
        env = pwm_encode(bits, CODE, FS)
        assert len(env) == pytest.approx(CODE.frame_duration(bits) * FS, abs=4)

    def test_empty(self):
        assert len(pwm_encode([], CODE, FS)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            pwm_encode([2], CODE, FS)
        with pytest.raises(ValueError):
            pwm_encode([1], CODE, 0.0)


class TestDecode:
    @given(bits=st.lists(st.integers(0, 1), min_size=1, max_size=32))
    @settings(max_examples=25)
    def test_envelope_roundtrip(self, bits):
        env = pwm_encode(bits, CODE, FS)
        decoded = pwm_decode_envelope(env, CODE, FS)
        np.testing.assert_array_equal(decoded, bits)

    def test_edge_decode(self):
        # Bit pattern 1, 0: on 2 ms, off 1 ms, on 1 ms, off 1 ms.
        times = np.array([0.0, 2e-3, 3e-3, 4e-3])
        pols = np.array([1, -1, 1, -1])
        np.testing.assert_array_equal(pwm_decode_edges(times, pols, CODE), [1, 0])

    def test_glitch_rejected(self):
        # A 50 us glitch pulse between real symbols is ignored.
        times = np.array([0.0, 2e-3, 2.5e-3, 2.55e-3, 3e-3, 4e-3])
        pols = np.array([1, -1, 1, -1, 1, -1])
        np.testing.assert_array_equal(pwm_decode_edges(times, pols, CODE), [1, 0])

    def test_unpaired_edges_skipped(self):
        # A falling edge with no preceding rising edge decodes nothing.
        times = np.array([1e-3])
        pols = np.array([-1])
        assert len(pwm_decode_edges(times, pols, CODE)) == 0

    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            pwm_decode_edges(np.zeros(3), np.zeros(2), CODE)

    def test_noisy_envelope(self):
        rng = np.random.default_rng(3)
        bits = [1, 0, 1, 1, 0]
        env = pwm_encode(bits, CODE, FS)
        noisy = env + rng.normal(0, 0.05, len(env))
        decoded = pwm_decode_envelope(noisy, CODE, FS)
        np.testing.assert_array_equal(decoded, bits)
