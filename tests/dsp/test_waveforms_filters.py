"""Tests for waveform utilities and filters."""

import numpy as np
import pytest

from repro.dsp import (
    amplitude_modulated_carrier,
    butter_bandpass,
    butter_lowpass,
    decimate_to_rate,
    downconvert,
    envelope_detect,
    tone,
)
from repro.dsp.filters import matched_filter_chip
from repro.dsp.waveforms import upconvert_chips

FS = 96_000.0


class TestTone:
    def test_length(self):
        assert len(tone(1_000.0, 0.5, FS)) == int(0.5 * FS)

    def test_amplitude(self):
        x = tone(1_000.0, 0.1, FS, amplitude=3.0)
        assert np.max(np.abs(x)) == pytest.approx(3.0, rel=1e-3)

    def test_frequency(self):
        x = tone(5_000.0, 0.5, FS)
        spec = np.abs(np.fft.rfft(x))
        f = np.fft.rfftfreq(len(x), 1 / FS)
        assert f[np.argmax(spec)] == pytest.approx(5_000.0, abs=5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            tone(0.0, 1.0, FS)
        with pytest.raises(ValueError):
            tone(1_000.0, -1.0, FS)


class TestUpconvertChips:
    def test_exact_total_length(self):
        out = upconvert_chips(np.ones(7), 3_000.0, FS)
        assert len(out) == round(7 * FS / 3_000.0)

    def test_values_held(self):
        out = upconvert_chips([1.0, -1.0], 1_000.0, FS)
        assert np.all(out[:96] == 1.0)
        assert np.all(out[96:] == -1.0)

    def test_fractional_chip_lengths_accumulate(self):
        # 96000 / 7000 = 13.71... samples per chip; totals must stay exact.
        out = upconvert_chips(np.arange(70), 7_000.0, FS)
        assert len(out) == round(70 * FS / 7_000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            upconvert_chips(np.ones(3), 0.0, FS)
        with pytest.raises(ValueError):
            upconvert_chips(np.ones(3), 2 * FS, FS)

    def test_empty(self):
        assert len(upconvert_chips([], 1_000.0, FS)) == 0


class TestDownconvert:
    def test_recovers_envelope(self):
        f = 15_000.0
        env = np.concatenate([np.ones(4800), 0.5 * np.ones(4800)])
        x = amplitude_modulated_carrier(env, f, FS)
        bb = butter_lowpass(downconvert(x, f, FS), 2_000.0, FS)
        mid1 = np.abs(bb[1000:3000]).mean()
        mid2 = np.abs(bb[6000:8000]).mean()
        assert mid1 == pytest.approx(1.0, rel=0.02)
        assert mid2 == pytest.approx(0.5, rel=0.02)

    def test_offset_appears_as_rotation(self):
        f = 15_000.0
        x = tone(f + 5.0, 0.2, FS)
        bb = butter_lowpass(downconvert(x, f, FS), 1_000.0, FS)
        phases = np.unwrap(np.angle(bb[2000:-2000]))
        slope = np.polyfit(np.arange(len(phases)) / FS, phases, 1)[0]
        assert slope / (2 * np.pi) == pytest.approx(5.0, abs=0.2)


class TestFilters:
    def test_lowpass_kills_high_frequency(self):
        x = tone(1_000.0, 0.2, FS) + tone(20_000.0, 0.2, FS)
        y = butter_lowpass(x, 5_000.0, FS)
        spec = np.abs(np.fft.rfft(y))
        f = np.fft.rfftfreq(len(y), 1 / FS)
        low = spec[np.argmin(np.abs(f - 1_000.0))]
        high = spec[np.argmin(np.abs(f - 20_000.0))]
        assert low / high > 100.0

    def test_bandpass_selects_channel(self):
        x = tone(15_000.0, 0.2, FS) + tone(18_000.0, 0.2, FS)
        y = butter_bandpass(x, 14_000.0, 16_000.0, FS)
        spec = np.abs(np.fft.rfft(y))
        f = np.fft.rfftfreq(len(y), 1 / FS)
        in_band = spec[np.argmin(np.abs(f - 15_000.0))]
        out_band = spec[np.argmin(np.abs(f - 18_000.0))]
        assert in_band / out_band > 30.0

    def test_validation(self):
        with pytest.raises(ValueError):
            butter_lowpass(np.ones(100), 0.0, FS)
        with pytest.raises(ValueError):
            butter_lowpass(np.ones(100), FS, FS)
        with pytest.raises(ValueError):
            butter_bandpass(np.ones(100), 5_000.0, 1_000.0, FS)

    def test_complex_input(self):
        x = np.exp(2j * np.pi * 1_000.0 * np.arange(9600) / FS)
        y = butter_lowpass(x, 3_000.0, FS)
        assert np.iscomplexobj(y)
        assert np.abs(y[4800]) == pytest.approx(1.0, rel=0.05)


class TestEnvelopeDetect:
    def test_constant_tone(self):
        x = tone(15_000.0, 0.1, FS, amplitude=2.0)
        env = envelope_detect(x, 15_000.0, FS)
        mid = env[len(env) // 4 : -len(env) // 4]
        assert np.mean(mid) == pytest.approx(2.0, rel=0.05)

    def test_tracks_amplitude_steps(self):
        env_in = np.concatenate([np.ones(9600), np.zeros(9600), np.ones(9600)])
        x = amplitude_modulated_carrier(env_in, 15_000.0, FS)
        env = envelope_detect(x, 15_000.0, FS)
        assert np.mean(env[2000:7000]) > 0.8
        assert np.mean(env[11000:17000]) < 0.2


class TestDecimate:
    def test_rate_and_length(self):
        x = tone(100.0, 1.0, FS)
        y, rate = decimate_to_rate(x, FS, 8_000.0)
        assert rate == pytest.approx(8_000.0)
        assert len(y) == pytest.approx(len(x) / 12, abs=2)

    def test_no_op_when_target_above_rate(self):
        x = np.ones(100)
        y, rate = decimate_to_rate(x, FS, 2 * FS)
        assert rate == FS
        np.testing.assert_array_equal(x, y)


class TestMatchedFilterChip:
    def test_recovers_chip_means(self):
        chips = np.array([1.0, -1.0, 1.0])
        x = upconvert_chips(chips, 1_000.0, FS)
        filtered = matched_filter_chip(x, 96)
        # Sample at chip centres.
        centres = (np.arange(3) * 96 + 48).astype(int)
        np.testing.assert_allclose(filtered[centres], chips, atol=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            matched_filter_chip(np.ones(10), 0)
