"""Tests for synchronisation and the full demodulator."""

import numpy as np
import pytest

from repro.dsp import (
    BackscatterDemodulator,
    Packet,
    correct_cfo,
    detect_packet,
    estimate_cfo,
    fm0_encode,
    tone,
)
from repro.dsp.sync import preamble_template
from repro.dsp.waveforms import upconvert_chips

FS = 96_000.0
CARRIER = 15_000.0
BITRATE = 1_000.0


def synth_backscatter(
    packet: Packet,
    *,
    carrier_amp=1.0,
    mod_amp=0.1,
    mod_phase=0.7,
    noise=0.0,
    cfo=0.0,
    pad_s=0.01,
    seed=0,
    bitrate=BITRATE,
):
    """Synthetic hydrophone recording: carrier + backscatter + noise."""
    chips = fm0_encode(packet.to_bits()).astype(float)
    m = upconvert_chips(chips, 2 * bitrate, FS)
    pad = np.zeros(int(pad_s * FS))
    m = np.concatenate([pad, m, pad])
    t = np.arange(len(m)) / FS
    f = CARRIER + cfo
    y = carrier_amp * np.sin(2 * np.pi * f * t)
    y += mod_amp * m * np.sin(2 * np.pi * f * t + mod_phase)
    if noise > 0:
        y += np.random.default_rng(seed).normal(0, noise, len(y))
    return y


class TestCFO:
    def test_estimate_pure_offset(self):
        bb = np.exp(2j * np.pi * 3.0 * np.arange(int(FS)) / FS)
        assert estimate_cfo(bb, FS) == pytest.approx(3.0, abs=0.01)

    def test_correct_removes_rotation(self):
        bb = np.exp(2j * np.pi * 3.0 * np.arange(int(FS)) / FS)
        fixed = correct_cfo(bb, 3.0, FS)
        assert np.std(np.angle(fixed)) < 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_cfo(np.ones(5), FS, lag_s=1.0)
        with pytest.raises(ValueError):
            estimate_cfo(np.ones(100), 0.0)


class TestDetection:
    def test_finds_preamble_position(self):
        preamble = (1, 1, 1, 0, 1, 0, 0, 1, 0)
        template = preamble_template(preamble, 2 * BITRATE, FS)
        offset = 1234
        x = np.concatenate(
            [np.zeros(offset), template, np.zeros(500)]
        ) + np.random.default_rng(1).normal(0, 0.05, offset + len(template) + 500)
        det = detect_packet(x, preamble, 2 * BITRATE, FS)
        assert det is not None
        assert det.start_index == pytest.approx(offset, abs=3)
        assert not det.inverted

    def test_detects_inverted_polarity(self):
        preamble = (1, 1, 1, 0, 1, 0, 0, 1, 0)
        template = preamble_template(preamble, 2 * BITRATE, FS)
        x = np.concatenate([np.zeros(700), -template, np.zeros(300)])
        det = detect_packet(x, preamble, 2 * BITRATE, FS)
        assert det is not None and det.inverted

    def test_none_on_noise(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0, 1.0, 5000)
        det = detect_packet(x, (1, 1, 1, 0, 1, 0, 0, 1, 0), 2 * BITRATE, FS,
                            threshold=0.9)
        assert det is None

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            detect_packet(np.zeros(10), (1, 0, 1, 1, 0), 2 * BITRATE, FS)


class TestDemodulator:
    def test_clean_roundtrip(self):
        p = Packet(address=7, payload=b"sensor data 123")
        y = synth_backscatter(p, noise=0.01)
        res = BackscatterDemodulator(CARRIER, BITRATE, FS).demodulate(y)
        assert res.success
        assert res.packet == p

    def test_cfo_estimated_and_tolerated(self):
        p = Packet(address=1, payload=b"abcdef")
        y = synth_backscatter(p, cfo=0.8, noise=0.01)
        res = BackscatterDemodulator(CARRIER, BITRATE, FS).demodulate(y)
        assert res.success
        assert res.cfo_hz == pytest.approx(0.8, abs=0.05)

    def test_snr_decreases_with_noise(self):
        p = Packet(address=1, payload=b"abcdef")
        quiet = BackscatterDemodulator(CARRIER, BITRATE, FS).demodulate(
            synth_backscatter(p, noise=0.005)
        )
        loud = BackscatterDemodulator(CARRIER, BITRATE, FS).demodulate(
            synth_backscatter(p, noise=0.05)
        )
        assert quiet.success
        assert quiet.snr_db > loud.snr_db

    def test_fails_gracefully_on_pure_noise(self):
        rng = np.random.default_rng(5)
        y = rng.normal(0, 1.0, int(0.2 * FS))
        dem = BackscatterDemodulator(CARRIER, BITRATE, FS, detection_threshold=0.9)
        res = dem.demodulate(y)
        assert not res.success
        assert res.error is not None

    def test_crc_guards_against_heavy_noise(self):
        """Under crushing noise the demodulator must either fail cleanly
        or produce a correct packet — never a silently corrupted one."""
        p = Packet(address=3, payload=b"important")
        for seed in range(5):
            y = synth_backscatter(p, noise=1.0, seed=seed)
            res = BackscatterDemodulator(CARRIER, BITRATE, FS).demodulate(y)
            if res.success:
                assert res.packet == p

    def test_different_bitrates(self):
        for bitrate in (200.0, 500.0, 2_000.0):
            p = Packet(address=2, payload=b"xy")
            y = synth_backscatter(p, bitrate=bitrate, noise=0.01)
            res = BackscatterDemodulator(CARRIER, bitrate, FS).demodulate(y)
            assert res.success, f"failed at {bitrate} bps"

    def test_inverted_modulation_decodes(self):
        p = Packet(address=9, payload=b"flip")
        y = synth_backscatter(p, mod_amp=-0.1)
        res = BackscatterDemodulator(CARRIER, BITRATE, FS).demodulate(y)
        assert res.success
        assert res.packet == p

    def test_validation(self):
        with pytest.raises(ValueError):
            BackscatterDemodulator(0.0, BITRATE, FS)
        with pytest.raises(ValueError):
            BackscatterDemodulator(CARRIER, 50_000.0, FS)
