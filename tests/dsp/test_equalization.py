"""Tests for chip equalisation, MIMO equalisation, and phase tracking."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp import BackscatterDemodulator, Packet, fm0_encode
from repro.dsp.fm0 import fm0_expected_chips, fm0_ml_decode
from repro.dsp.metrics import sinr_db, snr_db
from repro.dsp.mimo import mimo_equalize
from repro.dsp.waveforms import upconvert_chips

FS = 96_000.0
CARRIER = 15_000.0
BITRATE = 1_000.0


def make_dem(**kw):
    return BackscatterDemodulator(CARRIER, BITRATE, FS, **kw)


class TestChipEqualizer:
    def equalize(self, rx, training, **kw):
        return BackscatterDemodulator.equalize_chips(rx, training, **kw)

    def test_identity_channel_preserved(self):
        rng = np.random.default_rng(0)
        chips = rng.choice([-1.0, 1.0], 200)
        out = self.equalize(chips, chips[:40])
        assert snr_db(out, chips) > 20.0

    def test_removes_two_tap_isi(self):
        rng = np.random.default_rng(1)
        chips = rng.choice([-1.0, 1.0], 400)
        # Channel: strong post-cursor echo.
        received = chips + 0.6 * np.concatenate([[0.0], chips[:-1]])
        before = snr_db(received, chips)
        after = snr_db(self.equalize(received, chips[:60]), chips)
        assert after > before + 5.0

    def test_learns_polarity_flip(self):
        rng = np.random.default_rng(2)
        chips = rng.choice([-1.0, 1.0], 200)
        out = self.equalize(-chips, chips[:40])
        assert snr_db(out, chips) > 20.0

    def test_short_training_passthrough(self):
        rx = np.arange(10.0)
        out = self.equalize(rx, np.ones(3), taps=7)
        np.testing.assert_array_equal(out, rx)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.equalize(np.ones(20), np.ones(20), taps=4)  # even taps


class TestMimoEqualizer:
    def test_separates_with_isi(self):
        """The scenario scalar zero-forcing cannot handle."""
        rng = np.random.default_rng(3)
        n, train = 500, 80
        x = rng.choice([-1.0, 1.0], size=(2, n))
        h = np.array([[1.0, 0.6], [0.5, 0.9]])
        mixed = h @ x
        # Add one-chip ISI on each stream.
        smeared = mixed + 0.4 * np.concatenate(
            [np.zeros((2, 1)), mixed[:, :-1]], axis=1
        )
        y = smeared + rng.normal(0, 0.05, (2, n))
        separated = mimo_equalize(y, x[:, :train], taps=7)
        for k in range(2):
            assert sinr_db(separated[k], x[k]) > sinr_db(y[k], x[k]) + 5.0

    def test_reduces_to_identity_for_clean_streams(self):
        rng = np.random.default_rng(4)
        x = rng.choice([-1.0, 1.0], size=(2, 300))
        separated = mimo_equalize(x.astype(float), x[:, :60], taps=5)
        for k in range(2):
            assert snr_db(separated[k], x[k]) > 25.0

    def test_complex_streams(self):
        rng = np.random.default_rng(5)
        x = rng.choice([-1.0, 1.0], size=(2, 300))
        h = np.array([[1.0 + 0.2j, 0.5j], [0.4, 0.8 - 0.3j]])
        y = h @ x + 0.02 * (
            rng.normal(size=(2, 300)) + 1j * rng.normal(size=(2, 300))
        )
        separated = mimo_equalize(y, x[:, :60], taps=5)
        assert np.iscomplexobj(separated)
        for k in range(2):
            assert sinr_db(separated[k], x[k]) > 15.0

    def test_validation(self):
        with pytest.raises(ValueError):
            mimo_equalize(np.ones((2, 10)), np.ones((3, 10)))
        with pytest.raises(ValueError):
            mimo_equalize(np.ones((2, 10)), np.ones((2, 10)), taps=2)


def synth_rotating(packet, rotation_hz, *, mod_amp=0.12, noise=0.01, seed=0):
    """Carrier plus a backscatter component whose phase rotates."""
    chips = fm0_encode(packet.to_bits()).astype(float)
    m = upconvert_chips(chips, 2 * BITRATE, FS)
    pad = np.zeros(int(0.01 * FS))
    m = np.concatenate([pad, m, pad])
    t = np.arange(len(m)) / FS
    carrier = np.sin(2 * np.pi * CARRIER * t)
    backscatter = mod_amp * m * np.sin(
        2 * np.pi * (CARRIER + rotation_hz) * t + 0.4
    )
    rng = np.random.default_rng(seed)
    return carrier + backscatter + rng.normal(0, noise, len(m))


class TestPhaseTracking:
    def test_static_channel_unaffected(self):
        p = Packet(address=7, payload=b"static case!")
        res = make_dem().demodulate(synth_rotating(p, 0.0))
        assert res.success

    def test_rotating_backscatter_decodes(self):
        """A relative offset between the direct carrier and the
        backscatter (drifting node) rotates the modulation axis through
        the frame; blockwise tracking follows it."""
        p = Packet(address=7, payload=b"rotating!")
        for rotation in (2.0, 4.0):
            res = make_dem().demodulate(synth_rotating(p, rotation))
            assert res.success, f"failed at {rotation} Hz relative offset"

    def test_tracking_disabled_fails_when_rotating(self):
        """Confirms the tracking is what saves the rotating case."""
        p = Packet(address=7, payload=b"rotating!")
        recording = synth_rotating(p, 4.0)
        dem = make_dem()
        baseband, _cfo = dem.to_baseband(recording)
        fixed_axis = dem.extract_modulation(baseband, track_phase=False)
        tracked = dem.extract_modulation(baseband, track_phase=True)
        template = upconvert_chips(
            fm0_expected_chips(p.to_bits()), 2 * BITRATE, FS
        )

        def best_corr(sig):
            c = np.correlate(sig, template / np.linalg.norm(template), "valid")
            e = np.convolve(sig**2, np.ones(len(template)), "valid")
            return float(np.max(np.abs(c) / np.sqrt(np.maximum(e, 1e-30))))

        assert best_corr(tracked) > best_corr(fixed_axis) + 0.2
