"""Decoder robustness under time-varying (fading) channels."""

import numpy as np
import pytest

from repro.acoustics.fading import FadingProcess
from repro.dsp import BackscatterDemodulator, Packet, fm0_encode
from repro.dsp.waveforms import upconvert_chips

FS = 96_000.0
CARRIER = 15_000.0
BITRATE = 1_000.0


def synth_faded(packet, fading: FadingProcess | None, *, noise=0.01, seed=0):
    """Carrier plus backscatter whose path fades over time."""
    chips = fm0_encode(packet.to_bits()).astype(float)
    m = upconvert_chips(chips, 2 * BITRATE, FS)
    pad = np.zeros(int(0.01 * FS))
    m = np.concatenate([pad, m, pad])
    t = np.arange(len(m)) / FS
    carrier = np.sin(2 * np.pi * CARRIER * t)
    backscatter = 0.12 * m * np.sin(2 * np.pi * CARRIER * t + 0.5)
    if fading is not None:
        backscatter = fading.apply(backscatter, FS)
    rng = np.random.default_rng(seed)
    return carrier + backscatter + rng.normal(0, noise, len(m))


class TestFadingRobustness:
    def test_static_reference(self):
        p = Packet(address=3, payload=b"calm water")
        result = BackscatterDemodulator(CARRIER, BITRATE, FS).demodulate(
            synth_faded(p, None)
        )
        assert result.success

    def test_mild_rician_fading_tolerated(self):
        """Strong specular component (calm surface): the decoder holds."""
        p = Packet(address=3, payload=b"light chop")
        decoded = 0
        for seed in range(4):
            fading = FadingProcess(
                k_factor_db=15.0, coherence_time_s=0.5, seed=seed
            )
            result = BackscatterDemodulator(CARRIER, BITRATE, FS).demodulate(
                synth_faded(p, fading, seed=seed)
            )
            decoded += result.success
        assert decoded >= 3

    def test_deep_rayleigh_fading_hurts(self):
        """With no stable path (rough surface), frames start dying —
        the Sec. 8 challenge quantified."""
        p = Packet(address=3, payload=b"storm")
        mild = 0
        harsh = 0
        for seed in range(6):
            mild += BackscatterDemodulator(CARRIER, BITRATE, FS).demodulate(
                synth_faded(
                    p,
                    FadingProcess(
                        k_factor_db=15.0, coherence_time_s=0.5, seed=seed
                    ),
                    seed=seed,
                )
            ).success
            harsh += BackscatterDemodulator(CARRIER, BITRATE, FS).demodulate(
                synth_faded(
                    p,
                    FadingProcess(
                        k_factor_db=-10.0, coherence_time_s=0.02, seed=seed
                    ),
                    seed=seed,
                )
            ).success
        assert mild > harsh

    def test_outage_analysis_matches_intuition(self):
        """The planning tool: a 10 dB margin survives mild fading with
        low outage but deep Rayleigh with substantial outage."""
        mild = FadingProcess(k_factor_db=12.0, seed=1).outage_probability(10.0)
        rayleigh = FadingProcess(k_factor_db=-30.0, seed=1).outage_probability(
            10.0
        )
        assert mild < 0.02
        assert rayleigh > 0.05
