"""Tests for CRC implementations."""

import pytest
from hypothesis import given, strategies as st

from repro.dsp import append_crc16, check_crc16, crc8, crc16_ccitt


class TestCRC16:
    def test_known_vector(self):
        # CRC-16/CCITT-FALSE("123456789") = 0x29B1 (standard check value).
        assert crc16_ccitt(b"123456789") == 0x29B1

    def test_empty_is_init(self):
        assert crc16_ccitt(b"") == 0xFFFF

    def test_accepts_str(self):
        assert crc16_ccitt("123456789") == 0x29B1

    def test_append_and_check_roundtrip(self):
        frame = append_crc16(b"payload bytes")
        assert check_crc16(frame)

    def test_detects_single_bit_flip(self):
        frame = bytearray(append_crc16(b"payload bytes"))
        frame[3] ^= 0x10
        assert not check_crc16(bytes(frame))

    def test_short_frame_rejected(self):
        assert not check_crc16(b"\x00")

    @given(data=st.binary(max_size=64))
    def test_roundtrip_property(self, data):
        assert check_crc16(append_crc16(data))

    @given(data=st.binary(min_size=1, max_size=64), bit=st.integers(0, 7))
    def test_any_corruption_in_first_byte_detected(self, data, bit):
        frame = bytearray(append_crc16(data))
        frame[0] ^= 1 << bit
        assert not check_crc16(bytes(frame))


class TestCRC8:
    def test_known_vector(self):
        # CRC-8 (poly 0x07, init 0) of "123456789" = 0xF4.
        assert crc8(b"123456789") == 0xF4

    def test_range(self):
        assert 0 <= crc8(b"x") <= 0xFF

    @given(data=st.binary(max_size=32))
    def test_deterministic(self, data):
        assert crc8(data) == crc8(data)
