"""Tests for Hamming(7,4) coding and interleaving."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.coding import (
    coded_length,
    deinterleave,
    hamming74_decode,
    hamming74_encode,
    interleave,
    protect,
    recover,
)

bit_lists = st.lists(st.integers(0, 1), min_size=0, max_size=64)


class TestHamming:
    @given(bits=bit_lists)
    def test_roundtrip_clean(self, bits):
        coded = hamming74_encode(bits)
        decoded, corrected = hamming74_decode(coded)
        assert corrected == 0
        padded = len(bits) + ((-len(bits)) % 4)
        np.testing.assert_array_equal(decoded[: len(bits)], bits)
        assert len(decoded) == padded

    def test_corrects_single_error_per_block(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 2, 40)
        coded = hamming74_encode(data)
        # Flip one bit in every 7-bit block.
        for block in range(len(coded) // 7):
            coded[block * 7 + int(rng.integers(0, 7))] ^= 1
        decoded, corrected = hamming74_decode(coded)
        np.testing.assert_array_equal(decoded[: len(data)], data)
        assert corrected == len(coded) // 7

    def test_two_errors_in_block_not_corrected(self):
        data = np.array([1, 0, 1, 1])
        coded = hamming74_encode(data)
        coded[0] ^= 1
        coded[3] ^= 1
        decoded, _ = hamming74_decode(coded)
        assert not np.array_equal(decoded, data)  # SEC code, as expected

    def test_rate(self):
        assert len(hamming74_encode(np.zeros(40))) == 70

    def test_validation(self):
        with pytest.raises(ValueError):
            hamming74_decode(np.zeros(10))
        with pytest.raises(ValueError):
            hamming74_encode([2])


class TestInterleaver:
    @given(bits=bit_lists, depth=st.integers(1, 12))
    def test_roundtrip(self, bits, depth):
        inter = interleave(bits, depth)
        restored = deinterleave(inter, depth, len(bits))
        np.testing.assert_array_equal(restored, bits)

    def test_spreads_bursts(self):
        """A burst of `depth` adjacent errors lands in distinct blocks."""
        depth = 7
        data = np.zeros(70, dtype=np.int8)
        inter = interleave(data, depth)
        inter[10 : 10 + depth] ^= 1  # a burst
        restored = deinterleave(inter, depth, len(data))
        error_positions = np.nonzero(restored != data)[0]
        blocks = {int(p) // 7 for p in error_positions}
        assert len(blocks) == len(error_positions)  # one error per block

    def test_validation(self):
        with pytest.raises(ValueError):
            interleave([1, 0], 0)
        with pytest.raises(ValueError):
            deinterleave([1, 0, 1], 2, 2)
        with pytest.raises(ValueError):
            deinterleave([1, 0], 1, 5)


class TestProtectRecover:
    @given(bits=bit_lists)
    @settings(max_examples=40)
    def test_roundtrip(self, bits):
        channel = protect(bits)
        decoded, corrected = recover(channel, data_bits=len(bits))
        assert corrected == 0
        np.testing.assert_array_equal(decoded, bits)

    def test_burst_error_repaired(self):
        """The pipeline's point: interleaving turns one channel burst
        into correctable single errors."""
        rng = np.random.default_rng(1)
        data = rng.integers(0, 2, 64)
        channel = protect(data, depth=8)
        channel = channel.copy()
        channel[20:26] ^= 1  # 6-bit burst
        decoded, corrected = recover(channel, depth=8, data_bits=len(data))
        np.testing.assert_array_equal(decoded, data)
        assert corrected >= 6

    def test_coded_length_matches(self):
        for n in (0, 4, 5, 31, 64):
            assert len(protect(np.zeros(n, dtype=np.int8))) == coded_length(n)

    def test_validation(self):
        with pytest.raises(ValueError):
            coded_length(-1)
        with pytest.raises(ValueError):
            recover(protect([1, 0, 1, 1]), data_bits=1_000)


class TestCodedVsUncodedBer:
    def test_fec_beats_uncoded_at_moderate_ber(self):
        """At ~2% channel BER, Hamming-coded payloads come out far
        cleaner than uncoded ones."""
        rng = np.random.default_rng(2)
        n = 4_000
        data = rng.integers(0, 2, n)
        p_flip = 0.02

        uncoded = data ^ (rng.random(n) < p_flip)
        uncoded_errors = int(np.sum(uncoded != data))

        channel = protect(data, depth=8)
        noisy = channel ^ (rng.random(len(channel)) < p_flip).astype(np.int8)
        decoded, _ = recover(noisy, depth=8, data_bits=n)
        coded_errors = int(np.sum(decoded != data))
        assert coded_errors < uncoded_errors / 3
