"""Tests for spectral analysis utilities."""

import numpy as np
import pytest

from repro.dsp import fm0_encode, tone
from repro.dsp.spectral import (
    band_power_db,
    band_snr_db,
    occupied_bandwidth,
    peak_frequency,
    spectrogram,
    symbol_timing_estimate,
    welch_psd,
)
from repro.dsp.waveforms import upconvert_chips

FS = 96_000.0


class TestWelch:
    def test_tone_peak_location(self):
        x = tone(15_000.0, 0.5, FS)
        assert peak_frequency(x, FS) == pytest.approx(15_000.0, abs=100.0)

    def test_psd_units(self):
        """Total integrated PSD equals the mean-square value."""
        rng = np.random.default_rng(0)
        x = rng.normal(0, 2.0, 200_000)
        freqs, psd = welch_psd(x, FS)
        total = float(np.trapezoid(psd, freqs))
        assert total == pytest.approx(4.0, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            welch_psd(np.ones((2, 2)), FS)
        with pytest.raises(ValueError):
            welch_psd(np.ones(100), 0.0)


class TestSpectrogram:
    def test_shapes(self):
        x = tone(10_000.0, 0.5, FS)
        freqs, times, power = spectrogram(x, FS)
        assert power.shape == (len(freqs), len(times))

    def test_chirp_visible(self):
        t = np.arange(int(FS * 0.5)) / FS
        x = np.sin(2 * np.pi * (5_000.0 + 20_000.0 * t) * t)
        freqs, times, power = spectrogram(x, FS)
        first_peak = freqs[np.argmax(power[:, 0])]
        last_peak = freqs[np.argmax(power[:, -1])]
        assert last_peak > first_peak + 5_000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            spectrogram(np.ones(100), FS, overlap=1.5)


class TestOccupiedBandwidth:
    def test_tone_is_narrow(self):
        x = tone(15_000.0, 1.0, FS)
        assert occupied_bandwidth(x, FS) < 500.0

    def test_backscatter_bandwidth_grows_with_bitrate(self):
        """The physical root of Fig. 8: faster chips occupy more band."""
        rng = np.random.default_rng(1)

        def modulated(bitrate):
            chips = fm0_encode(rng.integers(0, 2, 400)).astype(float)
            m = upconvert_chips(chips * 2.0 - 1.0, 2 * bitrate, FS)
            t = np.arange(len(m)) / FS
            return m * np.sin(2 * np.pi * 15_000.0 * t)

        slow = occupied_bandwidth(modulated(500.0), FS, fraction=0.9)
        fast = occupied_bandwidth(modulated(4_000.0), FS, fraction=0.9)
        assert fast > 2.0 * slow

    def test_validation(self):
        with pytest.raises(ValueError):
            occupied_bandwidth(np.ones(100), FS, fraction=1.5)


class TestBandPower:
    def test_in_band_vs_out_of_band(self):
        x = tone(15_000.0, 0.5, FS)
        in_band = band_power_db(x, FS, 14_000.0, 16_000.0)
        out_band = band_power_db(x, FS, 30_000.0, 40_000.0)
        assert in_band > out_band + 30.0

    def test_validation(self):
        with pytest.raises(ValueError):
            band_power_db(np.ones(100), FS, 5_000.0, 1_000.0)


class TestBandSnr:
    def test_tone_in_band_is_positive(self):
        x = tone(15_000.0, 0.5, FS) + 0.01 * np.random.default_rng(0).normal(
            0, 1, int(FS * 0.5)
        )
        assert band_snr_db(x, FS, 14_000.0, 16_000.0) > 20.0

    def test_tone_out_of_band_is_negative(self):
        x = tone(15_000.0, 0.5, FS) + 0.01 * np.random.default_rng(0).normal(
            0, 1, int(FS * 0.5)
        )
        assert band_snr_db(x, FS, 30_000.0, 40_000.0) < 0.0

    def test_white_noise_near_zero(self):
        x = np.random.default_rng(2).normal(0, 1.0, 100_000)
        assert abs(band_snr_db(x, FS, 10_000.0, 20_000.0)) < 3.0

    def test_degenerate_band_is_nan(self):
        x = tone(15_000.0, 0.2, FS)
        # Band covers the whole spectrum: no out-of-band reference.
        assert np.isnan(band_snr_db(x, FS, 0.0, FS))

    def test_validation(self):
        with pytest.raises(ValueError):
            band_snr_db(np.ones(1000), FS, 5_000.0, 1_000.0)


class TestSymbolTiming:
    CHIP_RATE = 2_000.0

    def _chip_wave(self, offset_samples=0, n_chips=200, seed=0):
        """A band-limited bipolar chip waveform (as the receive chain sees).

        The squaring estimator needs rounded chip transitions — see the
        rectangular caveat test below — so smooth with a half-chip Hann
        window, mimicking the pipeline's band-limited modulation.
        """
        rng = np.random.default_rng(seed)
        chips = rng.integers(0, 2, n_chips).astype(float) * 2.0 - 1.0
        wave = upconvert_chips(chips, self.CHIP_RATE, FS)
        spc = int(FS / self.CHIP_RATE)
        kernel = np.hanning(spc // 2)
        wave = np.convolve(wave, kernel / kernel.sum(), mode="same")
        if offset_samples:
            wave = np.concatenate([np.zeros(offset_samples), wave])
        return wave

    def test_aligned_grid_near_zero_offset(self):
        est = symbol_timing_estimate(self._chip_wave(), self.CHIP_RATE, FS)
        assert abs(est["timing_offset_chips"]) < 0.1
        assert est["line_strength"] > 0.05

    def test_offset_is_detected(self):
        spc = FS / self.CHIP_RATE  # 48 samples per chip
        est = symbol_timing_estimate(
            self._chip_wave(offset_samples=int(spc // 2)), self.CHIP_RATE, FS
        )
        assert abs(abs(est["timing_offset_chips"]) - 0.5) < 0.1

    def test_offset_sign_tracks_delay(self):
        spc = FS / self.CHIP_RATE
        est = symbol_timing_estimate(
            self._chip_wave(offset_samples=int(spc // 4)), self.CHIP_RATE, FS
        )
        assert est["timing_offset_chips"] == pytest.approx(0.25, abs=0.05)

    def test_rectangular_chips_have_no_line(self):
        # Squaring an ideal +/-1 rectangular waveform gives a constant:
        # there is no chip-rate line to lock to. This is the documented
        # caveat of the squaring method, not a bug.
        rng = np.random.default_rng(0)
        chips = rng.integers(0, 2, 200).astype(float) * 2.0 - 1.0
        rect = upconvert_chips(chips, self.CHIP_RATE, FS)
        est = symbol_timing_estimate(rect, self.CHIP_RATE, FS)
        assert est["line_strength"] < 1e-9

    def test_noise_has_weak_line(self):
        noise = np.random.default_rng(3).normal(0, 1.0, 50_000)
        est = symbol_timing_estimate(noise, self.CHIP_RATE, FS)
        strong = symbol_timing_estimate(
            self._chip_wave(), self.CHIP_RATE, FS
        )
        assert strong["line_strength"] > 10.0 * est["line_strength"]

    def test_short_or_dead_signal_is_nan(self):
        est = symbol_timing_estimate(np.ones(4), self.CHIP_RATE, FS)
        assert np.isnan(est["timing_offset_chips"])
        dead = symbol_timing_estimate(np.zeros(10_000), self.CHIP_RATE, FS)
        assert np.isnan(dead["timing_offset_chips"])
        assert dead["line_strength"] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            symbol_timing_estimate(np.ones((2, 2)), self.CHIP_RATE, FS)
        with pytest.raises(ValueError):
            symbol_timing_estimate(np.ones(100), 0.0, FS)
        with pytest.raises(ValueError):
            symbol_timing_estimate(np.ones(100), FS, FS)  # above Nyquist
