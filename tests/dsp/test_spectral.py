"""Tests for spectral analysis utilities."""

import numpy as np
import pytest

from repro.dsp import fm0_encode, tone
from repro.dsp.spectral import (
    band_power_db,
    occupied_bandwidth,
    peak_frequency,
    spectrogram,
    welch_psd,
)
from repro.dsp.waveforms import upconvert_chips

FS = 96_000.0


class TestWelch:
    def test_tone_peak_location(self):
        x = tone(15_000.0, 0.5, FS)
        assert peak_frequency(x, FS) == pytest.approx(15_000.0, abs=100.0)

    def test_psd_units(self):
        """Total integrated PSD equals the mean-square value."""
        rng = np.random.default_rng(0)
        x = rng.normal(0, 2.0, 200_000)
        freqs, psd = welch_psd(x, FS)
        total = float(np.trapezoid(psd, freqs))
        assert total == pytest.approx(4.0, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            welch_psd(np.ones((2, 2)), FS)
        with pytest.raises(ValueError):
            welch_psd(np.ones(100), 0.0)


class TestSpectrogram:
    def test_shapes(self):
        x = tone(10_000.0, 0.5, FS)
        freqs, times, power = spectrogram(x, FS)
        assert power.shape == (len(freqs), len(times))

    def test_chirp_visible(self):
        t = np.arange(int(FS * 0.5)) / FS
        x = np.sin(2 * np.pi * (5_000.0 + 20_000.0 * t) * t)
        freqs, times, power = spectrogram(x, FS)
        first_peak = freqs[np.argmax(power[:, 0])]
        last_peak = freqs[np.argmax(power[:, -1])]
        assert last_peak > first_peak + 5_000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            spectrogram(np.ones(100), FS, overlap=1.5)


class TestOccupiedBandwidth:
    def test_tone_is_narrow(self):
        x = tone(15_000.0, 1.0, FS)
        assert occupied_bandwidth(x, FS) < 500.0

    def test_backscatter_bandwidth_grows_with_bitrate(self):
        """The physical root of Fig. 8: faster chips occupy more band."""
        rng = np.random.default_rng(1)

        def modulated(bitrate):
            chips = fm0_encode(rng.integers(0, 2, 400)).astype(float)
            m = upconvert_chips(chips * 2.0 - 1.0, 2 * bitrate, FS)
            t = np.arange(len(m)) / FS
            return m * np.sin(2 * np.pi * 15_000.0 * t)

        slow = occupied_bandwidth(modulated(500.0), FS, fraction=0.9)
        fast = occupied_bandwidth(modulated(4_000.0), FS, fraction=0.9)
        assert fast > 2.0 * slow

    def test_validation(self):
        with pytest.raises(ValueError):
            occupied_bandwidth(np.ones(100), FS, fraction=1.5)


class TestBandPower:
    def test_in_band_vs_out_of_band(self):
        x = tone(15_000.0, 0.5, FS)
        in_band = band_power_db(x, FS, 14_000.0, 16_000.0)
        out_band = band_power_db(x, FS, 30_000.0, 40_000.0)
        assert in_band > out_band + 30.0

    def test_validation(self):
        with pytest.raises(ValueError):
            band_power_db(np.ones(100), FS, 5_000.0, 1_000.0)
