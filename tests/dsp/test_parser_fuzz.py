"""Fuzzing the frame and message parsers: garbage in, exceptions out.

Parsers that face the radio must never crash on arbitrary input — they
either return a valid object or raise their declared error type.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.packets import FramingError, Packet
from repro.net.messages import Query, Response
from repro.node.firmware import DOWNLINK_FORMAT, NodeFirmware
from repro.node import FirmwareConfig
from repro.net.addresses import NodeAddress


class TestPacketParserFuzz:
    @given(bits=st.lists(st.integers(0, 1), min_size=0, max_size=300))
    @settings(max_examples=200)
    def test_from_bits_never_crashes(self, bits):
        try:
            packet = Packet.from_bits(np.array(bits, dtype=np.int8))
        except FramingError:
            return
        # If parsing succeeded, the result must re-serialise consistently.
        assert 0 <= packet.address <= 0xFF
        reparsed = Packet.from_bits(packet.to_bits())
        assert reparsed == packet

    @given(data=st.binary(max_size=40))
    @settings(max_examples=100)
    def test_query_from_packet_never_crashes(self, data):
        packet = Packet(address=1, payload=data)
        try:
            query = Query.from_packet(packet)
        except ValueError:
            return
        assert 0 <= query.argument <= 0xFF

    @given(data=st.binary(max_size=40))
    @settings(max_examples=100)
    def test_response_from_packet_never_crashes(self, data):
        packet = Packet(address=1, payload=data)
        try:
            response = Response.from_packet(packet)
        except ValueError:
            return
        # reading() may legitimately reject non-sensor commands/payloads,
        # but only with ValueError.
        try:
            response.reading()
        except ValueError:
            pass


class TestFirmwareParserFuzz:
    @given(bits=st.lists(st.integers(0, 1), min_size=0, max_size=200))
    @settings(max_examples=100)
    def test_parse_query_bits_never_crashes(self, bits):
        fw = NodeFirmware(FirmwareConfig(address=NodeAddress(7)))
        fw.boot()
        result = fw.parse_query_bits(np.array(bits, dtype=np.int8))
        assert result is None or result.destination in range(256)

    @given(
        samples=st.lists(
            st.floats(-10.0, 10.0, allow_nan=False), min_size=0, max_size=400
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_decode_downlink_envelope_never_crashes(self, samples):
        fw = NodeFirmware(FirmwareConfig(address=NodeAddress(7)))
        fw.boot()
        result = fw.decode_downlink_envelope(np.array(samples), 96_000.0)
        assert result is None or isinstance(result, Query)
