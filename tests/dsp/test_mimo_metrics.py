"""Tests for collision decoding and link metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp import (
    bit_error_rate,
    ebn0_from_snr_db,
    estimate_channel_matrix,
    sinr_db,
    snr_db,
    zero_forcing_decode,
)
from repro.dsp.metrics import eye_opening_stats, theoretical_fm0_ber
from repro.dsp.mimo import sinr_gain_db


def make_collision(seed=0, h=None, noise=0.05, n=400, train=64):
    """Two chip streams mixed through a 2x2 channel."""
    rng = np.random.default_rng(seed)
    x = rng.choice([-1.0, 1.0], size=(2, n))
    # Near-orthogonal training prefixes.
    x[0, :train] = np.tile([1, -1], train // 2)
    x[1, :train] = np.tile([1, 1, -1, -1], train // 4)
    if h is None:
        h = np.array([[1.0, 0.35], [0.3, 0.9]])
    y = h @ x + rng.normal(0, noise, (2, n))
    return x, y, h, train


class TestChannelEstimation:
    def test_recovers_channel(self):
        x, y, h, train = make_collision()
        h_est = estimate_channel_matrix(y[:, :train], x[:, :train])
        np.testing.assert_allclose(h_est, h, atol=0.05)

    def test_rejects_parallel_training(self):
        x = np.ones((2, 32))
        y = np.ones((2, 32))
        with pytest.raises(ValueError):
            estimate_channel_matrix(y, x)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            estimate_channel_matrix(np.ones(4), np.ones(4))
        with pytest.raises(ValueError):
            estimate_channel_matrix(np.ones((2, 8)), np.ones((3, 8)))


class TestZeroForcing:
    def test_separates_streams(self):
        x, y, h, train = make_collision()
        result = zero_forcing_decode(y, h)
        errors = np.sum(np.sign(result.separated) != x)
        assert errors / x.size < 0.01

    def test_sinr_improves(self):
        """The headline Fig. 10 behaviour: projection lifts SINR."""
        x, y, h, train = make_collision(noise=0.1)
        result = zero_forcing_decode(y, h)
        gain = sinr_gain_db(y[0], result.separated[0], x[0])
        assert gain > 3.0

    def test_rejects_singular_channel(self):
        y = np.ones((2, 10))
        h = np.array([[1.0, 1.0], [1.0, 1.0]])
        with pytest.raises(ValueError):
            zero_forcing_decode(y, h)

    def test_condition_number_reported(self):
        x, y, h, train = make_collision()
        result = zero_forcing_decode(y, h)
        assert result.condition_number == pytest.approx(np.linalg.cond(h))

    @settings(max_examples=20)
    @given(seed=st.integers(0, 1000))
    def test_roundtrip_noiseless(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.choice([-1.0, 1.0], size=(2, 64))
        h = np.array([[1.0, 0.4], [0.25, 0.8]])
        result = zero_forcing_decode(h @ x, h)
        np.testing.assert_allclose(result.separated, x, atol=1e-9)


class TestMetrics:
    def test_snr_of_clean_signal_high(self):
        ref = np.tile([1.0, -1.0], 100)
        assert snr_db(2.0 * ref, ref) == float("inf")

    def test_snr_known_value(self):
        rng = np.random.default_rng(0)
        ref = rng.choice([-1.0, 1.0], 100_000)
        rx = ref + rng.normal(0, 0.5, len(ref))
        # SNR = 1 / 0.25 = 6 dB.
        assert snr_db(rx, ref) == pytest.approx(6.0, abs=0.2)

    def test_sinr_includes_interference(self):
        rng = np.random.default_rng(1)
        ref = rng.choice([-1.0, 1.0], 50_000)
        interferer = rng.choice([-1.0, 1.0], 50_000)
        clean = snr_db(ref + 0.1 * rng.normal(size=50_000), ref)
        jammed = sinr_db(
            ref + 0.5 * interferer + 0.1 * rng.normal(size=50_000), ref
        )
        assert jammed < clean

    def test_ber_counts(self):
        assert bit_error_rate([0, 1, 1, 0], [0, 1, 0, 0]) == 0.25
        assert bit_error_rate([0, 1], [0, 1]) == 0.0

    def test_ber_penalises_missing_bits(self):
        assert bit_error_rate([0, 1], [0, 1, 1, 1]) == 0.5

    def test_ber_validation(self):
        with pytest.raises(ValueError):
            bit_error_rate([], [])

    def test_ebn0_conversion(self):
        # Bandwidth == bitrate: Eb/N0 equals SNR.
        assert ebn0_from_snr_db(10.0, 1_000.0, 1_000.0) == pytest.approx(10.0)
        assert ebn0_from_snr_db(10.0, 1_000.0, 2_000.0) == pytest.approx(13.01, abs=0.01)

    def test_theoretical_ber_monotone(self):
        assert theoretical_fm0_ber(0.0) > theoretical_fm0_ber(6.0) > (
            theoretical_fm0_ber(12.0)
        )

    def test_theoretical_ber_half_at_minus_inf(self):
        assert theoretical_fm0_ber(-60.0) == pytest.approx(0.5, abs=0.01)


class TestEyeOpening:
    def _chips(self, noise_sigma, n=400, seed=0):
        rng = np.random.default_rng(seed)
        rails = rng.integers(0, 2, n).astype(float) * 2.0 - 1.0
        return rails + rng.normal(0.0, noise_sigma, n)

    def test_clean_chips_open_eye(self):
        stats = eye_opening_stats(self._chips(noise_sigma=0.01))
        assert stats["opening"] > 0.9
        assert stats["rail_separation"] == pytest.approx(2.0, abs=0.1)
        assert stats["first_closed_chip"] == -1
        assert stats["closed_fraction"] == 0.0
        assert stats["n_chips"] == 400

    def test_noise_closes_the_eye(self):
        clean = eye_opening_stats(self._chips(noise_sigma=0.05))
        noisy = eye_opening_stats(self._chips(noise_sigma=0.6))
        assert noisy["opening"] < clean["opening"]
        assert noisy["noise_rms"] > clean["noise_rms"]
        assert noisy["closed_fraction"] > 0.0
        assert noisy["first_closed_chip"] >= 0

    def test_one_rail_is_fully_closed(self):
        # All-positive amplitudes: the signal never crosses zero, so
        # there are no rails to separate.
        stats = eye_opening_stats(np.full(32, 0.7))
        assert stats["rail_separation"] == 0.0
        assert stats["opening"] == 0.0
        assert stats["closed_fraction"] == 1.0
        assert stats["first_closed_chip"] == 0

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            eye_opening_stats([])
