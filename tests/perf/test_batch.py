"""Identity tests for the batched PHY engine (``parallel="batch"``).

The engine precomputes waveform work across a window of upcoming
rounds, so every shortcut it takes must collapse to the sequential
arithmetic exactly: the campaign report, event log, and metrics
exposition are compared byte-for-byte (via ``campaign_digest``) against
the plain loop.  The risky paths get their own tests — mid-campaign
``SET_BITRATE``/``SET_RESONANCE_MODE`` churn invalidates window hints,
fault injectors interpose on the transport chain, worker crashes tear
the window down, and checkpoint/resume rebuilds it mid-flight.
"""

import json

import numpy as np
import scipy.fft

from repro.faults import BrownoutInjector, EventLog, NoiseBurstInjector
from repro.net import Command, ReaderController, Response, RetryPolicy
from repro.obs import MetricsRegistry, metrics_to_prometheus
from repro.perf.batch import resolve_link
from repro.perf.kernels import (
    _OVERLAP_ADD_MIN_LEN,
    batched_convolve,
    batched_correlate,
    smart_convolve,
    smart_correlate,
)
from repro.resilience import campaign_digest, checkpoint_path, install_worker_crash

SEED = 5
BITRATE = 2_000.0


def _waveform_transports(n=4, seed=SEED, bitrate=BITRATE, modes=1):
    """Real waveform fleet: per-node geometry and seeded ambient noise.

    ``modes > 1`` gives every node a recto-piezo bank with that many
    resonance channels, so ``SET_RESONANCE_MODE`` churn is a genuine
    waveform change rather than a rejected argument.
    """
    from repro.acoustics import POOL_A, Position
    from repro.acoustics.noise import AmbientNoiseModel
    from repro.core import BackscatterLink, Projector
    from repro.node.node import PABNode
    from repro.piezo import Transducer

    transducer = Transducer.from_cylinder_design()
    f = transducer.resonance_hz
    channels = tuple(f * (1.0 - 0.04 * m) for m in range(modes))
    transports = {}
    for i in range(n):
        addr = 0x30 + i
        projector = Projector(
            transducer=transducer, drive_voltage_v=60.0, carrier_hz=f
        )
        node = PABNode(
            address=addr, channel_frequencies_hz=channels, bitrate=bitrate
        )
        link = BackscatterLink(
            POOL_A,
            projector,
            Position(0.5, 1.5, 0.6),
            node,
            Position(0.9 + 0.07 * i, 1.6, 0.62),
            Position(1.0, 0.8, 0.6),
            noise=AmbientNoiseModel(
                spectrum="flat",
                flat_level_db=35.0,
                seed=9_000 + 100 * seed + addr,
            ),
        )
        transports[addr] = link.run_query
    return transports


def _reader(transports, *, parallel, seed=SEED):
    log = EventLog()
    metrics = MetricsRegistry()
    reader = ReaderController(
        transports,
        retry_policy=RetryPolicy(
            max_retries=1, base_backoff_s=0.0, jitter=0.0, seed=seed
        ),
        log=log,
        metrics=metrics,
        parallel=parallel,
    )
    return reader, log, metrics


def _campaign_digest(parallel, *, rounds=8, n=4, kill_at=None,
                     transports=None):
    """Digest of one fresh-fleet campaign in the given execution mode."""
    if transports is None:
        transports = _waveform_transports(n=n)
    reader, log, metrics = _reader(transports, parallel=parallel)
    if kill_at is not None:
        kill_round, kill_node = kill_at
        install_worker_crash(reader, kill_node, rounds=(kill_round,), crashes=1)
    report = reader.run_campaign(Command.READ_PH, rounds=rounds)
    return campaign_digest(report, log, metrics)


class TestBatchIdentity:
    """``parallel="batch"`` is byte-identical to the sequential loop."""

    def test_batch_matches_sequential_and_threads(self):
        sequential = _campaign_digest(0)
        assert _campaign_digest("batch") == sequential
        assert _campaign_digest(2) == sequential

    def test_worker_crash_containment_identical(self):
        """A contained worker crash mid-window tears the plan down;
        the containment telemetry must still match the plain loop."""
        addr = 0x30 + 1
        sequential = _campaign_digest(0, n=3, kill_at=(4, addr))
        assert _campaign_digest("batch", n=3, kill_at=(4, addr)) == sequential


def _injected_campaign_blob(parallel, *, rounds=12, n=4, seed=SEED):
    """Fault injectors between the MAC and the waveform links.

    The injector chain holds the shared event log (like the chaos
    fleets in ``repro fleet-report``), and the batch engine must
    resolve links *through* the chain without disturbing when each
    injector fires.
    """
    log = EventLog()
    metrics = MetricsRegistry()
    transports = {}
    for addr, transact in sorted(_waveform_transports(n=n).items()):
        if addr % 2:
            transact = NoiseBurstInjector(
                transact, start=2, duration=4, node=addr, log=log,
                seed=seed + addr,
            )
        else:
            transact = BrownoutInjector(
                transact, at=5, dark_for=4, node=addr, log=log,
                seed=seed + addr,
            )
        transports[addr] = transact
    reader = ReaderController(
        transports,
        retry_policy=RetryPolicy(
            max_retries=1, base_backoff_s=0.0, jitter=0.0, seed=seed
        ),
        log=log,
        metrics=metrics,
        parallel=parallel,
    )
    report = reader.run_campaign(Command.READ_PH, rounds=rounds)
    return (
        json.dumps(report, sort_keys=True, default=str)
        + "\n" + log.dump()
        + "\n" + metrics_to_prometheus(metrics)
    )


class TestBatchInjectorIdentity:
    def test_injected_faults_identical(self):
        sequential = _injected_campaign_blob(0)
        assert "injector=" in sequential  # the chaos actually fired
        assert _injected_campaign_blob("batch") == sequential


def _churn_blob(parallel, *, rounds=12, seed=SEED):
    """Campaign with live reconfiguration between rounds.

    ``SET_BITRATE`` changes the uplink leg memo key and the demod
    parameters for every hint the engine planned ahead;
    ``SET_RESONANCE_MODE`` changes the reflection states behind the
    carrier leg.  Both must invalidate cleanly — the engine may only
    lose speed, never bits.
    """
    transports = _waveform_transports(n=3, modes=2)
    addrs = sorted(transports)
    reader, log, metrics = _reader(transports, parallel=parallel, seed=seed)
    rows = []
    for rnd in range(rounds):
        if rnd == 3:
            rows.append({"set_bitrate": reader.set_bitrate(addrs[0], 1_000.0)})
        if rnd == 5:
            rows.append({"set_mode": reader.set_resonance_mode(addrs[1], 1)})
        if rnd == 8:
            rows.append({
                "set_bitrate": reader.set_bitrate(addrs[0], BITRATE),
                "set_mode": reader.set_resonance_mode(addrs[1], 0),
            })
        rows.append(reader.poll_round(Command.READ_PH))
    return (
        json.dumps(rows, sort_keys=True, default=str)
        + "\n" + log.dump()
        + "\n" + metrics_to_prometheus(metrics)
    )


class TestBatchReconfigurationIdentity:
    def test_mid_campaign_bitrate_and_mode_churn_identical(self):
        sequential = _churn_blob(0)
        # The reconfigurations actually took effect (acked over the
        # real waveform link) — otherwise this test proves nothing.
        assert '"set_bitrate": true' in sequential
        assert '"set_mode": true' in sequential
        assert _churn_blob("batch") == sequential


class TestBatchCheckpointResume:
    def test_resume_into_batch_mode_matches_clean(self, tmp_path):
        """Checkpoint sequentially, resume batched: the engine starts
        with an empty window mid-campaign and must still replay the
        remaining rounds bit-for-bit."""
        clean = _campaign_digest(0, rounds=10, n=3)
        reader, _, _ = _reader(_waveform_transports(n=3), parallel=0)
        reader.run_campaign(
            Command.READ_PH, rounds=10,
            checkpoint_every=4, checkpoint_dir=tmp_path,
        )
        twin, tlog, tmetrics = _reader(
            _waveform_transports(n=3), parallel="batch"
        )
        report = twin.run_campaign(
            Command.READ_PH, rounds=10,
            resume_from=checkpoint_path(tmp_path, 4),
        )
        assert campaign_digest(report, tlog, tmetrics) == clean

    def test_checkpoint_in_batch_mode_resumes_sequentially(self, tmp_path):
        clean = _campaign_digest(0, rounds=10, n=3)
        reader, _, _ = _reader(_waveform_transports(n=3), parallel="batch")
        reader.run_campaign(
            Command.READ_PH, rounds=10,
            checkpoint_every=6, checkpoint_dir=tmp_path,
        )
        twin, tlog, tmetrics = _reader(_waveform_transports(n=3), parallel=0)
        report = twin.run_campaign(
            Command.READ_PH, rounds=10,
            resume_from=checkpoint_path(tmp_path, 6),
        )
        assert campaign_digest(report, tlog, tmetrics) == clean


class _StubResult:
    def __init__(self, packet):
        self.success = True
        self.demod = type("Demod", (), {})()
        self.demod.packet = packet
        self.demod.success = True


class _StubTransport:
    """Deterministic waveform-free transport; the engine must skip it."""

    def __init__(self, address):
        self.address = int(address)

    def __call__(self, query):
        raw = int((15.0 + self.address) * 100.0 + 10_000)
        data = bytes([(raw >> 8) & 0xFF, raw & 0xFF])
        response = Response(
            source=self.address, command=query.command, data=data
        )
        return _StubResult(response.to_packet())


class TestEngineEngagement:
    def test_engine_engages_on_waveform_fleet(self):
        reader, _, _ = _reader(_waveform_transports(n=3), parallel="batch")
        reader.run_campaign(Command.READ_PH, rounds=10)
        stats = reader._batch_engine.stats.as_dict()
        assert stats["planned"] > 0
        assert stats["demods_precomputed"] > 0
        assert stats["windows"] >= 1

    def test_retry_surplus_and_hint_carry_over(self):
        """The planner over-provisions for retries and re-adopts
        leftover hints at the next replan — while staying
        byte-identical to the sequential loop."""
        sequential = _campaign_digest(0, rounds=16)
        transports = _waveform_transports(n=4)
        reader, log, metrics = _reader(transports, parallel="batch")
        report = reader.run_campaign(Command.READ_PH, rounds=16)
        assert campaign_digest(report, log, metrics) == sequential
        stats = reader._batch_engine.stats.as_dict()
        assert stats["windows"] >= 2
        assert stats["retries_planned"] > 0
        assert stats["demods_carried"] > 0

    def test_engine_noops_on_stub_fleet(self):
        def blob(parallel):
            log = EventLog()
            metrics = MetricsRegistry()
            reader = ReaderController(
                {a: _StubTransport(a) for a in (1, 2, 3)},
                log=log, metrics=metrics, parallel=parallel,
            )
            report = reader.run_campaign(Command.READ_TEMPERATURE, rounds=6)
            return reader, campaign_digest(report, log, metrics)

        _, sequential = blob(0)
        reader, batched = blob("batch")
        assert batched == sequential
        assert reader._batch_engine.stats.as_dict()["planned"] == 0

    def test_resolve_link_through_injector_chain(self):
        from repro.core import BackscatterLink

        transact = next(iter(_waveform_transports(n=1).values()))
        link = resolve_link(transact)
        assert isinstance(link, BackscatterLink)
        wrapped = NoiseBurstInjector(transact, start=0, duration=1, node=1)
        assert resolve_link(wrapped) is link
        assert resolve_link(_StubTransport(1)) is None
        assert resolve_link(lambda q: None) is None


class TestBatchedKernelIdentity:
    """Row-wise bit-identity of the batched kernels, across the
    strategy-dispatch boundaries they share with the sequential path."""

    def test_fft_regime_matches_per_row(self):
        rng = np.random.default_rng(7)
        xs = rng.normal(size=(5, 9_000))
        kernel = rng.normal(size=768)
        per_row = np.stack([smart_convolve(r, kernel) for r in xs])
        assert np.array_equal(batched_convolve(xs, kernel), per_row)

    def test_overlap_add_regime_matches_per_row(self):
        rng = np.random.default_rng(8)
        xs = rng.normal(size=(3, _OVERLAP_ADD_MIN_LEN))
        kernel = rng.normal(size=512)
        per_row = np.stack([smart_convolve(r, kernel) for r in xs])
        assert np.array_equal(batched_convolve(xs, kernel), per_row)

    def test_direct_regime_matches_per_row(self):
        rng = np.random.default_rng(9)
        xs = rng.normal(size=(4, 200))
        kernel = rng.normal(size=16)
        per_row = np.stack([smart_convolve(r, kernel) for r in xs])
        assert np.array_equal(batched_convolve(xs, kernel), per_row)

    def test_correlate_matches_per_row(self):
        rng = np.random.default_rng(10)
        xs = rng.normal(size=(4, 6_000))
        template = rng.normal(size=384)
        per_row = np.stack(
            [smart_correlate(r, template, mode="valid") for r in xs]
        )
        got = batched_correlate(xs, template, mode="valid")
        assert np.array_equal(got, per_row)

    def test_dispatch_boundary_strategies_agree(self):
        """Either side of ``_OVERLAP_ADD_MIN_LEN`` the two FFT
        strategies compute the same convolution to rounding."""
        rng = np.random.default_rng(11)
        kernel = rng.normal(size=512)
        for n in (_OVERLAP_ADD_MIN_LEN - 1, _OVERLAP_ADD_MIN_LEN):
            x = rng.normal(size=n)
            got = smart_convolve(x, kernel)
            reference = np.convolve(x[: 4_096], kernel)
            np.testing.assert_allclose(
                got[: len(reference) - len(kernel)],
                reference[: len(reference) - len(kernel)],
                rtol=1e-9, atol=1e-9,
            )

    def test_scipy_rfft_bit_identical_to_numpy(self):
        """Both are pocketfft; the engine leans on exact agreement even
        at awkward (prime) transform lengths."""
        rng = np.random.default_rng(12)
        for n in (9_973, 8_192, 12_000):
            x = rng.normal(size=n)
            spectrum = scipy.fft.rfft(x)
            assert np.array_equal(spectrum, np.fft.rfft(x)), n
            assert np.array_equal(
                scipy.fft.irfft(spectrum, n=n), np.fft.irfft(spectrum, n=n)
            ), n

    def test_batched_preamble_correlation_matches_rows(self):
        from repro.dsp.sync import (
            batched_preamble_correlation,
            preamble_correlation,
        )

        rng = np.random.default_rng(13)
        bits = (1, 0, 1, 1, 0, 0, 1, 0)
        chip_rate, fs = 4_000.0, 96_000.0
        rows = rng.normal(size=(4, 6_000))
        batched = batched_preamble_correlation(rows, bits, chip_rate, fs)
        for i, row in enumerate(rows):
            expected = preamble_correlation(row, bits, chip_rate, fs)
            assert np.array_equal(batched[i], expected), i
