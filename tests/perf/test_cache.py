"""Tests for the keyed memoization layer (`repro.perf.cache`)."""

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.perf import (
    LRUCache,
    cache_stats,
    caches_to_metrics,
    caching_disabled,
    clear_all_caches,
    get_cache,
)


class TestLRUCache:
    def test_hit_and_miss_counters(self):
        cache = LRUCache("t_counts", maxsize=4)
        assert cache.get_or_compute("a", lambda: 1) == 1
        assert cache.get_or_compute("a", lambda: 2) == 1  # cached value wins
        assert cache.misses == 1
        assert cache.hits == 1

    def test_eviction_bounds_memory(self):
        cache = LRUCache("t_evict", maxsize=3)
        for i in range(10):
            cache.get_or_compute(i, lambda i=i: i * 2)
        assert len(cache) == 3
        assert cache.evictions == 7
        # Least recently used entries are the ones gone.
        assert cache.get_or_compute(9, lambda: None) == 18
        assert cache.hits == 1

    def test_lru_order_refreshes_on_hit(self):
        cache = LRUCache("t_lru", maxsize=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: None)  # refresh a
        cache.get_or_compute("c", lambda: 3)     # evicts b, not a
        assert cache.get_or_compute("a", lambda: 99) == 1
        assert cache.get_or_compute("b", lambda: 42) == 42  # recomputed

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            LRUCache("t_bad", maxsize=0)

    def test_ndarray_values_are_frozen(self):
        cache = LRUCache("t_freeze", maxsize=2)
        arr = cache.get_or_compute("k", lambda: np.arange(4.0))
        assert not arr.flags.writeable
        with pytest.raises(ValueError):
            arr[0] = 99.0

    def test_tuple_values_freeze_nested_arrays(self):
        cache = LRUCache("t_freeze_tuple", maxsize=2)
        value = cache.get_or_compute("k", lambda: (np.ones(3), 7))
        assert not value[0].flags.writeable

    def test_disabled_bypass_computes_every_time(self):
        cache = LRUCache("t_disabled", maxsize=4)
        calls = []
        with caching_disabled():
            for _ in range(3):
                cache.get_or_compute("k", lambda: calls.append(1))
        assert len(calls) == 3
        assert cache.hits == 0 and cache.misses == 0 and len(cache) == 0

    def test_clear_keeps_counters(self):
        cache = LRUCache("t_clear", maxsize=4)
        cache.get_or_compute("k", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1


class TestRegistry:
    def test_get_cache_returns_same_instance(self):
        a = get_cache("t_registry_same")
        b = get_cache("t_registry_same")
        assert a is b

    def test_maxsize_applies_only_at_creation(self):
        a = get_cache("t_registry_size", maxsize=5)
        b = get_cache("t_registry_size", maxsize=50)
        assert b.maxsize == 5 and a is b

    def test_stats_aggregate_instances_sharing_a_name(self):
        a = LRUCache("t_shared_name", maxsize=2)
        b = LRUCache("t_shared_name", maxsize=2)
        a.get_or_compute("x", lambda: 1)
        a.get_or_compute("x", lambda: 1)
        b.get_or_compute("y", lambda: 2)
        s = cache_stats()["t_shared_name"]
        assert s.hits == 1
        assert s.misses == 2
        assert s.entries == 2

    def test_clear_all_caches(self):
        cache = get_cache("t_clear_all")
        cache.get_or_compute("k", lambda: 1)
        clear_all_caches()
        assert len(cache) == 0

    def test_metrics_export(self):
        cache = LRUCache("t_export", maxsize=1)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)  # evicts a
        registry = MetricsRegistry()
        caches_to_metrics(registry)
        assert registry.value("pab_cache_hits_total", cache="t_export") == 1
        assert registry.value("pab_cache_misses_total", cache="t_export") == 2
        assert registry.value("pab_cache_evictions_total", cache="t_export") == 1
        assert registry.value("pab_cache_entries", cache="t_export") == 1
        assert registry.value("pab_cache_capacity", cache="t_export") == 1

    def test_capacity_gauge_tracks_maxsize_not_fill(self):
        cache = LRUCache("t_capacity", maxsize=8)
        cache.get_or_compute("a", lambda: 1)
        registry = MetricsRegistry()
        caches_to_metrics(registry)
        # entries/capacity is the live fill ratio (1/8 here).
        assert registry.value("pab_cache_capacity", cache="t_capacity") == 8
        assert registry.value("pab_cache_entries", cache="t_capacity") == 1


def _canonical_result(result):
    """Every observable field of a LinkResult, exactly."""
    demod = result.demod
    return (
        result.powered_up,
        result.query_decoded,
        result.success,
        None if demod is None else demod.bits.tobytes(),
        None if demod is None else repr(demod.snr_db),
        repr(result.ber),
        repr(result.snr_db),
    )


class TestCachedTransactIdentity:
    """A cached campaign must be byte-identical to an uncached one."""

    def _run(self, rounds):
        from repro.cli import _build_bench_fleet
        from repro.net.messages import Command, Query

        clear_all_caches()
        transports = _build_bench_fleet(2, seed=7, bitrate=2_000.0)
        out = []
        for _ in range(rounds):
            for addr in sorted(transports):
                query = Query(destination=addr, command=Command.READ_PH)
                out.append(_canonical_result(transports[addr](query)))
        return out

    def test_cached_vs_uncached_bit_identical(self):
        with caching_disabled():
            uncached = self._run(3)
        cached = self._run(3)
        assert cached == uncached
