"""Tests for the parallel fleet engine and the parallel reader mode."""

import json

import numpy as np
import pytest

from repro.faults import EventLog
from repro.net import Command, HealthPolicy, ReaderController, RetryPolicy
from repro.net.mac import MacStats
from repro.node.node import Environment, PABNode
from repro.obs import MetricsRegistry, metrics_to_prometheus
from repro.perf import FleetEngine
from repro.sensing.pressure import WaterColumn


class TestFleetEngine:
    def test_results_in_key_order(self):
        engine = FleetEngine(max_workers=4)
        out = engine.run_round({3: lambda: "c", 1: lambda: "a", 2: lambda: "b"})
        assert out == [(1, "a"), (2, "b"), (3, "c")]

    def test_accepts_item_iterable(self):
        engine = FleetEngine(max_workers=2)
        out = engine.run_round([(2, lambda: 20), (1, lambda: 10)])
        assert out == [(1, 10), (2, 20)]

    def test_empty_round(self):
        assert FleetEngine().run_round({}) == []

    def test_first_error_in_key_order_wins(self):
        def boom(msg):
            def fn():
                raise RuntimeError(msg)
            return fn

        engine = FleetEngine(max_workers=4)
        with pytest.raises(RuntimeError, match="first"):
            engine.run_round({2: boom("second"), 1: boom("first")})

    def test_width_validation(self):
        with pytest.raises(ValueError):
            FleetEngine(max_workers=0)

    def test_shutdown_idempotent(self):
        engine = FleetEngine(max_workers=1)
        engine.run_round({1: lambda: 1})
        engine.shutdown()
        engine.shutdown()
        # The pool is recreated on demand after shutdown.
        assert engine.run_round({1: lambda: 2}) == [(1, 2)]


class TestRetryPolicyForNode:
    def test_seeded_streams_are_per_node_deterministic(self):
        policy = RetryPolicy(base_backoff_s=0.1, jitter=0.5, seed=42)
        a1 = [policy.for_node(3).backoff_s(i) for i in range(4)]
        a2 = [policy.for_node(3).backoff_s(i) for i in range(4)]
        b = [policy.for_node(4).backoff_s(i) for i in range(4)]
        assert a1 == a2
        assert a1 != b

    def test_unseeded_policy_returned_unchanged(self):
        policy = RetryPolicy(base_backoff_s=0.1, jitter=0.5)
        assert policy.for_node(3) is policy


class StubResult:
    def __init__(self, success, packet=None):
        self.success = success

        class D:
            pass

        self.demod = D()
        self.demod.packet = packet


class SeededFlakyTransport:
    """Real firmware, no waveform physics, seeded per-call failures."""

    def __init__(self, address, fail_rate=0.3, seed=0):
        self.node = PABNode(
            address=address,
            environment=Environment(
                water=WaterColumn(depth_m=0.4, temperature_c=19.0),
                true_ph=7.2,
            ),
        )
        self.node.force_power(True)
        self.fail_rate = fail_rate
        self._rng = np.random.default_rng((seed, address))

    def __call__(self, query):
        if self._rng.random() < self.fail_rate:
            return StubResult(False)
        response = self.node.respond(query)
        if response is None:
            return StubResult(False)
        self.node.firmware.response_sent()
        return StubResult(True, response.to_packet())


def _campaign_blob(parallel, *, rounds=12, n=6, seed=11):
    log = EventLog()
    metrics = MetricsRegistry()
    reader = ReaderController(
        {a: SeededFlakyTransport(a, seed=seed) for a in range(1, n + 1)},
        retry_policy=RetryPolicy(
            max_retries=2, base_backoff_s=0.05, jitter=0.25, seed=seed
        ),
        health_policy=HealthPolicy(
            degrade_after=2, quarantine_after=4, recover_after=2,
            probe_backoff_rounds=2,
        ),
        log=log,
        metrics=metrics,
        parallel=parallel,
    )
    report = reader.run_campaign(Command.READ_PH, rounds=rounds)
    return (
        json.dumps(report, sort_keys=True, default=str)
        + "\n" + log.dump()
        + "\n" + metrics_to_prometheus(metrics)
    )


class TestParallelReaderIdentity:
    """parallel=N must be byte-identical to the sequential loop."""

    def test_parallel_widths_match_sequential(self):
        sequential = _campaign_blob(0)
        for width in (1, 2, 4):
            assert _campaign_blob(width) == sequential, f"width {width}"

    def test_parallel_campaign_repeatable(self):
        assert _campaign_blob(2) == _campaign_blob(2)


def _injector_campaign_blob(parallel, *, rounds=14, n=5, seed=13):
    """A campaign whose fault injectors hold the SHARED event log.

    Regression guard: injectors write fault events from inside the
    transaction, so in parallel mode their log references must be
    staged per worker (``ReaderController._stage_transport_log``) or
    the shared log interleaves nondeterministically across nodes —
    which is exactly how chaos fleets (``repro fleet-report``) wire
    them, and what this blob proves stays byte-identical.
    """
    from repro.faults import BrownoutInjector, NoiseBurstInjector

    log = EventLog()
    metrics = MetricsRegistry()
    transports = {}
    for a in range(1, n + 1):
        inner = SeededFlakyTransport(a, fail_rate=0.15, seed=seed)
        if a % 2:
            inner = NoiseBurstInjector(
                inner, start=2 + a, duration=5, node=a, log=log, seed=seed + a
            )
        else:
            inner = BrownoutInjector(
                inner, at=4, dark_for=7, node=a, log=log, seed=seed + a
            )
        transports[a] = inner
    reader = ReaderController(
        transports,
        retry_policy=RetryPolicy(
            max_retries=2, base_backoff_s=0.05, jitter=0.25, seed=seed
        ),
        health_policy=HealthPolicy(
            degrade_after=2, quarantine_after=4, recover_after=2,
            probe_backoff_rounds=2,
        ),
        log=log,
        metrics=metrics,
        parallel=parallel,
    )
    report = reader.run_campaign(Command.READ_PH, rounds=rounds)
    return (
        json.dumps(report, sort_keys=True, default=str)
        + "\n" + log.dump()
        + "\n" + metrics_to_prometheus(metrics)
    )


class TestParallelInjectorIdentity:
    """Shared-log fault injectors must not break parallel identity."""

    def test_injector_chain_logs_staged_per_worker(self):
        sequential = _injector_campaign_blob(0)
        assert "injector=" in sequential  # the chaos actually fired
        for width in (1, 2, 4):
            assert _injector_campaign_blob(width) == sequential, f"width {width}"

    def test_injector_chain_restored_after_round(self):
        from repro.faults import NoiseBurstInjector

        log = EventLog()
        inner = NoiseBurstInjector(
            SeededFlakyTransport(1, seed=3), start=1, duration=2, node=1,
            log=log, seed=3,
        )
        reader = ReaderController(
            {1: inner}, log=log, parallel=2,
            retry_policy=RetryPolicy(
                max_retries=1, base_backoff_s=0.05, jitter=0.25, seed=3
            ),
        )
        reader.poll_round(Command.READ_PH)
        # After the merge, the injector points at the shared log again.
        assert inner.log is log


class TestMergePrimitives:
    def test_macstats_merge_is_order_independent(self):
        a = MacStats(attempts=5, successes=4, retries=1,
                     payload_bits_delivered=64, airtime_s=1.5,
                     backoff_s=0.2, exceptions=0)
        b = MacStats(attempts=3, successes=1, retries=2,
                     payload_bits_delivered=16, airtime_s=0.9,
                     backoff_s=0.4, exceptions=1)
        c = MacStats(attempts=1, successes=1, retries=0,
                     payload_bits_delivered=8, airtime_s=0.3,
                     backoff_s=0.0, exceptions=0)
        assert a.merge(b, c) == c.merge(b, a)
        # Operands untouched.
        assert a.attempts == 5 and b.attempts == 3

    def test_registry_absorb_counters_accumulate(self):
        target = MetricsRegistry()
        target.counter("pab_x_total").inc(2)
        other = MetricsRegistry()
        other.counter("pab_x_total").inc(3)
        other.gauge("pab_g").set(7.0)
        target.absorb(other)
        assert target.value("pab_x_total") == 5
        assert target.value("pab_g") == 7.0

    def test_registry_absorb_gauges_last_write_wins(self):
        target = MetricsRegistry()
        first = MetricsRegistry()
        first.gauge("pab_g").set(1.0)
        second = MetricsRegistry()
        second.gauge("pab_g").set(2.0)
        target.absorb(first, second)
        assert target.value("pab_g") == 2.0
