"""Tests for spreading and transmission loss."""

import pytest
from hypothesis import given, strategies as st

from repro.acoustics import (
    pressure_ratio_from_tl,
    spreading_loss_db,
    transmission_loss_db,
)
from repro.acoustics.spreading import (
    CYLINDRICAL,
    SPHERICAL,
    tl_from_pressure_ratio,
)


class TestSpreadingLoss:
    def test_zero_at_reference(self):
        assert spreading_loss_db(1.0) == 0.0

    def test_spherical_6db_per_doubling(self):
        assert spreading_loss_db(2.0) == pytest.approx(6.02, abs=0.01)
        assert spreading_loss_db(4.0) == pytest.approx(12.04, abs=0.01)

    def test_cylindrical_3db_per_doubling(self):
        assert spreading_loss_db(2.0, exponent=CYLINDRICAL) == pytest.approx(
            3.01, abs=0.01
        )

    def test_clamps_inside_reference(self):
        assert spreading_loss_db(0.1) == 0.0

    def test_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            spreading_loss_db(-1.0)

    def test_rejects_negative_exponent(self):
        with pytest.raises(ValueError):
            spreading_loss_db(5.0, exponent=-1.0)

    @given(r=st.floats(1.0, 1e4))
    def test_monotone_nondecreasing(self, r):
        assert spreading_loss_db(r * 1.5) >= spreading_loss_db(r)


class TestTransmissionLoss:
    def test_dominated_by_spreading_at_tank_scale(self):
        tl = transmission_loss_db(10.0, 15_000.0)
        assert tl == pytest.approx(spreading_loss_db(10.0), abs=0.1)

    def test_absorption_matters_at_km_scale(self):
        tl = transmission_loss_db(5_000.0, 15_000.0)
        assert tl > spreading_loss_db(5_000.0) + 5.0

    def test_cylindrical_less_lossy(self):
        sph = transmission_loss_db(100.0, 15_000.0, exponent=SPHERICAL)
        cyl = transmission_loss_db(100.0, 15_000.0, exponent=CYLINDRICAL)
        assert cyl < sph


class TestPressureRatio:
    def test_roundtrip(self):
        for tl in (0.0, 3.0, 20.0, 60.0):
            assert tl_from_pressure_ratio(
                pressure_ratio_from_tl(tl)
            ) == pytest.approx(tl)

    def test_zero_tl_is_unity(self):
        assert pressure_ratio_from_tl(0.0) == 1.0

    def test_20db_is_factor_ten(self):
        assert pressure_ratio_from_tl(20.0) == pytest.approx(0.1)

    def test_rejects_nonpositive_ratio(self):
        with pytest.raises(ValueError):
            tl_from_pressure_ratio(0.0)

    @given(tl=st.floats(-40.0, 200.0))
    def test_roundtrip_property(self, tl):
        assert tl_from_pressure_ratio(
            pressure_ratio_from_tl(tl)
        ) == pytest.approx(tl, abs=1e-9)
