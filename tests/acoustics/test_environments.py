"""Tests for deployment-environment presets."""

import pytest

from repro.acoustics.environments import (
    ENVIRONMENTS,
    coastal_ocean,
    lake,
    indoor_tank,
    river,
)


class TestPresets:
    def test_registry_complete(self):
        assert set(ENVIRONMENTS) == {"tank", "river", "lake", "ocean"}

    def test_sound_speeds_physical(self):
        for factory in ENVIRONMENTS.values():
            env = factory()
            assert 1_400.0 < env.sound_speed_mps < 1_560.0

    def test_seawater_faster_than_fresh(self):
        assert coastal_ocean().sound_speed_mps > lake().sound_speed_mps

    def test_seawater_absorbs_more(self):
        """Boric-acid and MgSO4 relaxation only exist in salt water."""
        f = 15_000.0
        assert coastal_ocean().absorption_db_per_km(f) > (
            5.0 * lake().absorption_db_per_km(f)
        )

    def test_tank_has_boundaries_open_water_does_not(self):
        assert indoor_tank().tank is not None
        assert river().tank is None
        geometry = river().geometry()
        assert geometry.wall_reflection == 0.0

    def test_ocean_noise_is_wenz(self):
        env = coastal_ocean(wind_speed_mps=10.0)
        calm = coastal_ocean(wind_speed_mps=0.0)
        assert env.noise.psd_db(15_000.0) > calm.noise.psd_db(15_000.0)

    def test_river_noisier_than_lake(self):
        assert river().noise.psd_db(15_000.0) > lake().noise.psd_db(15_000.0)

    def test_geometry_contains_positions(self):
        from repro.acoustics import Position

        geo = lake().geometry()
        assert geo.contains(Position(100.0, 100.0, 50.0))
