"""Tests for the image-source multipath model."""

import math

import numpy as np
import pytest

from repro.acoustics import POOL_A, POOL_B, ImageSourceModel, Position
from repro.acoustics.geometry import open_water
from repro.constants import NOMINAL_SOUND_SPEED


SRC = Position(0.5, 1.5, 0.6)
RX = Position(3.0, 1.5, 0.6)


def make_model(tank=POOL_A, **kw):
    return ImageSourceModel(tank, **kw)


class TestPaths:
    def test_direct_path_first_and_correct(self):
        model = make_model()
        paths = model.paths(SRC, RX)
        direct = paths[0]
        assert direct.is_direct
        d = SRC.distance_to(RX)
        assert direct.distance_m == pytest.approx(d)
        assert direct.delay_s == pytest.approx(d / NOMINAL_SOUND_SPEED)
        # Spreading: gain ~ 1/d for d > 1 m.
        assert direct.gain == pytest.approx(1.0 / d, rel=0.01)

    def test_sorted_by_delay(self):
        paths = make_model().paths(SRC, RX)
        delays = [p.delay_s for p in paths]
        assert delays == sorted(delays)

    def test_order_zero_gives_only_direct(self):
        paths = make_model(max_order=0).paths(SRC, RX)
        # order 0 keeps the direct path plus single-bounce (odd parity n=0)
        # images whose bounce count is 1 but enumerated at n=0; the model
        # filters on total order <= 2*max_order = 0, so only direct remains.
        assert len([p for p in paths if p.bounces == 0]) == 1

    def test_more_order_more_paths(self):
        few = make_model(max_order=1).paths(SRC, RX)
        many = make_model(max_order=3).paths(SRC, RX)
        assert len(many) > len(few)

    def test_surface_bounce_flips_sign(self):
        # In a tank with only a reflective surface (walls dead), the single
        # surface-bounce path must have negative gain.
        tank = open_water()
        tank = type(tank)(
            length=1e4,
            width=1e4,
            depth=1e4,
            surface_reflection=-1.0,
            wall_reflection=0.0,
            name="half space",
        )
        src = Position(100.0, 100.0, 2.0)
        rx = Position(110.0, 100.0, 2.0)
        paths = ImageSourceModel(tank, max_order=1).paths(src, rx)
        bounced = [p for p in paths if p.bounces == 1 and abs(p.gain) > 0]
        assert bounced, "expected a surface-bounce path"
        assert all(p.gain < 0 for p in bounced)

    def test_validates_positions(self):
        with pytest.raises(ValueError):
            make_model().paths(Position(-1.0, 0.0, 0.0), RX)

    def test_reciprocity_of_direct_gain(self):
        model = make_model()
        fwd = model.paths(SRC, RX)[0]
        rev = model.paths(RX, SRC)[0]
        assert fwd.gain == pytest.approx(rev.gain)
        assert fwd.delay_s == pytest.approx(rev.delay_s)

    def test_weak_paths_pruned(self):
        strict = make_model(min_gain=1e-2).paths(SRC, RX)
        loose = make_model(min_gain=1e-9).paths(SRC, RX)
        assert len(strict) <= len(loose)
        assert all(abs(p.gain) >= 1e-2 for p in strict)


class TestCorridorEffect:
    def test_pool_b_richer_on_axis_multipath(self):
        """Pool B's close side walls add strong low-order images: the total
        received energy for an on-axis link exceeds the free-field direct
        energy by more than in the wider Pool A at the same distance."""
        dist = 2.5
        src_a = Position(0.5, 1.5, 0.6)
        rx_a = Position(0.5 + dist, 1.5, 0.6)
        src_b = Position(0.5, 0.6, 0.5)
        rx_b = Position(0.5 + dist, 0.6, 0.5)
        e_a = sum(
            p.gain**2 for p in ImageSourceModel(POOL_A, max_order=2).paths(src_a, rx_a)
        )
        e_b = sum(
            p.gain**2 for p in ImageSourceModel(POOL_B, max_order=2).paths(src_b, rx_b)
        )
        assert e_b > e_a


class TestImpulseResponse:
    def test_energy_matches_path_gains(self):
        model = make_model()
        fs = 96_000.0
        h = model.impulse_response(SRC, RX, fs)
        paths = model.paths(SRC, RX)
        # Linear-splitting loses a little energy for off-grid delays, but
        # totals should agree within ~20%.
        assert np.sum(np.abs(h)) == pytest.approx(
            sum(abs(p.gain) for p in paths), rel=0.2
        )

    def test_first_arrival_index(self):
        model = make_model()
        fs = 96_000.0
        h = model.impulse_response(SRC, RX, fs)
        direct = model.paths(SRC, RX)[0]
        first = np.flatnonzero(np.abs(h) > 0)[0]
        assert first == pytest.approx(direct.delay_s * fs, abs=1.0)

    def test_max_delay_truncation(self):
        model = make_model(max_order=3)
        fs = 96_000.0
        h_full = model.impulse_response(SRC, RX, fs)
        h_cut = model.impulse_response(SRC, RX, fs, max_delay_s=0.003)
        assert len(h_cut) <= len(h_full)

    def test_invalid_sample_rate(self):
        with pytest.raises(ValueError):
            make_model().impulse_response(SRC, RX, 0.0)


class TestNarrowbandGain:
    def test_matches_impulse_response_dft(self):
        model = make_model()
        f = 15_000.0
        g = model.channel_gain_at(SRC, RX, f)
        fs = 192_000.0
        h = model.impulse_response(SRC, RX, fs)
        freqs = np.exp(-2j * math.pi * f * np.arange(len(h)) / fs)
        g_dft = np.sum(h * freqs)
        # Linear-interpolated fractional delays introduce a small phase
        # error per tap, so allow 10% between the two computations.
        assert abs(g - g_dft) / abs(g) < 0.10

    def test_frequency_selectivity(self):
        """Multipath makes |H(f)| vary across nearby frequencies."""
        model = make_model(max_order=2)
        gains = [
            abs(model.channel_gain_at(SRC, RX, f))
            for f in np.linspace(14_000.0, 16_000.0, 21)
        ]
        assert max(gains) / max(min(gains), 1e-12) > 1.05

    def test_invalid_max_order(self):
        with pytest.raises(ValueError):
            make_model(max_order=-1)
