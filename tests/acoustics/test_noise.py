"""Tests for the ambient noise models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.acoustics import AmbientNoiseModel, wenz_noise_psd_db
from repro.acoustics.noise import (
    shipping_noise_db,
    thermal_noise_db,
    turbulence_noise_db,
    wind_noise_db,
)


class TestWenzComponents:
    def test_turbulence_dominates_at_low_frequency(self):
        f = 5.0  # 5 Hz
        assert turbulence_noise_db(f) > wind_noise_db(f, 0.0)

    def test_thermal_dominates_at_high_frequency(self):
        f = 500_000.0
        assert thermal_noise_db(f) > turbulence_noise_db(f)
        assert thermal_noise_db(f) > shipping_noise_db(f)

    def test_wind_increases_noise(self):
        calm = wind_noise_db(15_000.0, 0.0)
        windy = wind_noise_db(15_000.0, 10.0)
        assert windy > calm + 10.0

    def test_shipping_activity_bounds(self):
        with pytest.raises(ValueError):
            shipping_noise_db(1_000.0, 1.5)

    def test_negative_wind_rejected(self):
        with pytest.raises(ValueError):
            wind_noise_db(1_000.0, -1.0)

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ValueError):
            turbulence_noise_db(0.0)


class TestWenzTotal:
    def test_total_above_each_component(self):
        f = 15_000.0
        total = wenz_noise_psd_db(f)
        assert total >= wind_noise_db(f, 0.0)
        assert total >= thermal_noise_db(f)

    def test_typical_level_at_15khz(self):
        # Around 15 kHz the quiet-ocean ambient level is ~25-45 dB re uPa^2/Hz.
        level = wenz_noise_psd_db(15_000.0)
        assert 20.0 < level < 55.0

    @given(f=st.floats(10.0, 100_000.0))
    def test_finite_everywhere(self, f):
        assert np.isfinite(wenz_noise_psd_db(f))


class TestAmbientNoiseModel:
    def test_flat_psd(self):
        m = AmbientNoiseModel(spectrum="flat", flat_level_db=60.0)
        assert m.psd_db(1_000.0) == 60.0
        assert m.psd_db(20_000.0) == 60.0

    def test_unknown_spectrum_rejected(self):
        with pytest.raises(ValueError):
            AmbientNoiseModel(spectrum="pink")

    def test_generate_length_and_zero_mean(self):
        m = AmbientNoiseModel(spectrum="flat", flat_level_db=60.0, seed=1)
        x = m.generate(50_000, 96_000.0)
        assert len(x) == 50_000
        assert abs(float(np.mean(x))) < 3.0 * float(np.std(x)) / np.sqrt(len(x)) + 1e-12

    def test_generate_power_matches_psd(self):
        level_db = 60.0
        fs = 96_000.0
        m = AmbientNoiseModel(spectrum="flat", flat_level_db=level_db, seed=2)
        x = m.generate(200_000, fs)
        measured = float(np.mean(x**2))
        expected = 10.0 ** (level_db / 10.0) * 1e-12 * (fs / 2.0)
        assert measured == pytest.approx(expected, rel=0.05)

    def test_seed_reproducibility(self):
        a = AmbientNoiseModel(seed=42).generate(1000, 96_000.0)
        b = AmbientNoiseModel(seed=42).generate(1000, 96_000.0)
        np.testing.assert_array_equal(a, b)

    def test_zero_samples(self):
        m = AmbientNoiseModel(seed=0)
        assert len(m.generate(0, 96_000.0)) == 0

    def test_negative_samples_rejected(self):
        with pytest.raises(ValueError):
            AmbientNoiseModel(seed=0).generate(-1, 96_000.0)

    def test_wenz_generation_is_coloured(self):
        m = AmbientNoiseModel(spectrum="wenz", seed=3)
        x = m.generate(1 << 15, 96_000.0)
        spec = np.abs(np.fft.rfft(x)) ** 2
        freqs = np.fft.rfftfreq(len(x), 1.0 / 96_000.0)
        low = spec[(freqs > 500) & (freqs < 2_000)].mean()
        high = spec[(freqs > 30_000) & (freqs < 40_000)].mean()
        # Wenz spectra fall with frequency in this range.
        assert low > high

    def test_band_pressure_rms_positive_and_monotone(self):
        m = AmbientNoiseModel(spectrum="flat", flat_level_db=60.0)
        narrow = m.band_pressure_rms(14_000.0, 16_000.0)
        wide = m.band_pressure_rms(10_000.0, 20_000.0)
        assert 0 < narrow < wide

    def test_band_pressure_rms_validates(self):
        m = AmbientNoiseModel()
        with pytest.raises(ValueError):
            m.band_pressure_rms(5_000.0, 1_000.0)

    @settings(max_examples=20)
    @given(n=st.integers(1, 4096))
    def test_generate_any_length(self, n):
        m = AmbientNoiseModel(spectrum="flat", seed=5)
        assert len(m.generate(n, 48_000.0)) == n
