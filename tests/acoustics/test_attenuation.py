"""Tests for absorption models."""

import pytest
from hypothesis import given, strategies as st

from repro.acoustics import (
    absorption_db,
    francois_garrison_db_per_km,
    thorp_attenuation_db_per_km,
)


class TestThorp:
    def test_monotonic_in_frequency(self):
        values = [thorp_attenuation_db_per_km(f) for f in (1e3, 5e3, 15e3, 40e3)]
        assert values == sorted(values)

    def test_magnitude_at_15khz(self):
        # Thorp at 15 kHz is ~2 dB/km (textbook value 1.8-2.3).
        a = thorp_attenuation_db_per_km(15_000.0)
        assert 1.0 < a < 4.0

    def test_small_at_low_frequency(self):
        assert thorp_attenuation_db_per_km(100.0) < 0.1

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            thorp_attenuation_db_per_km(0.0)

    @given(f=st.floats(100.0, 50_000.0))
    def test_always_positive(self, f):
        assert thorp_attenuation_db_per_km(f) > 0.0


class TestFrancoisGarrison:
    def test_fresh_water_far_below_seawater(self):
        fresh = francois_garrison_db_per_km(15_000.0, salinity_psu=0.0)
        sea = francois_garrison_db_per_km(15_000.0, salinity_psu=35.0)
        assert fresh < sea
        # At 15 kHz seawater absorption is dominated by MgSO4 relaxation.
        assert sea / max(fresh, 1e-12) > 5.0

    def test_seawater_close_to_thorp(self):
        """FG with standard ocean parameters tracks Thorp within a factor ~2."""
        for f in (5e3, 10e3, 15e3, 20e3):
            fg = francois_garrison_db_per_km(
                f, temperature_c=10.0, salinity_psu=35.0, depth_m=100.0, ph=8.0
            )
            th = thorp_attenuation_db_per_km(f)
            assert fg / th < 2.5
            assert th / fg < 2.5

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            francois_garrison_db_per_km(-1.0)

    @given(
        f=st.floats(1_000.0, 50_000.0),
        t=st.floats(0.0, 30.0),
        s=st.floats(0.0, 40.0),
    )
    def test_nonnegative(self, f, t, s):
        assert francois_garrison_db_per_km(f, t, s, 1.0) >= 0.0


class TestAbsorptionDb:
    def test_scales_linearly_with_distance(self):
        one = absorption_db(15_000.0, 1_000.0)
        two = absorption_db(15_000.0, 2_000.0)
        assert two == pytest.approx(2.0 * one)

    def test_zero_distance_is_zero(self):
        assert absorption_db(15_000.0, 0.0) == 0.0

    def test_negligible_at_tank_scale(self):
        # Over 10 m at 15 kHz, absorption is far under 0.1 dB.
        assert absorption_db(15_000.0, 10.0) < 0.1

    def test_model_selection(self):
        th = absorption_db(15_000.0, 1_000.0, model="thorp")
        fg = absorption_db(
            15_000.0, 1_000.0, model="francois-garrison", salinity_psu=35.0
        )
        assert th != fg

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            absorption_db(15_000.0, 1.0, model="magic")

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            absorption_db(15_000.0, -1.0)
