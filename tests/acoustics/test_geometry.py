"""Tests for positions and tank geometry."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.acoustics import POOL_A, POOL_B, Position, Tank
from repro.acoustics.geometry import open_water


class TestPosition:
    def test_distance(self):
        a = Position(0.0, 0.0, 0.0)
        b = Position(3.0, 4.0, 0.0)
        assert a.distance_to(b) == 5.0

    def test_distance_symmetric(self):
        a = Position(1.0, 2.0, 0.5)
        b = Position(4.0, 0.0, 1.0)
        assert a.distance_to(b) == b.distance_to(a)

    def test_as_tuple(self):
        assert Position(1.0, 2.0, 3.0).as_tuple() == (1.0, 2.0, 3.0)

    @given(
        coords=st.tuples(
            *[st.floats(-100, 100, allow_nan=False) for _ in range(6)]
        )
    )
    def test_triangle_inequality(self, coords):
        a = Position(*coords[:3])
        b = Position(*coords[3:])
        origin = Position(0.0, 0.0, 0.0)
        assert a.distance_to(b) <= a.distance_to(origin) + origin.distance_to(b) + 1e-9


class TestTank:
    def test_pool_dimensions_match_paper(self):
        assert POOL_A.length == 4.0 and POOL_A.width == 3.0
        assert POOL_A.depth == pytest.approx(1.3)
        assert POOL_B.length == 10.0 and POOL_B.width == pytest.approx(1.2)
        assert POOL_B.depth == 1.0

    def test_pool_b_is_corridor(self):
        assert POOL_B.aspect_ratio > 5.0 > POOL_A.aspect_ratio

    def test_contains(self):
        assert POOL_A.contains(Position(2.0, 1.5, 0.5))
        assert not POOL_A.contains(Position(5.0, 1.5, 0.5))
        assert not POOL_A.contains(Position(2.0, 1.5, 2.0))

    def test_validate_position_raises(self):
        with pytest.raises(ValueError, match="outside"):
            POOL_B.validate_position(Position(11.0, 0.5, 0.5))

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Tank(length=0.0, width=1.0, depth=1.0)

    def test_invalid_reflection(self):
        with pytest.raises(ValueError):
            Tank(length=1.0, width=1.0, depth=1.0, wall_reflection=1.5)

    def test_diagonal(self):
        t = Tank(length=3.0, width=4.0, depth=12.0)
        assert t.diagonal == pytest.approx(13.0)

    def test_open_water_has_no_reflections(self):
        ow = open_water()
        assert ow.wall_reflection == 0.0
        assert ow.surface_reflection == 0.0
        assert ow.contains(Position(100.0, 100.0, 100.0))

    def test_frozen(self):
        with pytest.raises(AttributeError):
            POOL_A.length = 99.0  # type: ignore[misc]

    @given(
        x=st.floats(0, 4), y=st.floats(0, 3), z=st.floats(0, 1.3)
    )
    def test_all_interior_points_contained(self, x, y, z):
        assert POOL_A.contains(Position(x, y, z))

    def test_boundary_points_contained(self):
        assert POOL_A.contains(Position(0.0, 0.0, 0.0))
        assert POOL_A.contains(Position(4.0, 3.0, 1.3))

    def test_diagonal_exceeds_every_pairwise_distance(self):
        corners = [
            Position(x, y, z)
            for x in (0.0, POOL_B.length)
            for y in (0.0, POOL_B.width)
            for z in (0.0, POOL_B.depth)
        ]
        assert all(
            a.distance_to(b) <= POOL_B.diagonal + 1e-9
            for a in corners
            for b in corners
        )
