"""Tests for the Doppler/mobility model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.acoustics import apply_doppler, doppler_factor, doppler_shift_hz
from repro.acoustics.doppler import max_tolerable_velocity_mps
from repro.dsp import tone

FS = 96_000.0


class TestFactorAndShift:
    def test_static_is_unity(self):
        assert doppler_factor(0.0) == 1.0
        assert doppler_shift_hz(15_000.0, 0.0) == 0.0

    def test_closing_raises_frequency(self):
        assert doppler_shift_hz(15_000.0, 2.0) > 0.0

    def test_opening_lowers_frequency(self):
        assert doppler_shift_hz(15_000.0, -2.0) < 0.0

    def test_magnitude(self):
        # 1.5 m/s at 1500 m/s = 1000 ppm -> 15 Hz at 15 kHz.
        shift = doppler_shift_hz(15_000.0, 1.5, sound_speed=1_500.0)
        assert shift == pytest.approx(15.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            doppler_factor(2_000.0)
        with pytest.raises(ValueError):
            doppler_shift_hz(-1.0, 1.0)
        with pytest.raises(ValueError):
            doppler_factor(1.0, sound_speed=0.0)

    @given(v=st.floats(-50.0, 50.0))
    def test_factor_near_unity_for_platform_speeds(self, v):
        assert doppler_factor(v) == pytest.approx(1.0, abs=0.05)


class TestApplyDoppler:
    def test_static_identity(self):
        x = tone(15_000.0, 0.05, FS)
        np.testing.assert_array_equal(apply_doppler(x, 0.0, FS), x)

    def test_shifts_tone_frequency(self):
        x = tone(15_000.0, 0.5, FS)
        y = apply_doppler(x, 3.0, FS)
        spec = np.abs(np.fft.rfft(y))
        freqs = np.fft.rfftfreq(len(y), 1.0 / FS)
        peak = freqs[np.argmax(spec)]
        expected = 15_000.0 + doppler_shift_hz(15_000.0, 3.0)
        assert peak == pytest.approx(expected, abs=5.0)

    def test_closing_shortens_waveform(self):
        x = tone(15_000.0, 0.5, FS)
        y = apply_doppler(x, 10.0, FS)
        assert len(y) < len(x)

    def test_opening_lengthens_playback(self):
        x = tone(15_000.0, 0.5, FS)
        y = apply_doppler(x, -10.0, FS)
        assert len(y) > len(x)

    def test_validation(self):
        with pytest.raises(ValueError):
            apply_doppler(np.ones((2, 2)), 1.0, FS)
        with pytest.raises(ValueError):
            apply_doppler(np.ones(10), 1.0, 0.0)


class TestTolerableVelocity:
    def test_longer_packets_are_more_sensitive(self):
        short = max_tolerable_velocity_mps(1_000.0, 50, FS)
        long = max_tolerable_velocity_mps(1_000.0, 500, FS)
        assert long < short

    def test_magnitude_at_paper_rates(self):
        # A 150-bit packet at 1 kbps: chip 0.5 ms, packet 150 ms ->
        # v_max = 0.5 * 0.5e-3 / 0.15 * 1481 ~ 2.5 m/s.
        v = max_tolerable_velocity_mps(1_000.0, 150, FS)
        assert 1.0 < v < 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            max_tolerable_velocity_mps(0.0, 100, FS)
