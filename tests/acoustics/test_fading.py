"""Tests for the time-varying fading channel."""

import numpy as np
import pytest

from repro.acoustics.fading import FadingProcess
from repro.dsp import tone

FS = 96_000.0


class TestGainSeries:
    def test_mean_power_normalised(self):
        proc = FadingProcess(k_factor_db=6.0, coherence_time_s=0.1, seed=0)
        gains = proc.gain_series(200_000, 1_000.0)
        assert float(np.mean(np.abs(gains) ** 2)) == pytest.approx(1.0, rel=0.1)

    def test_mean_gain_scaling(self):
        proc = FadingProcess(mean_gain=0.5, seed=1)
        gains = proc.gain_series(100_000, 1_000.0)
        assert float(np.mean(np.abs(gains) ** 2)) == pytest.approx(0.25, rel=0.15)

    def test_high_k_nearly_static(self):
        proc = FadingProcess(k_factor_db=30.0, seed=2)
        gains = proc.gain_series(50_000, 1_000.0)
        assert float(np.std(np.abs(gains))) < 0.05

    def test_low_k_fades_deeply(self):
        proc = FadingProcess(k_factor_db=-20.0, coherence_time_s=0.05, seed=3)
        gains = proc.gain_series(200_000, 1_000.0)
        power = np.abs(gains) ** 2
        assert np.min(power) < 0.05  # deep Rayleigh fades

    def test_correlation_time(self):
        """The autocorrelation of the diffuse part decays at ~1/e over the
        coherence time."""
        tau = 0.2
        fs = 1_000.0
        proc = FadingProcess(
            k_factor_db=-100.0, coherence_time_s=tau, seed=4
        )
        gains = proc.gain_series(400_000, fs)
        x = gains - np.mean(gains)
        lag = int(tau * fs)
        num = np.abs(np.mean(x[lag:] * np.conjugate(x[:-lag])))
        den = float(np.mean(np.abs(x) ** 2))
        assert num / den == pytest.approx(np.exp(-1.0), abs=0.12)

    def test_seed_reproducible(self):
        a = FadingProcess(seed=7).gain_series(1_000, FS)
        b = FadingProcess(seed=7).gain_series(1_000, FS)
        np.testing.assert_array_equal(a, b)

    def test_empty(self):
        assert len(FadingProcess(seed=0).gain_series(0, FS)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FadingProcess(coherence_time_s=0.0)
        with pytest.raises(ValueError):
            FadingProcess(mean_gain=0.0)
        with pytest.raises(ValueError):
            FadingProcess(seed=0).gain_series(-1, FS)
        with pytest.raises(ValueError):
            FadingProcess(seed=0).gain_series(10, 0.0)


class TestApply:
    def test_preserves_power_scale(self):
        # Fast fading (coherence << window) so the window averages many
        # fades; slow fading legitimately wanders on short windows.
        proc = FadingProcess(
            k_factor_db=20.0, coherence_time_s=0.02, seed=5
        )
        x = tone(15_000.0, 0.5, FS)
        y = proc.apply(x, FS)
        assert len(y) == len(x)
        assert float(np.mean(y**2)) == pytest.approx(
            float(np.mean(x**2)), rel=0.2
        )

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            FadingProcess(seed=0).apply(np.ones((2, 3)), FS)


class TestOutage:
    def test_outage_grows_as_k_falls(self):
        high_k = FadingProcess(k_factor_db=15.0, seed=6).outage_probability(3.0)
        low_k = FadingProcess(k_factor_db=-10.0, seed=6).outage_probability(3.0)
        assert low_k > high_k

    def test_more_margin_less_outage(self):
        proc = FadingProcess(k_factor_db=0.0, seed=8)
        assert proc.outage_probability(10.0) < proc.outage_probability(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FadingProcess(seed=0).outage_probability(-1.0)
