"""Tests for the empirical sound-speed equations."""

import pytest
from hypothesis import given, strategies as st

from repro.acoustics import (
    sound_speed_coppens,
    sound_speed_mackenzie,
    sound_speed_medwin,
)
from repro.acoustics.sound_speed import SoundSpeedRangeError


class TestMedwin:
    def test_fresh_water_room_temperature(self):
        # Fresh water at 20 C should be close to the textbook 1482 m/s.
        c = sound_speed_medwin(20.0, 0.0, 0.5)
        assert 1475.0 < c < 1490.0

    def test_increases_with_temperature_in_tank_range(self):
        c_cold = sound_speed_medwin(5.0, 0.0, 0.5)
        c_warm = sound_speed_medwin(25.0, 0.0, 0.5)
        assert c_warm > c_cold

    def test_increases_with_salinity(self):
        fresh = sound_speed_medwin(15.0, 0.0, 1.0)
        salty = sound_speed_medwin(15.0, 35.0, 1.0)
        assert salty > fresh

    def test_increases_with_depth(self):
        shallow = sound_speed_medwin(15.0, 35.0, 1.0)
        deep = sound_speed_medwin(15.0, 35.0, 900.0)
        assert deep > shallow

    def test_rejects_out_of_range_temperature(self):
        with pytest.raises(SoundSpeedRangeError):
            sound_speed_medwin(50.0)

    def test_validate_false_allows_extrapolation(self):
        c = sound_speed_medwin(40.0, validate=False)
        assert c > 1400.0

    @given(
        t=st.floats(0.0, 35.0),
        s=st.floats(0.0, 45.0),
        d=st.floats(0.0, 1000.0),
    )
    def test_always_physical(self, t, s, d):
        c = sound_speed_medwin(t, s, d)
        assert 1380.0 < c < 1650.0


class TestMackenzie:
    def test_standard_ocean_value(self):
        # 10 C, 35 PSU, 100 m: near 1490 m/s.
        c = sound_speed_mackenzie(10.0, 35.0, 100.0)
        assert 1485.0 < c < 1500.0

    def test_range_validation(self):
        with pytest.raises(SoundSpeedRangeError):
            sound_speed_mackenzie(10.0, 5.0, 100.0)  # salinity below 25

    def test_fresh_water_extrapolation(self):
        c = sound_speed_mackenzie(20.0, 0.0, 1.0, validate=False)
        assert 1400.0 < c < 1550.0


class TestCoppens:
    def test_matches_medwin_within_few_mps(self):
        for t in (5.0, 15.0, 25.0):
            c1 = sound_speed_coppens(t, 35.0, 10.0)
            c2 = sound_speed_medwin(t, 35.0, 10.0)
            assert abs(c1 - c2) < 5.0

    def test_rejects_negative_depth_range(self):
        with pytest.raises(SoundSpeedRangeError):
            sound_speed_coppens(10.0, 35.0, 5000.0)


@given(t=st.floats(2.0, 30.0), s=st.floats(25.0, 40.0), d=st.floats(0.0, 1000.0))
def test_equations_agree_in_overlap_region(t, s, d):
    """All three fits should agree to within a few m/s where all are valid."""
    c_mack = sound_speed_mackenzie(t, s, d)
    c_med = sound_speed_medwin(t, s, d)
    c_cop = sound_speed_coppens(t, s, d)
    assert abs(c_mack - c_med) < 6.0
    assert abs(c_mack - c_cop) < 6.0
