"""Tests for the waveform-level acoustic channel."""

import numpy as np
import pytest

from repro.acoustics import (
    POOL_A,
    AcousticChannel,
    AmbientNoiseModel,
    Position,
)

FS = 96_000.0
SRC = Position(0.5, 1.5, 0.6)
RX = Position(3.0, 1.5, 0.6)


def make_channel(**kw):
    defaults = dict(sample_rate=FS, frequency_hz=15_000.0)
    defaults.update(kw)
    return AcousticChannel(POOL_A, SRC, RX, **defaults)


class TestChannelBasics:
    def test_distance(self):
        assert make_channel().distance == pytest.approx(2.5)

    def test_direct_path_delay(self):
        ch = make_channel()
        assert ch.direct_path.delay_s == pytest.approx(2.5 / ch.sound_speed)

    def test_invalid_sample_rate(self):
        with pytest.raises(ValueError):
            make_channel(sample_rate=0.0)

    def test_paths_copy_isolated(self):
        ch = make_channel()
        paths = ch.paths
        paths.clear()
        assert ch.paths  # internal list untouched


class TestApply:
    def test_tone_amplitude_matches_narrowband_gain(self):
        ch = make_channel()
        f = 15_000.0
        n = int(FS * 0.05)
        t = np.arange(n) / FS
        tx = np.sin(2 * np.pi * f * t)
        out = ch.apply(tx, include_noise=False)
        # Steady-state amplitude of the received tone ~ |H(f)|.
        settle = len(out.waveform) // 3
        seg = out.waveform[settle : 2 * settle]
        measured = np.sqrt(2.0 * np.mean(seg**2))
        assert measured == pytest.approx(ch.magnitude_gain(f), rel=0.15)

    def test_output_longer_than_input(self):
        ch = make_channel()
        tx = np.ones(1000)
        out = ch.apply(tx, include_noise=False)
        assert len(out.waveform) > len(tx)

    def test_delay_visible_in_output(self):
        ch = make_channel()
        tx = np.zeros(500)
        tx[0] = 1.0
        out = ch.apply(tx, include_noise=False)
        first = np.flatnonzero(np.abs(out.waveform) > 1e-9)[0]
        assert first == pytest.approx(ch.direct_path.delay_s * FS, abs=2.0)

    def test_noise_added_when_model_present(self):
        noise = AmbientNoiseModel(spectrum="flat", flat_level_db=80.0, seed=1)
        ch = make_channel(noise=noise)
        silent = np.zeros(5000)
        out = ch.apply(silent)
        assert np.std(out.waveform) > 0.0

    def test_noiseless_when_disabled(self):
        noise = AmbientNoiseModel(spectrum="flat", flat_level_db=80.0, seed=1)
        ch = make_channel(noise=noise)
        out = ch.apply(np.zeros(5000), include_noise=False)
        assert np.all(out.waveform == 0.0)

    def test_rejects_2d_waveform(self):
        with pytest.raises(ValueError):
            make_channel().apply(np.ones((10, 2)))

    def test_linearity(self):
        ch = make_channel()
        x = np.random.default_rng(0).normal(size=2000)
        y1 = ch.apply(x, include_noise=False).waveform
        y2 = ch.apply(2.0 * x, include_noise=False).waveform
        np.testing.assert_allclose(y2, 2.0 * y1, rtol=1e-10, atol=1e-12)


class TestSummaries:
    def test_transmission_loss_positive_at_distance(self):
        ch = make_channel()
        assert ch.transmission_loss_db() > 0.0

    def test_gain_falls_with_distance_on_average(self):
        near = AcousticChannel(
            POOL_A, SRC, Position(1.5, 1.5, 0.6), sample_rate=FS
        )
        freqs = np.linspace(14_000, 16_000, 11)
        g_near = np.mean([near.magnitude_gain(f) for f in freqs])
        far = make_channel()
        g_far = np.mean([far.magnitude_gain(f) for f in freqs])
        assert g_near > g_far
