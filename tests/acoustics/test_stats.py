"""Tests for channel statistics."""

import pytest

from repro.acoustics import POOL_A, POOL_B, Position
from repro.acoustics.geometry import open_water
from repro.acoustics.stats import channel_stats, max_isi_free_bitrate


class TestChannelStats:
    def test_free_field_no_spread(self):
        ow = open_water()
        stats = channel_stats(
            ow, Position(100.0, 100.0, 50.0), Position(105.0, 100.0, 50.0)
        )
        assert stats.n_paths == 1
        assert stats.rms_delay_spread_s == 0.0
        assert stats.k_factor_db == float("inf")

    def test_tank_has_spread(self):
        stats = channel_stats(
            POOL_A, Position(0.5, 1.5, 0.6), Position(3.0, 1.5, 0.6)
        )
        assert stats.n_paths > 10
        assert stats.rms_delay_spread_s > 1e-4
        assert stats.coherence_bandwidth_hz < 10_000.0

    def test_mean_delay_at_least_direct(self):
        src, rx = Position(0.5, 1.5, 0.6), Position(3.0, 1.5, 0.6)
        stats = channel_stats(POOL_A, src, rx)
        direct = src.distance_to(rx) / 1481.0
        assert stats.mean_delay_s >= direct

    def test_delay_spread_in_chips(self):
        stats = channel_stats(
            POOL_A, Position(0.5, 1.5, 0.6), Position(3.0, 1.5, 0.6)
        )
        chips_1k = stats.delay_spread_chips(1_000.0)
        chips_3k = stats.delay_spread_chips(3_000.0)
        assert chips_3k == pytest.approx(3.0 * chips_1k)
        # Multi-chip spread at 3 kbps: why the equaliser is needed.
        assert chips_3k > 1.0

    def test_validation(self):
        stats = channel_stats(
            POOL_A, Position(0.5, 1.5, 0.6), Position(3.0, 1.5, 0.6)
        )
        with pytest.raises(ValueError):
            stats.delay_spread_chips(0.0)


class TestIsiFreeBitrate:
    def test_free_field_unlimited(self):
        ow = open_water()
        assert max_isi_free_bitrate(
            ow, Position(100.0, 100.0, 50.0), Position(110.0, 100.0, 50.0)
        ) == float("inf")

    def test_tank_limited(self):
        rate = max_isi_free_bitrate(
            POOL_A, Position(0.5, 1.5, 0.6), Position(3.0, 1.5, 0.6)
        )
        assert 10.0 < rate < 3_000.0

    def test_tighter_spread_budget_lower_rate(self):
        args = (POOL_A, Position(0.5, 1.5, 0.6), Position(3.0, 1.5, 0.6))
        strict = max_isi_free_bitrate(*args, max_spread_chips=0.25)
        loose = max_isi_free_bitrate(*args, max_spread_chips=1.0)
        assert strict < loose
