"""Tests for node mobility in the waveform link (paper Sec. 8)."""

import pytest

from repro.acoustics import POOL_A, Position
from repro.core import BackscatterLink, Projector
from repro.net.messages import Command, Query
from repro.node.node import PABNode
from repro.piezo import Transducer

PING = Query(destination=7, command=Command.PING)


def make_link(velocity_mps, bitrate=1_000.0):
    transducer = Transducer.from_cylinder_design()
    f = transducer.resonance_hz
    projector = Projector(
        transducer=transducer, drive_voltage_v=50.0, carrier_hz=f
    )
    node = PABNode(address=7, channel_frequencies_hz=(f,), bitrate=bitrate)
    return BackscatterLink(
        POOL_A,
        projector,
        Position(0.5, 1.5, 0.6),
        node,
        Position(1.5, 1.5, 0.6),
        Position(1.0, 0.8, 0.6),
        node_velocity_mps=velocity_mps,
    )


class TestDriftingNode:
    def test_static_node_decodes(self):
        assert make_link(0.0).run_query(PING).success

    def test_slow_drift_tolerated(self):
        """Slow drift (tethered sensor swaying, weak current) survives
        thanks to the receiver's phase tracking."""
        for velocity in (0.1, 0.2, 0.3):
            result = make_link(velocity).run_query(PING)
            assert result.success, f"failed at {velocity} m/s"

    def test_fast_drift_breaks_the_link(self):
        """Past the chip-slip limit the frame dies — the mobility
        challenge the paper's discussion flags."""
        result = make_link(4.0).run_query(PING)
        assert not result.success

    def test_drift_costs_snr(self):
        static = make_link(0.0).run_query(PING)
        drifting = make_link(0.2).run_query(PING)
        assert static.snr_db > drifting.snr_db

    def test_receding_node_also_works(self):
        result = make_link(-0.1).run_query(PING)
        assert result.success
