"""Tests for deployment coverage maps and channel planning."""

import numpy as np
import pytest

from repro.acoustics import POOL_A, POOL_B, Position
from repro.core import Projector
from repro.core.deployment import (
    DeploymentPlan,
    powerup_coverage,
    snr_coverage,
)
from repro.net.fdma import ChannelPlan
from repro.piezo import Transducer


def make_projector(drive=100.0, carrier=None):
    transducer = Transducer.from_cylinder_design()
    f = carrier if carrier is not None else transducer.resonance_hz
    return Projector(transducer=transducer, drive_voltage_v=drive, carrier_hz=f)


class TestPowerupCoverage:
    def test_strong_drive_covers_most_of_pool_a(self):
        cov = powerup_coverage(POOL_A, make_projector(200.0), resolution_m=0.8)
        assert cov.coverage_fraction > 0.8

    def test_weak_drive_covers_little(self):
        cov = powerup_coverage(POOL_A, make_projector(10.0), resolution_m=0.8)
        assert cov.coverage_fraction < 0.4

    def test_coverage_monotone_in_drive(self):
        weak = powerup_coverage(POOL_A, make_projector(40.0), resolution_m=0.8)
        strong = powerup_coverage(POOL_A, make_projector(250.0), resolution_m=0.8)
        assert strong.coverage_fraction >= weak.coverage_fraction

    def test_values_binary(self):
        cov = powerup_coverage(POOL_A, make_projector(), resolution_m=1.0)
        assert set(np.unique(cov.values)) <= {0.0, 1.0}

    def test_value_at_lookup(self):
        cov = powerup_coverage(POOL_A, make_projector(200.0), resolution_m=0.8)
        assert cov.value_at(1.0, 1.5) in (0.0, 1.0)


class TestSnrCoverage:
    def test_snr_field_shape_and_units(self):
        cov = snr_coverage(
            POOL_A,
            make_projector(100.0),
            Position(1.0, 0.8, 0.65),
            resolution_m=1.0,
        )
        finite = cov.values[np.isfinite(cov.values)]
        assert len(finite) > 0
        assert np.all(finite < 120.0)

    def test_snr_falls_with_distance_on_average(self):
        cov = snr_coverage(
            POOL_B,
            make_projector(100.0),
            Position(0.6, 0.6, 0.5),
            resolution_m=1.0,
        )
        near = cov.value_at(1.0, 0.6)
        far = cov.value_at(9.0, 0.6)
        assert near > far


class TestDeploymentPlan:
    def test_assigns_channels_and_checks_feasibility(self):
        plan = DeploymentPlan(
            tank=POOL_A,
            projector=make_projector(250.0),
            channel_plan=ChannelPlan(),
        )
        reports = plan.plan(
            {
                1: Position(1.5, 1.5, 0.6),
                2: Position(2.5, 1.5, 0.6),
            }
        )
        assert len(reports) == 2
        channels = {r["channel_hz"] for r in reports}
        assert channels == {15_000.0, 18_000.0}
        assert all(r["incident_pa"] > 0 for r in reports)
        # Close to a strong projector, the 15 kHz node powers up.
        r15 = next(r for r in reports if r["channel_hz"] == 15_000.0)
        assert r15["can_power_up"]

    def test_too_many_nodes_rejected(self):
        plan = DeploymentPlan(
            tank=POOL_A,
            projector=make_projector(),
            channel_plan=ChannelPlan(),
        )
        with pytest.raises(ValueError, match="more nodes than channels"):
            plan.plan(
                {
                    1: Position(1.0, 1.0, 0.6),
                    2: Position(2.0, 1.0, 0.6),
                    3: Position(3.0, 1.0, 0.6),
                }
            )
