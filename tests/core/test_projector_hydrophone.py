"""Tests for the projector and hydrophone front ends."""

import numpy as np
import pytest

from repro.core import Hydrophone, MultiToneDownlink, Projector
from repro.dsp import tone
from repro.net.messages import Command, Query
from repro.piezo import Transducer

FS = 96_000.0


def make_projector(carrier=15_000.0, drive=50.0):
    return Projector(
        transducer=Transducer.from_cylinder_design(),
        drive_voltage_v=drive,
        carrier_hz=carrier,
    )


class TestProjector:
    def test_source_pressure_scales_with_drive(self):
        weak = make_projector(drive=10.0)
        strong = make_projector(drive=100.0)
        assert strong.source_pressure_pa == pytest.approx(
            10.0 * weak.source_pressure_pa
        )

    def test_source_level_db(self):
        p = make_projector(drive=350.0)
        assert 180.0 < p.source_level_db() < 195.0

    def test_query_waveform_is_on_off_keyed(self):
        p = make_projector()
        wave = p.query_waveform(Query(destination=1, command=Command.PING), FS)
        assert np.max(np.abs(wave)) == pytest.approx(p.source_pressure_pa, rel=0.01)
        assert np.min(np.abs(wave)) == 0.0

    def test_carrier_waveform(self):
        p = make_projector()
        cw = p.carrier_waveform(0.1, FS)
        assert len(cw) == int(0.1 * FS)
        spec = np.abs(np.fft.rfft(cw))
        f = np.fft.rfftfreq(len(cw), 1 / FS)
        assert f[np.argmax(spec)] == pytest.approx(15_000.0, abs=20.0)

    def test_query_then_carrier(self):
        p = make_projector()
        wave, start = p.query_then_carrier(
            Query(destination=1, command=Command.PING), 0.1, FS
        )
        assert 0 < start < len(wave)
        assert len(wave) - start == int(0.1 * FS)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_projector(drive=-1.0)
        with pytest.raises(ValueError):
            make_projector(carrier=0.0)
        with pytest.raises(ValueError):
            make_projector().query_then_carrier(
                Query(destination=1, command=Command.PING), -1.0, FS
            )


class TestMultiToneDownlink:
    def make(self):
        return MultiToneDownlink(
            [make_projector(15_000.0), make_projector(18_000.0)]
        )

    def test_contains_both_carriers(self):
        dl = self.make()
        queries = [
            Query(destination=1, command=Command.PING),
            Query(destination=2, command=Command.PING),
        ]
        wave, start = dl.queries_then_carrier(queries, 0.1, FS)
        cw = wave[start:]
        spec = np.abs(np.fft.rfft(cw))
        f = np.fft.rfftfreq(len(cw), 1 / FS)
        p15 = spec[np.argmin(np.abs(f - 15_000.0))]
        p18 = spec[np.argmin(np.abs(f - 18_000.0))]
        floor = np.median(spec)
        assert p15 > 50 * floor and p18 > 50 * floor

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiToneDownlink([])
        with pytest.raises(ValueError):
            MultiToneDownlink([make_projector(15_000.0), make_projector(15_000.0)])
        with pytest.raises(ValueError):
            self.make().queries_then_carrier(
                [Query(destination=1, command=Command.PING)], 0.1, FS
            )


class TestHydrophone:
    def test_sensitivity_conversion(self):
        h = Hydrophone(FS, sensitivity_db=-180.0)
        # -180 dB re 1 V/uPa = 1e-3 V/Pa.
        assert h.sensitivity_v_per_pa == pytest.approx(1e-3)
        recorded = h.record(np.array([100.0]))
        assert recorded[0] == pytest.approx(0.1)

    def test_detect_single_carrier(self):
        h = Hydrophone(FS)
        x = tone(15_000.0, 0.3, FS)
        carriers = h.detect_carriers(x)
        assert len(carriers) == 1
        assert carriers[0] == pytest.approx(15_000.0, abs=20.0)

    def test_detect_two_carriers(self):
        h = Hydrophone(FS)
        x = tone(15_000.0, 0.3, FS) + 0.8 * tone(18_000.0, 0.3, FS)
        carriers = h.detect_carriers(x)
        assert len(carriers) == 2
        assert carriers[0] == pytest.approx(15_000.0, abs=20.0)
        assert carriers[1] == pytest.approx(18_000.0, abs=20.0)

    def test_detect_ignores_out_of_band(self):
        h = Hydrophone(FS)
        x = tone(2_000.0, 0.3, FS)
        assert h.detect_carriers(x) == []

    def test_detect_validation(self):
        with pytest.raises(ValueError):
            Hydrophone(FS).detect_carriers(np.ones(10))
        with pytest.raises(ValueError):
            Hydrophone(0.0)

    def test_demodulator_factory(self):
        dem = Hydrophone(FS).demodulator(15_000.0, 1_000.0)
        assert dem.sample_rate == FS
