"""Integration tests for the multi-node network and experiment harness."""

import numpy as np
import pytest

from repro.acoustics import POOL_A, POOL_B, Position
from repro.core import PABNetwork, Projector
from repro.core.experiment import (
    ExperimentTable,
    ber_snr_sweep,
    powerup_range_sweep,
)
from repro.dsp.packets import CONCURRENT_PREAMBLES, PacketFormat
from repro.net.messages import Command, Query
from repro.node.node import PABNode
from repro.piezo import Transducer


def make_network():
    net = PABNetwork(
        POOL_A,
        Position(0.5, 1.5, 0.6),
        Position(1.0, 0.8, 0.6),
        projector_transducer_factory=Transducer.from_cylinder_design,
        drive_voltage_v=150.0,
    )
    for i, (freq, pos) in enumerate(
        [(15_000.0, Position(1.5, 2.0, 0.6)), (18_000.0, Position(1.8, 1.2, 0.6))]
    ):
        node = PABNode(address=i + 1, channel_frequencies_hz=(freq,))
        node.firmware.config.uplink_format = PacketFormat(
            preamble=CONCURRENT_PREAMBLES[i]
        )
        net.add_node(node, pos)
    return net


class TestNetworkSetup:
    def test_add_node_validation(self):
        net = make_network()
        with pytest.raises(ValueError, match="duplicate"):
            net.add_node(PABNode(address=1), Position(2.0, 2.0, 0.6))
        with pytest.raises(ValueError, match="outside"):
            net.add_node(PABNode(address=5), Position(99.0, 0.0, 0.0))

    def test_round_validation(self):
        net = make_network()
        with pytest.raises(ValueError, match="one query per node"):
            net.run_concurrent_round([Query(destination=1, command=Command.PING)])


class TestConcurrentRound:
    def test_collision_decoding_lifts_sinr(self):
        """The Fig. 10 headline: projection boosts SINR for both nodes."""
        net = make_network()
        result = net.run_concurrent_round(
            [
                Query(destination=1, command=Command.PING),
                Query(destination=2, command=Command.PING),
            ]
        )
        assert len(result.outcomes) == 2
        assert np.isfinite(result.condition_number)
        for outcome in result.outcomes:
            assert outcome.response is not None  # both powered and replied
            assert outcome.sinr_after_db > outcome.sinr_before_db + 3.0

    def test_at_least_one_node_decodes(self):
        net = make_network()
        result = net.run_concurrent_round(
            [
                Query(destination=1, command=Command.PING),
                Query(destination=2, command=Command.PING),
            ]
        )
        assert any(o.success for o in result.outcomes)


class TestExperimentTable:
    def test_add_and_render(self):
        t = ExperimentTable(title="demo", columns=("a", "b"))
        t.add_row(1.0, 2.0)
        text = t.to_text()
        assert "demo" in text and "1.000" in text
        csv = t.to_csv()
        assert csv.startswith("a,b")

    def test_column_access(self):
        t = ExperimentTable(title="demo", columns=("a", "b"))
        t.add_row(1.0, 2.0)
        t.add_row(3.0, 4.0)
        assert t.column("b") == [2.0, 4.0]
        with pytest.raises(KeyError):
            t.column("c")

    def test_row_width_validation(self):
        t = ExperimentTable(title="demo", columns=("a", "b"))
        with pytest.raises(ValueError):
            t.add_row(1.0)


class TestBerSnrSweep:
    def test_monotone_decreasing(self):
        table = ber_snr_sweep([0.0, 4.0, 8.0, 12.0], bits_per_point=4_000)
        bers = table.column("ber")
        assert bers == sorted(bers, reverse=True)

    def test_floor_applied(self):
        table = ber_snr_sweep([20.0], bits_per_point=2_000)
        assert table.column("ber")[0] >= 1e-5

    def test_decodes_from_2db(self):
        """Paper Sec. 6.1a: decoding works from ~2 dB SNR (BER < ~10%)."""
        table = ber_snr_sweep([2.0], bits_per_point=4_000)
        assert table.column("ber")[0] < 0.12


class TestPowerupRangeSweep:
    @staticmethod
    def axis(tank):
        def fn(dist):
            if 0.2 + dist > tank.length - 0.2:
                raise ValueError("outside")
            return (
                Position(0.2, tank.width / 2, tank.depth / 2),
                Position(0.2 + dist, tank.width / 2, tank.depth / 2),
            )

        return fn

    def run(self, tank, voltages):
        f = Transducer.from_cylinder_design().resonance_hz
        return powerup_range_sweep(
            tank,
            voltages,
            node_factory=lambda: PABNode(address=1, channel_frequencies_hz=(f,)),
            projector_factory=lambda v: Projector(
                transducer=Transducer.from_cylinder_design(),
                drive_voltage_v=v,
                carrier_hz=f,
            ),
            axis_positions=self.axis(tank),
        )

    def test_range_grows_with_voltage(self):
        table = self.run(POOL_B, [25.0, 100.0, 300.0])
        distances = table.column("max_distance_m")
        assert distances[0] <= distances[1] <= distances[2]
        assert distances[2] > distances[0]

    def test_pool_b_outranges_pool_a(self):
        """Fig. 9: the corridor pool reaches farther at the same drive."""
        d_a = self.run(POOL_A, [150.0]).column("max_distance_m")[0]
        d_b = self.run(POOL_B, [150.0]).column("max_distance_m")[0]
        assert d_b > d_a
