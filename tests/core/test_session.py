"""Tests for the monitoring-session simulator."""

import pytest

from repro.circuits import EnergyHarvester
from repro.core.session import MonitoringSession
from repro.piezo import Transducer


def make_session(pressure, **kw):
    transducer = Transducer.from_cylinder_design()
    harvester = EnergyHarvester(transducer)
    return MonitoringSession(harvester, pressure, **kw)


STRONG_PA = 900.0
MARGINAL_PA = 420.0
WEAK_PA = 100.0


class TestSession:
    def test_strong_field_delivers_everything(self):
        session = make_session(STRONG_PA, poll_interval_s=5.0)
        report = session.run(30.0)
        assert report.cold_start_s < 5.0
        assert report.readings_delivered >= 4
        assert report.delivery_ratio == 1.0
        assert report.brownouts == 0

    def test_weak_field_never_starts(self):
        session = make_session(WEAK_PA, poll_interval_s=5.0)
        report = session.run(20.0)
        assert report.cold_start_s == float("inf")
        assert report.readings_delivered == 0

    def test_marginal_field_duty_cycles(self):
        """Near the threshold the supercap rides through polls: the node
        delivers readings even though continuous backscatter is not
        sustainable."""
        session = make_session(MARGINAL_PA, poll_interval_s=8.0)
        report = session.run(40.0)
        assert report.cold_start_s < 20.0
        assert report.readings_delivered >= 1

    def test_energy_trace_recorded(self):
        session = make_session(STRONG_PA, poll_interval_s=5.0)
        report = session.run(10.0)
        assert len(report.energy_trace) > 10
        times = [t for t, _v in report.energy_trace]
        assert times == sorted(times)
        volts = [v for _t, v in report.energy_trace]
        assert all(0.0 <= v <= 5.5 for v in volts)

    def test_tighter_schedule_delivers_more_but_strains_more(self):
        fast = make_session(STRONG_PA, poll_interval_s=2.0).run(30.0)
        slow = make_session(STRONG_PA, poll_interval_s=10.0).run(30.0)
        assert fast.readings_delivered > slow.readings_delivered

    def test_carrier_duty_zero_starves_the_node(self):
        """If the projector goes silent between polls, a marginal field
        cannot keep the reservoir topped up."""
        always_on = make_session(
            MARGINAL_PA, poll_interval_s=6.0, carrier_duty=1.0
        ).run(60.0)
        duty_cycled = make_session(
            MARGINAL_PA, poll_interval_s=6.0, carrier_duty=0.0
        ).run(60.0)
        assert duty_cycled.readings_delivered <= always_on.readings_delivered

    def test_poll_durations(self):
        session = make_session(STRONG_PA, bitrate=1_000.0, payload_bytes=4)
        decode_s, backscatter_s = session.poll_durations()
        assert decode_s > 0.1  # PWM downlink is slow
        assert backscatter_s == pytest.approx((13 + 16 + 32 + 16) / 1_000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_session(-1.0)
        with pytest.raises(ValueError):
            make_session(100.0, poll_interval_s=0.0)
        with pytest.raises(ValueError):
            make_session(100.0, carrier_duty=1.5)
        with pytest.raises(ValueError):
            make_session(100.0).run(0.0)
