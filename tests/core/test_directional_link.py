"""Tests for projector directivity in the link."""

import math

import pytest

from repro.acoustics import POOL_A, Position
from repro.core import BackscatterLink, Projector
from repro.net.messages import Command, Query
from repro.node.node import PABNode
from repro.piezo import DirectivityPattern, Transducer

PING = Query(destination=7, command=Command.PING)


def make_link(heading_rad, pattern=None):
    transducer = Transducer.from_cylinder_design()
    f = transducer.resonance_hz
    projector = Projector(
        transducer=transducer,
        drive_voltage_v=60.0,
        carrier_hz=f,
        directivity=pattern,
        heading_rad=heading_rad,
    )
    node = PABNode(address=7, channel_frequencies_hz=(f,))
    return BackscatterLink(
        POOL_A,
        projector,
        Position(0.5, 1.5, 0.6),
        node,
        Position(2.5, 1.5, 0.6),   # due +x of the projector
        Position(1.0, 0.8, 0.6),
    )


class TestBeamGain:
    def test_omni_default_unity(self):
        link = make_link(0.0)
        assert link.beam_gain_node == pytest.approx(1.0)
        assert link.beam_gain_hydrophone == pytest.approx(1.0)

    def test_aimed_disk_boosts_nothing_loses_off_axis(self):
        pattern = DirectivityPattern(kind="piston", characteristic_m=0.15)
        aimed = make_link(0.0, pattern)            # boresight at the node
        averted = make_link(math.pi / 2, pattern)  # aimed 90 deg away
        assert aimed.beam_gain_node == pytest.approx(1.0)
        assert averted.beam_gain_node < 0.5

    def test_gain_towards_wraps_angles(self):
        transducer = Transducer.from_cylinder_design()
        projector = Projector(
            transducer=transducer,
            drive_voltage_v=10.0,
            carrier_hz=transducer.resonance_hz,
            directivity=DirectivityPattern(kind="piston", characteristic_m=0.15),
            heading_rad=0.0,
        )
        assert projector.gain_towards(2 * math.pi) == pytest.approx(
            projector.gain_towards(0.0)
        )


class TestDirectionalExchange:
    def test_aimed_projector_closes_link(self):
        pattern = DirectivityPattern(kind="piston", characteristic_m=0.12)
        result = make_link(0.0, pattern).run_query(PING)
        assert result.powered_up
        assert result.success

    def test_averted_projector_cannot_power_node(self):
        """Aiming a narrow beam away starves the node — why the paper's
        omnidirectional cylinder suits broadcast power delivery."""
        pattern = DirectivityPattern(kind="piston", characteristic_m=0.25)
        result = make_link(math.pi / 2, pattern).run_query(PING)
        assert not result.powered_up

    def test_budget_reflects_beam_gain(self):
        pattern = DirectivityPattern(kind="piston", characteristic_m=0.2)
        aimed = make_link(0.0, pattern).budget()
        averted = make_link(math.pi / 2, pattern).budget()
        assert aimed.incident_pressure_pa > 2.0 * averted.incident_pressure_pa
