"""Over-the-air recto-piezo mode switching (paper Sec. 3.3.2 extension).

"This design may be easily extended through programmable hardware to
enable the backscatter node to shift its own resonance frequency ... by
incorporating multiple matching circuits onboard the backscatter node and
enabling the micro-controller to select the recto-piezo."

The test runs the whole story end to end: a dual-mode node is commanded
onto its second channel over the 15 kHz link, after which an 18 kHz
reader exchange reaches it on the new channel.
"""

import pytest

from repro.acoustics import POOL_A, Position
from repro.core import BackscatterLink, Projector
from repro.net.messages import Command, Query
from repro.node.node import PABNode
from repro.piezo import Transducer

POSITIONS = dict(
    projector=Position(0.5, 1.5, 0.6),
    node=Position(1.5, 1.5, 0.6),
    hydrophone=Position(1.0, 0.8, 0.6),
)


def link_at(node, carrier_hz, drive=150.0):
    projector = Projector(
        transducer=Transducer.from_cylinder_design(),
        drive_voltage_v=drive,
        carrier_hz=carrier_hz,
    )
    return BackscatterLink(
        POOL_A,
        projector,
        POSITIONS["projector"],
        node,
        POSITIONS["node"],
        POSITIONS["hydrophone"],
    )


class TestModeSwitching:
    def test_switch_channel_over_the_air_then_communicate(self):
        node = PABNode(
            address=0x31, channel_frequencies_hz=(15_000.0, 18_000.0)
        )
        assert node.channel_frequency_hz == 15_000.0

        # 1. Command the mode switch over the 15 kHz channel.
        result = link_at(node, 15_000.0).run_query(
            Query(
                destination=0x31,
                command=Command.SET_RESONANCE_MODE,
                argument=1,
            )
        )
        assert result.success
        assert node.channel_frequency_hz == 18_000.0

        # 2. The node now lives on 18 kHz: an 18 kHz exchange reaches it.
        result18 = link_at(node, 18_000.0).run_query(
            Query(destination=0x31, command=Command.PING)
        )
        assert result18.powered_up
        assert result18.query_decoded
        assert result18.success

    def test_after_switch_old_channel_weakens(self):
        """Once on mode 1, the node harvests less at 15 kHz than a
        mode-0 node — the tuning genuinely moved."""
        node = PABNode(
            address=0x32, channel_frequencies_hz=(15_000.0, 18_000.0)
        )
        node.force_power(True)
        node.respond(
            Query(
                destination=0x32,
                command=Command.SET_RESONANCE_MODE,
                argument=1,
            )
        )
        switched = node.active_mode.harvester
        reference = node.bank.mode(0).harvester
        p = reference.calibrate_pressure_for_peak(4.0)
        assert reference.rectified_voltage(p, 15_000.0) > (
            switched.rectified_voltage(p, 15_000.0)
        )

    def test_invalid_mode_is_refused_over_the_air(self):
        node = PABNode(
            address=0x33, channel_frequencies_hz=(15_000.0, 18_000.0)
        )
        result = link_at(node, 15_000.0).run_query(
            Query(
                destination=0x33,
                command=Command.SET_RESONANCE_MODE,
                argument=7,
            )
        )
        # The node stays silent on an out-of-range mode: no reply frame.
        assert result.powered_up and result.query_decoded
        assert result.response is None
        assert node.channel_frequency_hz == 15_000.0
