"""Tests for the recto-piezo bank."""

import numpy as np
import pytest

from repro.core import RectoPiezoBank
from repro.piezo import Transducer


def make_bank(freqs=(15_000.0, 18_000.0)):
    return RectoPiezoBank(Transducer.from_cylinder_design(), freqs)


class TestBank:
    def test_modes(self):
        bank = make_bank()
        assert len(bank) == 2
        assert bank.frequencies() == [15_000.0, 18_000.0]
        assert bank.mode(1).frequency_hz == 18_000.0

    def test_mode_index_validation(self):
        bank = make_bank()
        with pytest.raises(IndexError):
            bank.mode(5)

    def test_construction_validation(self):
        t = Transducer.from_cylinder_design()
        with pytest.raises(ValueError):
            RectoPiezoBank(t, ())
        with pytest.raises(ValueError):
            RectoPiezoBank(t, (-1.0,))

    def test_each_mode_harvests_best_at_own_channel(self):
        bank = make_bank()
        p = bank.mode(0).harvester.calibrate_pressure_for_peak(4.0)
        for mode in bank.modes:
            own = mode.harvester.rectified_voltage(p, mode.frequency_hz)
            other = [
                mode.harvester.rectified_voltage(p, m.frequency_hz)
                for m in bank.modes
                if m is not mode
            ]
            assert all(own > o for o in other)


class TestReflectionStates:
    def test_reflect_stronger_than_absorb_on_channel(self):
        bank = make_bank()
        for mode in bank.modes:
            gamma_a, gamma_r = bank.reflection_states(
                mode.index, mode.frequency_hz
            )
            assert abs(gamma_r) > abs(gamma_a)

    def test_modulation_depth_peaks_on_channel(self):
        bank = make_bank((15_000.0,))
        d_on = bank.modulation_depth(0, 15_000.0)
        d_off = bank.modulation_depth(0, 20_000.0)
        assert d_on > 2.0 * d_off

    def test_frequency_agnostic_interference(self):
        """Sec. 3.3.2: a node still modulates other channels' carriers —
        the modulation depth at the other channel is nonzero."""
        bank = make_bank()
        cross = bank.modulation_depth(1, 15_000.0)  # 18k node at 15k carrier
        assert cross > 0.05

    def test_depth_matches_state_difference(self):
        bank = make_bank((15_000.0,))
        gamma_a, gamma_r = bank.reflection_states(0, 15_000.0)
        assert bank.modulation_depth(0, 15_000.0) == pytest.approx(
            abs(gamma_r - gamma_a)
        )
