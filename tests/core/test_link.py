"""Integration tests for the single-link waveform simulation."""

import numpy as np
import pytest

from repro.acoustics import POOL_A, Position
from repro.core import BackscatterLink, Projector
from repro.net.messages import Command, Query
from repro.node.node import Environment, PABNode
from repro.piezo import Transducer
from repro.sensing.pressure import ATMOSPHERE_MBAR, WaterColumn


def make_link(
    *,
    drive=50.0,
    node_distance=1.0,
    bitrate=1_000.0,
    environment=None,
    channel=None,
):
    transducer = Transducer.from_cylinder_design()
    f = channel if channel is not None else transducer.resonance_hz
    projector = Projector(
        transducer=transducer, drive_voltage_v=drive, carrier_hz=f
    )
    node = PABNode(
        address=7,
        channel_frequencies_hz=(f,),
        bitrate=bitrate,
        environment=environment,
    )
    return BackscatterLink(
        POOL_A,
        projector,
        Position(0.5, 1.5, 0.6),
        node,
        Position(0.5 + node_distance, 1.5, 0.6),
        Position(1.0, 0.8, 0.6),
    )


PING = Query(destination=7, command=Command.PING)


class TestBudget:
    def test_budget_fields_sane(self):
        b = make_link().budget()
        assert b.source_pressure_pa > 0
        assert 0 < b.incident_pressure_pa
        assert 0 < b.modulation_depth <= 1.0
        assert b.uplink_pressure_pa < b.incident_pressure_pa
        assert b.predicted_snr_db > 0

    def test_budget_weakens_with_distance(self):
        near = make_link(node_distance=1.0).budget()
        far = make_link(node_distance=3.0).budget()
        assert far.incident_pressure_pa < near.incident_pressure_pa


class TestExchange:
    def test_full_ping_exchange(self):
        result = make_link().run_query(PING)
        assert result.powered_up
        assert result.query_decoded
        assert result.success
        assert result.ber == 0.0
        assert result.demod.packet.address == 7

    def test_weak_downlink_no_power_up(self):
        result = make_link(drive=2.0).run_query(PING)
        assert not result.powered_up
        assert result.demod is None

    def test_sensor_query_end_to_end(self):
        """The headline application: read pH over the acoustic link."""
        env = Environment(
            water=WaterColumn(depth_m=0.6, temperature_c=21.0), true_ph=7.8
        )
        link = make_link(environment=env)
        result = link.run_query(Query(destination=7, command=Command.READ_PH))
        assert result.success
        from repro.net.messages import Response

        response = Response.from_packet(result.demod.packet)
        assert response.reading().values[0] == pytest.approx(7.8, abs=0.15)

    def test_pressure_query_end_to_end(self):
        env = Environment(water=WaterColumn(depth_m=0.6, temperature_c=18.0))
        link = make_link(environment=env)
        result = link.run_query(
            Query(destination=7, command=Command.READ_PRESSURE_TEMP)
        )
        assert result.success
        from repro.net.messages import Response

        p, t = Response.from_packet(result.demod.packet).reading().values
        assert p == pytest.approx(ATMOSPHERE_MBAR + 98.1 * 0.6, rel=0.01)
        assert t == pytest.approx(18.0, abs=0.3)

    def test_wrong_address_no_reply(self):
        link = make_link()
        result = link.run_query(Query(destination=9, command=Command.PING))
        assert result.powered_up and result.query_decoded
        assert result.response is None

    def test_snr_decreases_with_distance(self):
        near = make_link(node_distance=1.0).measure_uplink_snr(PING)
        far = make_link(node_distance=3.0).measure_uplink_snr(PING)
        assert near > far

    def test_oracle_snr_decreases_with_bitrate(self):
        """The Fig. 8 trend, spot-checked at two rates."""
        slow = make_link(bitrate=200.0).measure_uplink_snr(PING)
        fast = make_link(bitrate=3_000.0).measure_uplink_snr(PING)
        assert slow > fast + 5.0


class TestSwitchingDemo:
    def test_fig2_structure(self):
        """Fig. 2: flat carrier after projector-on, then two-level
        alternation when the node starts switching."""
        link = make_link()
        link.node.force_power(True)
        demo = link.switching_demo(
            silence_s=0.2, carrier_only_s=0.3, switching_s=0.5
        )
        env = demo["envelope_pa"]
        fs = link.sample_rate
        t_carrier = int(demo["carrier_on_s"] * fs)
        t_switch = int(demo["backscatter_on_s"] * fs)
        silence = env[: t_carrier - int(0.02 * fs)]
        carrier = env[t_carrier + int(0.05 * fs) : t_switch - int(0.02 * fs)]
        switching = env[t_switch + int(0.05 * fs) :]
        # Silence is quiet; carrier-only is a steady level; switching
        # alternates between two levels (higher variance).
        assert np.std(silence) < 0.05 * np.mean(carrier)
        assert np.std(carrier) < 0.1 * np.mean(carrier)
        assert np.std(switching) > 2.0 * np.std(carrier)

    def test_switch_rate_visible(self):
        link = make_link()
        link.node.force_power(True)
        demo = link.switching_demo(
            silence_s=0.1, carrier_only_s=0.2, switching_s=1.0,
            switch_rate_hz=10.0,
        )
        fs = link.sample_rate
        start = int(demo["backscatter_on_s"] * fs) + int(0.1 * fs)
        seg = demo["envelope_pa"][start:]
        seg = seg - np.mean(seg)
        spec = np.abs(np.fft.rfft(seg * np.hanning(len(seg))))
        freqs = np.fft.rfftfreq(len(seg), 1.0 / fs)
        band = (freqs > 2.0) & (freqs < 40.0)
        peak = freqs[band][np.argmax(spec[band])]
        assert peak == pytest.approx(10.0, abs=1.5)


class TestChannelReport:
    def test_report_structure(self):
        link = make_link()
        report = link.channel_report()
        assert set(report) == {
            "projector_to_node",
            "node_to_hydrophone",
            "projector_to_hydrophone",
        }
        for leg in report.values():
            assert leg["n_paths"] > 1
            assert leg["rms_delay_spread_s"] > 0
            assert leg["delay_spread_chips"] > 0

    def test_spread_scales_with_bitrate(self):
        slow = make_link(bitrate=500.0).channel_report()
        fast = make_link(bitrate=2_000.0).channel_report()
        assert fast["node_to_hydrophone"]["delay_spread_chips"] > (
            slow["node_to_hydrophone"]["delay_spread_chips"]
        )
