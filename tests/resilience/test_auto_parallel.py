"""``parallel="auto"``: benchmark-evidence-driven mode selection."""

import json
import logging

import pytest

from repro.perf import auto_parallel_width
from repro.perf.fleet import AUTO_PARALLEL_DEFAULT_CROSSOVER

from .conftest import FlakyNode
from repro.net import ReaderController

pytestmark = pytest.mark.resilience


def bench_file(tmp_path, records):
    path = tmp_path / "BENCH_perf.json"
    path.write_text(json.dumps({"records": records}))
    return path


def record(nodes, cached_s, parallel_s, smoke=False):
    return {
        "schema": 1, "smoke": smoke, "nodes": nodes,
        "cached_s": cached_s, "parallel_s": parallel_s,
    }


class TestWidthSelection:
    def test_no_baseline_uses_default_crossover(self, tmp_path):
        missing = tmp_path / "nope.json"
        small = auto_parallel_width(
            AUTO_PARALLEL_DEFAULT_CROSSOVER - 1, bench_path=missing
        )
        large = auto_parallel_width(
            AUTO_PARALLEL_DEFAULT_CROSSOVER, bench_path=missing
        )
        assert small == 0
        assert large >= 1

    def test_threads_won_sets_crossover_at_measured_fleet(self, tmp_path):
        path = bench_file(
            tmp_path, [record(nodes=8, cached_s=2.0, parallel_s=1.0)]
        )
        assert auto_parallel_width(7, bench_path=path) == 0
        assert auto_parallel_width(8, bench_path=path) >= 1

    def test_threads_lost_extrapolates_with_headroom(self, tmp_path):
        path = bench_file(
            tmp_path, [record(nodes=8, cached_s=1.0, parallel_s=2.0)]
        )
        # crossover = max(9, ceil(8 * 2) * 2) = 32
        assert auto_parallel_width(31, bench_path=path) == 0
        assert auto_parallel_width(32, bench_path=path) >= 1

    def test_smoke_records_are_ignored(self, tmp_path):
        path = bench_file(
            tmp_path,
            [record(nodes=2, cached_s=2.0, parallel_s=1.0, smoke=True)],
        )
        # Only a smoke record: fall back to the default crossover.
        assert auto_parallel_width(4, bench_path=path) == 0

    def test_latest_full_record_wins(self, tmp_path):
        path = bench_file(
            tmp_path,
            [
                record(nodes=64, cached_s=1.0, parallel_s=5.0),
                record(nodes=4, cached_s=2.0, parallel_s=1.0),
            ],
        )
        assert auto_parallel_width(4, bench_path=path) >= 1

    def test_corrupt_baseline_falls_back(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        path.write_text("{ not json")
        assert auto_parallel_width(4, bench_path=path) == 0

    def test_max_width_caps_the_pool(self, tmp_path):
        path = bench_file(
            tmp_path, [record(nodes=2, cached_s=2.0, parallel_s=1.0)]
        )
        assert auto_parallel_width(16, bench_path=path, max_width=1) == 1

    def test_choice_is_logged(self, tmp_path, caplog):
        path = bench_file(
            tmp_path, [record(nodes=8, cached_s=2.0, parallel_s=1.0)]
        )
        with caplog.at_level(logging.INFO, logger="repro.perf"):
            auto_parallel_width(16, bench_path=path)
        assert any("parallel=auto" in r.message for r in caplog.records)
        assert any("threads won at 8 nodes" in r.getMessage() for r in caplog.records)


class TestReaderAuto:
    def test_reader_accepts_auto(self, tmp_path, monkeypatch, caplog):
        monkeypatch.setenv(
            "PAB_BENCH_FILE", str(tmp_path / "does-not-exist.json")
        )
        transports = {1: FlakyNode(1, 3), 2: FlakyNode(2, 3)}
        with caplog.at_level(logging.INFO, logger="repro.perf"):
            reader = ReaderController(transports, parallel="auto")
        # Two nodes is far below any crossover: cached sequential.
        assert reader.parallel == 0
        assert any("parallel=auto" in r.message for r in caplog.records)

    def test_reader_auto_picks_threads_past_crossover(
        self, tmp_path, monkeypatch
    ):
        path = bench_file(
            tmp_path, [record(nodes=3, cached_s=2.0, parallel_s=1.0)]
        )
        monkeypatch.setenv("PAB_BENCH_FILE", str(path))
        transports = {n: FlakyNode(n, 3) for n in range(1, 5)}
        reader = ReaderController(transports, parallel="auto")
        assert reader.parallel >= 1
        assert reader._engine is not None
