"""Worker supervision: restarts, containment, quarantine, drills."""

import pytest

from repro.net import Command
from repro.resilience import (
    CampaignAbort,
    SupervisorPolicy,
    WorkerCrash,
    campaign_digest,
    install_worker_crash,
    supervise,
    transport_state,
)

from .conftest import build_fleet

pytestmark = pytest.mark.resilience


class TestSuperviseUnit:
    def test_clean_call_passes_through(self):
        result, outcome = supervise(lambda: 42, SupervisorPolicy())
        assert result == 42
        assert outcome.restarts == 0 and not outcome.crashed

    def test_restart_heals_a_transient_crash(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise WorkerCrash("boom")
            return "ok"

        result, outcome = supervise(flaky, SupervisorPolicy(max_restarts=2))
        assert result == "ok"
        assert outcome.restarts == 2 and not outcome.crashed
        assert outcome.error == "boom"

    def test_exhausted_budget_reports_crashed(self):
        def dead():
            raise WorkerCrash("stays down")

        result, outcome = supervise(dead, SupervisorPolicy(max_restarts=2))
        assert result is None
        assert outcome.crashed and outcome.restarts == 2
        assert outcome.error == "stays down"

    def test_backoff_is_exponential_and_capped(self):
        slept = []
        policy = SupervisorPolicy(
            max_restarts=4, restart_backoff_s=0.1, backoff_multiplier=2.0,
            max_backoff_s=0.3, sleep=slept.append,
        )

        def dead():
            raise WorkerCrash()

        _, outcome = supervise(dead, policy)
        assert slept == [0.1, 0.2, 0.3, 0.3]
        assert outcome.backoff_s == pytest.approx(sum(slept))

    def test_ordinary_exceptions_are_not_supervision_business(self):
        def broken():
            raise RuntimeError("logic bug")

        with pytest.raises(RuntimeError, match="logic bug"):
            supervise(broken, SupervisorPolicy())

    def test_campaign_abort_is_not_contained(self):
        def killed():
            raise CampaignAbort("SIGKILL")

        with pytest.raises(CampaignAbort):
            supervise(killed, SupervisorPolicy())


class TestContainedCrashCampaigns:
    def test_single_crash_heals_via_restart(self):
        reader, log, metrics = build_fleet()
        install_worker_crash(reader, 0x21, rounds=(3,), crashes=1)
        report = reader.run_campaign(Command.READ_TEMPERATURE, rounds=8)
        kinds = [e.kind for e in log.events]
        assert "worker_restart" in kinds
        # Restart healed the worker: no worker_crash fault was booked.
        assert not [
            e for e in log.events
            if e.kind == "fault"
            and dict(e.detail).get("injector") == "worker_crash"
        ]
        assert metrics.counter(
            "pab_worker_restarts_total", node=0x21
        ).value >= 1
        assert "shards" not in report  # healed crashes leave no shard record

    def test_exhausted_restarts_surface_not_abort(self):
        reader, log, metrics = build_fleet()
        install_worker_crash(reader, 0x21, rounds=(3,), crashes=3)
        report = reader.run_campaign(Command.READ_TEMPERATURE, rounds=8)
        faults = [
            e for e in log.events
            if e.kind == "fault"
            and dict(e.detail).get("injector") == "worker_crash"
        ]
        assert faults and faults[0].node == 0x21
        assert metrics.counter(
            "pab_worker_crashes_total", node=0x21
        ).value >= 1
        assert any(
            pm.fault == "worker_crash" and pm.node == 0x21
            for pm in reader.postmortems
        )
        assert report["shards"]["crashed_rounds"] == {0x21: 1}
        assert report["shards"]["quarantined"] == []

    def test_repeat_offender_shard_is_quarantined(self):
        reader, log, metrics = build_fleet()
        install_worker_crash(reader, 0x22, rounds=(2, 3, 4), crashes=3)
        report = reader.run_campaign(Command.READ_TEMPERATURE, rounds=9)
        assert 0x22 in reader._quarantined_shards
        assert report["shards"]["quarantined"] == [0x22]
        assert report["shards"]["crashed_rounds"][0x22] == 3
        assert any(e.kind == "shard_quarantine" for e in log.events)
        assert metrics.counter(
            "pab_shard_quarantines_total", node=0x22
        ).value == 1

    def test_crash_streak_resets_on_recovery(self):
        reader, _, _ = build_fleet()
        # Two crashed rounds, a clean gap, two more: never 3 in a row.
        install_worker_crash(reader, 0x22, rounds=(2, 3, 5, 6), crashes=3)
        reader.run_campaign(Command.READ_TEMPERATURE, rounds=9)
        assert 0x22 not in reader._quarantined_shards
        assert reader._shard_crashes[0x22] == 4

    @pytest.mark.parametrize("parallel", [0, 2])
    def test_fatal_crash_aborts_in_every_mode(self, parallel):
        reader, _, _ = build_fleet(parallel=parallel)
        install_worker_crash(reader, 0x20, rounds=(2,), fatal=True)
        with pytest.raises(CampaignAbort, match="fatal worker crash"):
            reader.run_campaign(Command.READ_TEMPERATURE, rounds=6)


class TestCrossModeIdentity:
    def test_contained_crash_digest_matches_across_modes(self):
        digests = []
        for parallel in (0, 2):
            reader, log, metrics = build_fleet(parallel=parallel)
            install_worker_crash(reader, 0x21, rounds=(3,), crashes=3)
            report = reader.run_campaign(Command.READ_TEMPERATURE, rounds=8)
            digests.append(campaign_digest(report, log, metrics))
        assert digests[0] == digests[1]


class TestInjectorTransparency:
    def test_checkpoints_see_through_the_injector(self):
        reader, _, _ = build_fleet()
        bare = transport_state(reader._macs[0x20].transact)
        install_worker_crash(reader, 0x20, rounds=(99,))
        wrapped = transport_state(reader._macs[0x20].transact)
        assert wrapped == bare

    def test_unknown_node_is_a_loud_error(self):
        reader, _, _ = build_fleet()
        with pytest.raises(KeyError, match="no node"):
            install_worker_crash(reader, 0x99, rounds=(1,))
