"""Checkpoint files: round-trip, naming, and every rejection path."""

import json

import pytest

from repro.resilience import (
    CHECKPOINT_KIND,
    CHECKPOINT_SCHEMA,
    CheckpointError,
    checkpoint_path,
    latest_checkpoint,
    read_checkpoint,
    state_integrity,
    write_checkpoint,
)

pytestmark = pytest.mark.resilience

STATE = {
    "round": 3,
    "nodes": {"32": {"bitrate": 2_000.0, "readings": [["temperature", [18.5]]]}},
    "special": [float("inf"), float("-inf")],
}


class TestRoundTrip:
    def test_document_round_trips(self, tmp_path):
        path = write_checkpoint(
            tmp_path / "ck.json", STATE, round=3,
            campaign={"builder": "chaos-fleet"},
        )
        doc = read_checkpoint(path)
        assert doc["kind"] == CHECKPOINT_KIND
        assert doc["schema"] == CHECKPOINT_SCHEMA
        assert doc["round"] == 3
        assert doc["campaign"] == {"builder": "chaos-fleet"}
        assert doc["state"] == STATE
        assert doc["integrity"] == state_integrity(STATE)

    def test_parents_created(self, tmp_path):
        path = write_checkpoint(
            tmp_path / "a" / "b" / "ck.json", STATE, round=1
        )
        assert path.exists()

    def test_non_dict_state_refused(self, tmp_path):
        with pytest.raises(CheckpointError, match="must be a dict"):
            write_checkpoint(tmp_path / "ck.json", [1, 2], round=0)

    def test_checkpoint_path_naming(self, tmp_path):
        assert checkpoint_path(tmp_path, 15).name == "checkpoint-000015.json"

    def test_latest_checkpoint_picks_highest_round(self, tmp_path):
        for r in (5, 15, 10):
            write_checkpoint(checkpoint_path(tmp_path, r), STATE, round=r)
        (tmp_path / "not-a-checkpoint.json").write_text("{}")
        assert latest_checkpoint(tmp_path).name == "checkpoint-000015.json"

    def test_latest_checkpoint_empty_or_missing_dir(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None
        assert latest_checkpoint(tmp_path / "nope") is None


class TestRejection:
    """Every read-path failure is a one-line CheckpointError."""

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            read_checkpoint(tmp_path / "nope.json")

    def test_truncated_file(self, tmp_path):
        path = write_checkpoint(tmp_path / "ck.json", STATE, round=3)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointError, match="not valid JSON"):
            read_checkpoint(path)

    def test_wrong_kind(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"kind": "something-else", "schema": 1}))
        with pytest.raises(CheckpointError, match="not a campaign checkpoint"):
            read_checkpoint(path)

    def test_non_object_document(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(CheckpointError, match="not a campaign checkpoint"):
            read_checkpoint(path)

    def test_unsupported_schema(self, tmp_path):
        path = write_checkpoint(tmp_path / "ck.json", STATE, round=3)
        doc = json.loads(path.read_text())
        doc["schema"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(CheckpointError, match="schema 99"):
            read_checkpoint(path)

    def test_missing_section(self, tmp_path):
        path = write_checkpoint(tmp_path / "ck.json", STATE, round=3)
        doc = json.loads(path.read_text())
        del doc["round"]
        path.write_text(json.dumps(doc))
        with pytest.raises(CheckpointError, match="missing 'round'"):
            read_checkpoint(path)

    def test_malformed_state(self, tmp_path):
        path = write_checkpoint(tmp_path / "ck.json", STATE, round=3)
        doc = json.loads(path.read_text())
        doc["state"] = "oops"
        path.write_text(json.dumps(doc))
        with pytest.raises(CheckpointError, match="malformed 'state'"):
            read_checkpoint(path)

    def test_corrupted_state_fails_integrity(self, tmp_path):
        path = write_checkpoint(tmp_path / "ck.json", STATE, round=3)
        doc = json.loads(path.read_text())
        doc["state"]["round"] = 999  # bit-flip equivalent
        path.write_text(json.dumps(doc))
        with pytest.raises(CheckpointError, match="integrity"):
            read_checkpoint(path)

    def test_missing_integrity_fails(self, tmp_path):
        path = write_checkpoint(tmp_path / "ck.json", STATE, round=3)
        doc = json.loads(path.read_text())
        del doc["integrity"]
        path.write_text(json.dumps(doc))
        with pytest.raises(CheckpointError, match="integrity"):
            read_checkpoint(path)
