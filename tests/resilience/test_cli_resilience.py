"""CLI drills: kill-resume identity, baseline guards, flag validation."""

import json

import pytest

from repro.cli import _load_bench_baseline, _parse_kill_at, main
from repro.resilience import write_checkpoint

pytestmark = pytest.mark.resilience


class TestParseKillAt:
    def test_decimal(self):
        assert _parse_kill_at("17:3") == (17, 3)

    def test_hex_node(self):
        assert _parse_kill_at("2:0x11") == (2, 17)

    @pytest.mark.parametrize("spec", ["17", "a:b", "1:2:3", ""])
    def test_bad_specs(self, spec):
        with pytest.raises(ValueError, match="expected ROUND:NODE"):
            _parse_kill_at(spec)


class TestBenchBaselineGuards:
    """Satellite: --compare fails with one-line errors, not tracebacks."""

    def test_missing_file(self, tmp_path):
        record, problem = _load_bench_baseline(tmp_path / "nope.json", False)
        assert record is None
        assert "not found" in problem

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ nope")
        record, problem = _load_bench_baseline(path, False)
        assert record is None
        assert "not valid JSON" in problem

    def test_no_records_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"something": []}))
        record, problem = _load_bench_baseline(path, False)
        assert record is None
        assert "no 'records' list" in problem

    def test_no_matching_smoke_flag(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps({"records": [{"schema": 1, "smoke": False}]})
        )
        record, problem = _load_bench_baseline(path, True)
        assert record is None
        assert "smoke=True" in problem

    def test_schema_mismatch(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps({"records": [{"schema": 99, "smoke": False}]})
        )
        record, problem = _load_bench_baseline(path, False)
        assert record is None
        assert "schema 99" in problem and "not supported" in problem

    def test_good_baseline_loads(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps({
                "records": [
                    {"schema": 1, "smoke": False, "sequential_s": 1.0},
                    {"schema": 1, "smoke": True, "sequential_s": 0.1},
                ]
            })
        )
        record, problem = _load_bench_baseline(path, False)
        assert problem is None
        assert record["sequential_s"] == 1.0


class TestCheckpointFlags:
    def test_checkpoint_every_requires_dir(self, capsys):
        assert main(
            ["fleet-report", "--nodes", "3", "--rounds", "4",
             "--checkpoint-every", "2"]
        ) == 2
        assert "--checkpoint-dir" in capsys.readouterr().out

    def test_resume_missing_checkpoint_fails_cleanly(self, tmp_path, capsys):
        assert main(["resume", str(tmp_path / "nope.json")]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_resume_unknown_builder_fails_cleanly(self, tmp_path, capsys):
        path = write_checkpoint(
            tmp_path / "ck.json", {"round": 1}, round=1,
            campaign={"builder": "hand-rolled"},
        )
        assert main(["resume", str(path)]) == 1
        assert "chaos-fleet" in capsys.readouterr().out


class TestKillResumeDrill:
    """The acceptance drill, end to end through the CLI."""

    def test_kill_resume_digest_identity(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        killed = tmp_path / "killed.digest"
        resumed = tmp_path / "resumed.digest"
        clean = tmp_path / "clean.digest"

        rc = main([
            "fleet-report", "--nodes", "4", "--rounds", "10", "--seed", "3",
            "--checkpoint-every", "3", "--checkpoint-dir", str(ckpt),
            "--kill-at", "7:1", "--digest-out", str(killed),
        ])
        out = capsys.readouterr().out
        assert rc == 3
        assert "campaign aborted" in out
        assert "checkpoint-000006.json" in out
        assert not killed.exists()  # the killed run never got a digest

        rc = main([
            "resume", str(ckpt / "checkpoint-000006.json"),
            "--digest-out", str(resumed),
        ])
        assert rc == 0
        assert "resuming" in capsys.readouterr().out

        rc = main([
            "fleet-report", "--nodes", "4", "--rounds", "10", "--seed", "3",
            "--digest-out", str(clean),
        ])
        assert rc == 0
        capsys.readouterr()

        assert resumed.read_text() == clean.read_text()

    def test_contained_kill_does_not_abort(self, tmp_path, capsys):
        """bench-style containment at the fleet-report layer: resume
        rounds can also be overridden explicitly."""
        ckpt = tmp_path / "ckpt"
        main([
            "fleet-report", "--nodes", "3", "--rounds", "8", "--seed", "5",
            "--checkpoint-every", "4", "--checkpoint-dir", str(ckpt),
            "--kill-at", "6:1",
        ])
        capsys.readouterr()
        rc = main([
            "resume", str(ckpt / "checkpoint-000004.json"),
            "--rounds", "8",
        ])
        assert rc == 0
        assert "campaign digest" in capsys.readouterr().out
