"""Watchdog deadlines: stragglers are abandoned, not waited for."""

import time

import pytest

from repro.net import Command
from repro.perf import FleetEngine
from repro.resilience import WatchdogPolicy, WatchdogTimeout

from .conftest import FlakyNode, build_fleet

pytestmark = pytest.mark.resilience


class TestPolicy:
    def test_deadlines_must_be_positive(self):
        with pytest.raises(ValueError):
            WatchdogPolicy(transaction_deadline_s=0.0)
        with pytest.raises(ValueError):
            WatchdogPolicy(round_deadline_s=-1.0)

    def test_enabled_flag(self):
        assert not WatchdogPolicy().enabled
        assert WatchdogPolicy(transaction_deadline_s=1.0).enabled
        assert WatchdogPolicy(round_deadline_s=1.0).enabled


class TestEngineDeadlines:
    def test_transaction_budget_abandons_the_straggler(self):
        engine = FleetEngine(max_workers=2)
        units = {
            "fast": lambda: "ok",
            "slow": lambda: time.sleep(0.4) or "late",
        }
        results = dict(
            engine.run_round(
                units,
                watchdog=WatchdogPolicy(transaction_deadline_s=0.05),
            )
        )
        assert results["fast"] == "ok"
        timeout = results["slow"]
        assert isinstance(timeout, WatchdogTimeout)
        assert timeout.budget == "transaction"
        assert timeout.deadline_s == 0.05

    def test_round_budget_covers_the_whole_round(self):
        engine = FleetEngine(max_workers=1)  # serialise: 2nd unit starves
        units = [
            ("a", lambda: time.sleep(0.25) or "a-done"),
            ("b", lambda: "b-done"),
        ]
        results = dict(
            engine.run_round(
                units, watchdog=WatchdogPolicy(round_deadline_s=0.1)
            )
        )
        assert isinstance(results["a"], WatchdogTimeout)
        assert results["a"].budget in ("transaction", "round")

    def test_no_watchdog_waits_forever(self):
        engine = FleetEngine(max_workers=2)
        results = dict(
            engine.run_round({"slow": lambda: time.sleep(0.15) or "done"})
        )
        assert results["slow"] == "done"

    def test_campaign_continues_after_timeouts(self):
        """The tainted pool is rebuilt; later rounds still run."""
        engine = FleetEngine(max_workers=2)
        first = dict(
            engine.run_round(
                {"slow": lambda: time.sleep(0.3) or "late"},
                watchdog=WatchdogPolicy(transaction_deadline_s=0.05),
            )
        )
        assert isinstance(first["slow"], WatchdogTimeout)
        second = dict(engine.run_round({"quick": lambda: "ok"}))
        assert second["quick"] == "ok"


class _HangingNode(FlakyNode):
    """Good node whose worker hangs (not fails) on scheduled rounds."""

    def __init__(self, address, seed, hang_rounds, clock, hang_s=0.3):
        super().__init__(address, seed, p_fail=0.0)
        self.hang_rounds = frozenset(hang_rounds)
        self.clock = clock
        self.hang_s = hang_s

    def __call__(self, query):
        if self.clock() in self.hang_rounds:
            time.sleep(self.hang_s)
        return super().__call__(query)


class TestReaderIntegration:
    def test_watchdog_breach_is_a_fault_not_a_hang(self):
        reader, log, metrics = build_fleet(
            n=3, p_fail=0.0, parallel=2,
            watchdog=WatchdogPolicy(transaction_deadline_s=0.05),
        )
        slow = 0x21
        reader._macs[slow].transact = _HangingNode(
            slow, 11, hang_rounds=(2,), clock=lambda: reader._round
        )
        report = reader.run_campaign(Command.READ_TEMPERATURE, rounds=5)
        breaches = [
            e for e in log.events
            if e.kind == "fault"
            and dict(e.detail).get("injector") == "watchdog_timeout"
        ]
        assert breaches and breaches[0].node == slow
        assert metrics.counter(
            "pab_watchdog_timeouts_total", node=slow
        ).value >= 1
        assert any(
            pm.fault == "watchdog_timeout" and pm.node == slow
            for pm in reader.postmortems
        )
        # The campaign completed all rounds and reported every node.
        assert report["rounds"] == 5
        # The breach fed the health machine and the shard books (even
        # though later clean rounds let the node recover).
        assert reader._shard_crashes[slow] >= 1
        assert report["shards"]["crashed_rounds"][slow] >= 1
