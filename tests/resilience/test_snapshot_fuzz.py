"""Seeded fuzz of snapshot -> restore -> snapshot across all state.

Every stateful component a checkpoint carries must restore *exactly*:
the snapshot taken from a restored twin is JSON-equal to the original
snapshot, and the twin's future behaviour (RNG draws, derived reports)
matches the original's.  Exactness matters — json round-trips preserve
int/float identity, so any coercion in a restore path shows up here.
"""

import json

import numpy as np
import pytest

from repro.faults import EventLog, GilbertElliottInjector
from repro.net import HealthPolicy, RetryPolicy
from repro.net.health import NodeHealth
from repro.net.mac import PollingMac
from repro.obs import MetricsRegistry, SLOTracker
from repro.obs.ledger import EnergyLedger, NodeEnergyHarness
from repro.node.power import PowerState

pytestmark = pytest.mark.resilience

SEEDS = [0, 1, 7, 23, 101]


def canon(state):
    """The JSON form a checkpoint file stores (and sorts)."""
    return json.dumps(state, sort_keys=True)


def assert_exact_round_trip(original, fresh):
    """snapshot(original) -> restore into fresh -> snapshot equality."""
    state = original.snapshot_state()
    # Through JSON, like a real checkpoint file (sort_keys reorders
    # dicts — restore must not depend on insertion order).
    state = json.loads(canon(state))
    fresh.restore_state(state)
    assert canon(fresh.snapshot_state()) == canon(original.snapshot_state())


class TestHealthMachine:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        policy = HealthPolicy(
            degrade_after=2, quarantine_after=3, recover_after=2,
            probe_backoff_rounds=2,
        )
        health = NodeHealth(node=7, policy=policy, log=EventLog())
        for t in range(40):
            health.on_result(bool(rng.random() < 0.6), float(t))
        twin = NodeHealth(node=7, policy=policy, log=EventLog())
        assert_exact_round_trip(health, twin)

    def test_future_behaviour_matches(self):
        policy = HealthPolicy(degrade_after=2, quarantine_after=3)
        a = NodeHealth(node=1, policy=policy, log=EventLog())
        for t in range(5):
            a.on_result(False, float(t))
        b = NodeHealth(node=1, policy=policy, log=EventLog())
        b.restore_state(json.loads(canon(a.snapshot_state())))
        for t in range(5, 12):
            assert a.on_result(t % 3 == 0, float(t)) == b.on_result(
                t % 3 == 0, float(t)
            )
            assert a.state is b.state


class TestSLOTracker:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        slo = SLOTracker(window=6)
        for t in range(25):
            slo.observe_round(
                float(t),
                {
                    n: {
                        "polled": True,
                        "delivered": bool(rng.random() < 0.8),
                        "healthy": bool(rng.random() < 0.9),
                        "sustainable": bool(rng.random() < 0.7),
                    }
                    for n in (1, 2, 3)
                },
            )
        twin = SLOTracker(window=6)
        assert_exact_round_trip(slo, twin)
        assert twin.report() == slo.report()


class TestMetricsRegistry:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        reg = MetricsRegistry()
        for _ in range(50):
            reg.counter("pab_test_total").inc(float(rng.integers(1, 4)))
            reg.gauge("pab_test_gauge").set(float(rng.random()))
            reg.histogram("pab_test_seconds").observe(float(rng.random()))
        twin = MetricsRegistry()
        assert_exact_round_trip(reg, twin)


class TestRetryRngStream:
    """The jitter stream resumes exactly where it left off."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_backoff_sequence_continues(self, seed):
        policy = RetryPolicy(
            max_retries=2, base_backoff_s=0.1, jitter=0.5, seed=seed
        )
        mac = PollingMac(transact=lambda q: None, retry_policy=policy)
        for i in range(17):  # advance the stream an odd amount
            policy.backoff_s(i % 3)
        state = json.loads(canon(mac.snapshot_state()))
        expected = [policy.backoff_s(i % 3) for i in range(10)]
        mac.restore_state(state)
        assert [policy.backoff_s(i % 3) for i in range(10)] == expected


class TestEnergyLedger:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_harness_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        harness = NodeEnergyHarness(5, poll_period_s=0.5, dt_s=0.05)
        for t in range(12):
            harness.on_poll_round(
                float(t), polled=bool(rng.random() < 0.8),
                success=bool(rng.random() < 0.7),
            )
        twin = NodeEnergyHarness(5, poll_period_s=0.5, dt_s=0.05)
        assert_exact_round_trip(harness, twin)
        assert canon(twin.summary()) == canon(harness.summary())

    def test_totals_ignore_bucket_order(self):
        """Regression: duty cycle / flow totals are fsum'd, so the
        sorted bucket order a restore rebuilds cannot shift rounding."""
        a = EnergyLedger(1)
        # Visit states in non-alphabetical order with awkward floats.
        for state, dt in [
            (PowerState.IDLE, 0.7), (PowerState.BACKSCATTER, 0.2),
            (PowerState.DECODING, 0.1), (PowerState.IDLE, 0.1 + 1e-16),
        ] * 30:
            a.state = state
            a.state_seconds[state] += dt
        b = EnergyLedger(1)
        b.restore_state(json.loads(canon(a.snapshot_state())))
        assert canon(a.duty_cycle()) == canon(b.duty_cycle())

    def test_capacitor_snapshot_requires_capacitor(self):
        harness = NodeEnergyHarness(2)
        state = harness.ledger.snapshot_state()
        bare = EnergyLedger(2)  # no capacitor attached
        with pytest.raises(ValueError, match="no capacitor"):
            bare.restore_state(state)


class TestInjectorChains:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_gilbert_elliott_round_trip(self, seed):
        def ok(query):
            return type("R", (), {"success": True})()

        a = GilbertElliottInjector(
            ok, p_good_to_bad=0.3, p_bad_to_good=0.3, bad_loss=0.9, seed=seed
        )
        for _ in range(21):
            a(object())
        b = GilbertElliottInjector(
            ok, p_good_to_bad=0.3, p_bad_to_good=0.3, bad_loss=0.9, seed=seed
        )
        assert_exact_round_trip(a, b)
        # Future loss pattern identical.
        for _ in range(30):
            assert a(object()).success == b(object()).success
