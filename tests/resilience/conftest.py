"""Shared apparatus for the resilience suites.

A seeded flaky fleet: stub transports that answer queries but fail a
seeded fraction of the time, carrying their RNG stream through
``snapshot_state``/``restore_state`` so campaigns over them are
checkpointable byte-for-byte.
"""

import numpy as np

from repro.faults import EventLog
from repro.net import (
    Command,
    HealthPolicy,
    ReaderController,
    Response,
    RetryPolicy,
)
from repro.obs import MetricsRegistry, SLOTracker


class StubResult:
    def __init__(self, packet):
        self.success = True
        self.demod = type("Demod", (), {})()
        self.demod.packet = packet
        self.demod.success = True


class FailedResult:
    success = False
    fault = None
    postmortem = None


class FlakyNode:
    """Seeded stub transport; resumable via its RNG stream."""

    def __init__(self, address, seed, p_fail=0.15):
        self.address = int(address)
        self.rng = np.random.default_rng((seed, int(address)))
        self.p_fail = float(p_fail)

    def __call__(self, query):
        if self.rng.random() < self.p_fail:
            return FailedResult()
        if query.command is Command.READ_TEMPERATURE:
            raw = int((15.0 + self.address) * 100.0 + 10_000)
            data = bytes([(raw >> 8) & 0xFF, raw & 0xFF])
            response = Response(
                source=self.address, command=query.command, data=data
            )
        else:
            response = Response(source=self.address, command=query.command)
        return StubResult(response.to_packet())

    def snapshot_state(self):
        return {"rng": self.rng.bit_generator.state}

    def restore_state(self, state):
        self.rng.bit_generator.state = state["rng"]


def build_fleet(n=4, seed=11, p_fail=0.15, **reader_kwargs):
    """``(reader, log, metrics)`` — an ``n``-node flaky fleet with SLO."""
    log = EventLog()
    metrics = MetricsRegistry()
    transports = {
        0x20 + i: FlakyNode(0x20 + i, seed, p_fail=p_fail) for i in range(n)
    }
    reader = ReaderController(
        transports,
        retry_policy=RetryPolicy(
            max_retries=1, base_backoff_s=0.05, jitter=0.25, seed=seed
        ),
        health_policy=HealthPolicy(
            degrade_after=2, quarantine_after=4, recover_after=2,
            probe_backoff_rounds=2,
        ),
        log=log,
        metrics=metrics,
        slo=SLOTracker(window=8),
        **reader_kwargs,
    )
    return reader, log, metrics
