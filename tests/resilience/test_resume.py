"""Checkpoint/resume: byte-identical continuation, proven by digest.

The acceptance criterion: a campaign interrupted at *any* round and
resumed from its latest checkpoint yields a report, event log, and
digest byte-identical to the uninterrupted run.
"""

import json

import pytest

from repro.net import Command
from repro.resilience import (
    CampaignAbort,
    campaign_digest,
    checkpoint_path,
    install_worker_crash,
    latest_checkpoint,
    read_checkpoint,
    write_checkpoint,
)

from .conftest import build_fleet

pytestmark = pytest.mark.resilience

ROUNDS = 12


def run_clean(seed=11, parallel=0, rounds=ROUNDS):
    reader, log, metrics = build_fleet(seed=seed, parallel=parallel)
    report = reader.run_campaign(Command.READ_TEMPERATURE, rounds=rounds)
    return campaign_digest(report, log, metrics)


class TestResumeIdentity:
    def test_resume_from_every_checkpoint(self, tmp_path):
        """Interrupt anywhere; the continuation is byte-identical."""
        clean = run_clean()
        reader, log, metrics = build_fleet()
        reader.run_campaign(
            Command.READ_TEMPERATURE, rounds=ROUNDS,
            checkpoint_every=1, checkpoint_dir=tmp_path,
        )
        written = sorted(tmp_path.glob("checkpoint-*.json"))
        assert len(written) == ROUNDS - 1  # none after the final round
        for path in written:
            twin, tlog, tmetrics = build_fleet()
            report = twin.run_campaign(
                Command.READ_TEMPERATURE, rounds=ROUNDS, resume_from=path
            )
            assert campaign_digest(report, tlog, tmetrics) == clean, path.name

    def test_resume_accepts_a_loaded_document(self, tmp_path):
        clean = run_clean()
        reader, _, _ = build_fleet()
        reader.run_campaign(
            Command.READ_TEMPERATURE, rounds=ROUNDS,
            checkpoint_every=5, checkpoint_dir=tmp_path,
        )
        doc = read_checkpoint(checkpoint_path(tmp_path, 5))
        twin, tlog, tmetrics = build_fleet()
        report = twin.run_campaign(
            Command.READ_TEMPERATURE, rounds=ROUNDS, resume_from=doc
        )
        assert campaign_digest(report, tlog, tmetrics) == clean

    def test_parallel_resume_matches_sequential_clean(self, tmp_path):
        """Mode-mixing: checkpoint sequentially, resume in parallel."""
        clean = run_clean()
        reader, _, _ = build_fleet()
        reader.run_campaign(
            Command.READ_TEMPERATURE, rounds=ROUNDS,
            checkpoint_every=6, checkpoint_dir=tmp_path,
        )
        twin, tlog, tmetrics = build_fleet(parallel=2)
        report = twin.run_campaign(
            Command.READ_TEMPERATURE, rounds=ROUNDS,
            resume_from=checkpoint_path(tmp_path, 6),
        )
        assert campaign_digest(report, tlog, tmetrics) == clean

    def test_fatal_kill_then_resume(self, tmp_path):
        """The CampaignAbort drill: SIGKILL-equivalent, then continue."""
        clean = run_clean()
        reader, _, _ = build_fleet()
        install_worker_crash(reader, 0x21, rounds=(8,), fatal=True)
        with pytest.raises(CampaignAbort):
            reader.run_campaign(
                Command.READ_TEMPERATURE, rounds=ROUNDS,
                checkpoint_every=3, checkpoint_dir=tmp_path,
            )
        latest = latest_checkpoint(tmp_path)
        assert latest is not None and latest.name == "checkpoint-000006.json"
        twin, tlog, tmetrics = build_fleet()
        report = twin.run_campaign(
            Command.READ_TEMPERATURE, rounds=ROUNDS, resume_from=latest
        )
        assert campaign_digest(report, tlog, tmetrics) == clean


class TestGuards:
    def test_checkpoint_every_needs_a_directory(self):
        reader, _, _ = build_fleet()
        with pytest.raises(ValueError, match="checkpoint_dir"):
            reader.run_campaign(
                Command.READ_TEMPERATURE, rounds=3, checkpoint_every=1
            )

    def test_negative_checkpoint_every_refused(self):
        reader, _, _ = build_fleet()
        with pytest.raises(ValueError):
            reader.run_campaign(
                Command.READ_TEMPERATURE, rounds=3, checkpoint_every=-1
            )

    def test_fleet_mismatch_refused(self, tmp_path):
        reader, _, _ = build_fleet(n=4)
        reader.run_campaign(
            Command.READ_TEMPERATURE, rounds=6,
            checkpoint_every=3, checkpoint_dir=tmp_path,
        )
        other, _, _ = build_fleet(n=3)
        with pytest.raises(ValueError, match="checkpoint covers nodes"):
            other.run_campaign(
                Command.READ_TEMPERATURE, rounds=6,
                resume_from=checkpoint_path(tmp_path, 3),
            )

    def test_tampered_checkpoint_refused(self, tmp_path):
        from repro.resilience import CheckpointError

        reader, _, _ = build_fleet()
        reader.run_campaign(
            Command.READ_TEMPERATURE, rounds=6,
            checkpoint_every=3, checkpoint_dir=tmp_path,
        )
        path = checkpoint_path(tmp_path, 3)
        doc = json.loads(path.read_text())
        doc["state"]["round"] = 0
        path.write_text(json.dumps(doc))
        twin, _, _ = build_fleet()
        with pytest.raises(CheckpointError, match="integrity"):
            twin.run_campaign(
                Command.READ_TEMPERATURE, rounds=6, resume_from=path
            )

    def test_stateful_snapshot_needs_restorable_transport(self, tmp_path):
        """A checkpoint with transport state cannot silently restore
        into a fleet whose transports dropped the protocol."""
        reader, _, _ = build_fleet()
        reader.run_campaign(
            Command.READ_TEMPERATURE, rounds=6,
            checkpoint_every=3, checkpoint_dir=tmp_path,
        )
        twin, _, _ = build_fleet()
        for mac in twin._macs.values():
            inner = mac.transact
            mac.transact = lambda q, _inner=inner: _inner(q)  # opaque wrapper
        with pytest.raises(ValueError, match="transport"):
            twin.run_campaign(
                Command.READ_TEMPERATURE, rounds=6,
                resume_from=checkpoint_path(tmp_path, 3),
            )


class TestSnapshotShape:
    def test_snapshot_is_checkpoint_serialisable(self, tmp_path):
        reader, _, _ = build_fleet()
        reader.run_campaign(Command.READ_TEMPERATURE, rounds=4)
        state = reader.snapshot()
        path = write_checkpoint(tmp_path / "ck.json", state, round=4)
        doc = read_checkpoint(path)
        assert doc["state"] == json.loads(json.dumps(state, sort_keys=True))

    def test_snapshot_restore_snapshot_is_exact(self):
        reader, _, _ = build_fleet()
        reader.run_campaign(Command.READ_TEMPERATURE, rounds=5)
        state = json.loads(json.dumps(reader.snapshot(), sort_keys=True))
        twin, _, _ = build_fleet()
        twin.restore(state)
        assert json.dumps(twin.snapshot(), sort_keys=True) == json.dumps(
            reader.snapshot(), sort_keys=True
        )
