"""Tests for the composable, seeded fault injectors."""

import pytest

from repro.circuits import EnergyHarvester
from repro.faults import (
    BrownoutInjector,
    EventLog,
    GarbledReplyInjector,
    GilbertElliottInjector,
    NoiseBurstInjector,
    TransportError,
    TransportExceptionInjector,
)
from repro.node import PowerUpSimulator
from repro.piezo import Transducer


class OkResult:
    success = True


class OkTransport:
    def __init__(self):
        self.calls = 0

    def __call__(self, query):
        self.calls += 1
        return OkResult()


QUERY = object()  # injectors never look inside the query


class TestNoiseBurst:
    def test_deterministic_window(self):
        inner = OkTransport()
        inj = NoiseBurstInjector(inner, start=2, duration=3)
        outcomes = [inj(QUERY).success for _ in range(7)]
        assert outcomes == [True, True, False, False, False, True, True]
        assert inner.calls == 4  # burst transactions never reach the inner link

    def test_burst_result_shape(self):
        inj = NoiseBurstInjector(OkTransport(), start=0, duration=1, collapsed_snr_db=-7.5)
        result = inj(QUERY)
        assert not result.success
        assert result.powered_up
        assert result.snr_db == -7.5
        assert result.fault == "noise_burst"

    def test_stochastic_bursts_reproducible(self):
        def run(seed):
            inj = NoiseBurstInjector(
                OkTransport(), duration=2, burst_prob=0.3, seed=seed
            )
            return [inj(QUERY).success for _ in range(50)]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseBurstInjector(OkTransport(), duration=0)
        with pytest.raises(ValueError):
            NoiseBurstInjector(OkTransport(), burst_prob=1.5)
        with pytest.raises(TypeError):
            NoiseBurstInjector("not-callable")


class TestBrownout:
    def test_dark_interval(self):
        inj = BrownoutInjector(OkTransport(), at=1, dark_for=3)
        outcomes = [inj(QUERY) for _ in range(6)]
        assert [r.success for r in outcomes] == [True, False, False, False, True, True]
        assert all(not r.powered_up for r in outcomes[1:4])

    def test_from_energy_model(self):
        transducer = Transducer.from_cylinder_design()
        sim = PowerUpSimulator(EnergyHarvester(transducer))
        inj = BrownoutInjector.from_energy_model(
            OkTransport(),
            sim,
            600.0,  # strong illumination: recovery is possible
            transducer.resonance_hz,
            poll_period_s=0.5,
            at=0,
        )
        assert inj.dark_for >= 1
        assert not inj(QUERY).success  # dark right away

    def test_from_energy_model_unrecoverable_is_long(self):
        transducer = Transducer.from_cylinder_design()
        sim = PowerUpSimulator(EnergyHarvester(transducer))
        inj = BrownoutInjector.from_energy_model(
            OkTransport(), sim, 50.0, transducer.resonance_hz, poll_period_s=0.5, at=0
        )
        assert inj.dark_for >= 1000

    def test_recovery_time_zero_above_threshold(self):
        transducer = Transducer.from_cylinder_design()
        sim = PowerUpSimulator(EnergyHarvester(transducer))
        assert (
            sim.brownout_recovery_time(
                600.0, transducer.resonance_hz, from_v=sim.threshold_v + 0.1
            )
            == 0.0
        )


class TestGilbertElliott:
    def test_always_bad_always_lossy(self):
        inj = GilbertElliottInjector(
            OkTransport(),
            p_good_to_bad=1.0,
            p_bad_to_good=0.0,
            bad_loss=1.0,
            seed=0,
        )
        assert all(not inj(QUERY).success for _ in range(10))

    def test_good_channel_lossless(self):
        inj = GilbertElliottInjector(
            OkTransport(), p_good_to_bad=0.0, good_loss=0.0, seed=0
        )
        assert all(inj(QUERY).success for _ in range(10))

    def test_seeded_reproducibility(self):
        def run(seed):
            inj = GilbertElliottInjector(OkTransport(), seed=seed)
            return [inj(QUERY).success for _ in range(100)]

        assert run(3) == run(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottInjector(OkTransport(), bad_loss=-0.1)


class TestGarbled:
    def test_garbles_scheduled_transactions(self):
        inner = OkTransport()
        inj = GarbledReplyInjector(inner, at=(1,), seed=0)
        assert inj(QUERY).success
        garbled = inj(QUERY)
        assert not garbled.success
        assert not garbled.demod.success  # the CRC rejected it
        assert len(garbled.demod.packet) == 6
        # The exchange still happened (airtime was burned).
        assert inner.calls == 2

    def test_seeded_garbage_reproducible(self):
        def garbage(seed):
            inj = GarbledReplyInjector(OkTransport(), at=(0,), seed=seed)
            return inj(QUERY).demod.packet

        assert garbage(11) == garbage(11)


class TestTransportException:
    def test_raises_at_scheduled_index(self):
        inj = TransportExceptionInjector(OkTransport(), at=(1,))
        assert inj(QUERY).success
        with pytest.raises(TransportError):
            inj(QUERY)
        assert inj(QUERY).success

    def test_fault_logged(self):
        log = EventLog()
        inj = TransportExceptionInjector(OkTransport(), at=(0,), node=9, log=log)
        with pytest.raises(TransportError):
            inj(QUERY)
        faults = log.filter(node=9, kind="fault")
        assert len(faults) == 1
        assert ("injector", "transport_exception") in faults[0].detail


class TestComposition:
    def test_injectors_stack(self):
        """Brownout over noise burst over a clean link.

        Each injector counts its *own* transactions: the outer brownout
        swallows indices 0-1, so the inner noise injector (start=2)
        bursts on the outer stack's transactions 4-5.
        """
        inner = OkTransport()
        stack = BrownoutInjector(
            NoiseBurstInjector(inner, start=2, duration=2), at=0, dark_for=2
        )
        outcomes = [stack(QUERY) for _ in range(7)]
        faults = [getattr(r, "fault", None) for r in outcomes]
        assert faults[:2] == ["brownout", "brownout"]
        assert faults[4:6] == ["noise_burst", "noise_burst"]
        assert outcomes[2].success and outcomes[3].success and outcomes[6].success

    def test_fault_counters(self):
        inj = NoiseBurstInjector(OkTransport(), start=0, duration=3)
        for _ in range(5):
            inj(QUERY)
        assert inj.transactions == 5
        assert inj.faults_fired == 3
