"""Tests for the structured fault/recovery event log."""

import math

import pytest

from repro.faults import EventKind, EventLog


class TestRecording:
    def test_sequence_numbers_monotonic(self):
        log = EventLog()
        for t in range(3):
            log.record(t, 1, "fault", injector="noise_burst")
        assert [e.seq for e in log] == [0, 1, 2]

    def test_detail_keys_sorted_for_determinism(self):
        log = EventLog()
        event = log.record(0, 1, "state", to="DEGRADED", **{"from": "HEALTHY"})
        line = event.to_line()
        assert line.index("from=HEALTHY") < line.index("to=DEGRADED")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            EventLog().record(0, 1, "not-a-kind")

    def test_filter_by_node_and_kind(self):
        log = EventLog()
        log.record(0, 1, "fault")
        log.record(1, 2, "fault")
        log.record(2, 1, "retry")
        assert len(log.filter(node=1)) == 2
        assert len(log.filter(kind="fault")) == 2
        assert len(log.filter(node=1, kind=EventKind.RETRY)) == 1

    def test_dump_is_deterministic(self):
        def build():
            log = EventLog()
            log.record(0, 3, "fault", injector="brownout", dark_for=5)
            log.record(1.5, 3, "state", to="DEGRADED", **{"from": "HEALTHY"})
            return log.dump()

        assert build() == build()


class TestJsonl:
    def make_log(self):
        log = EventLog()
        log.record(0, 3, "fault", injector="brownout", dark_for=5)
        log.record(1.5, 3, "state", to="DEGRADED", **{"from": "HEALTHY"})
        log.record(2, 3, "retry")
        return log

    def test_round_trip_preserves_everything(self):
        log = self.make_log()
        restored = EventLog.from_jsonl(log.to_jsonl())
        assert [e.to_dict() for e in restored] == [e.to_dict() for e in log]
        # Derived views survive the round trip.
        assert restored.dump() == log.dump()
        assert len(restored.filter(kind="fault")) == 1

    def test_jsonl_is_deterministic(self):
        assert self.make_log().to_jsonl() == self.make_log().to_jsonl()

    def test_empty_log_round_trip(self):
        restored = EventLog.from_jsonl(EventLog().to_jsonl())
        assert len(restored) == 0


class TestFlushJsonl:
    """Streaming/append mode: only the unflushed tail hits the disk."""

    def test_incremental_flushes_equal_batch_dump(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog()
        log.record(0, 1, "fault", injector="noise_burst")
        assert log.flush_jsonl(path) == 1
        log.record(1, 1, "recovery")
        log.record(2, 2, "retry")
        assert log.flush_jsonl(path) == 2
        assert path.read_text() == log.to_jsonl()

    def test_flush_without_new_events_appends_nothing(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog()
        log.record(0, 1, "fault")
        log.flush_jsonl(path)
        before = path.read_text()
        assert log.flush_jsonl(path) == 0
        assert path.read_text() == before

    def test_round_trip_across_resume_boundaries(self, tmp_path):
        # The resume scenario: flush, die, restore the log from a
        # checkpoint snapshot in a NEW process, keep flushing to the
        # same file.  Line i of the file is event seq=i throughout, so
        # the interleaved cycles round-trip exactly.
        path = tmp_path / "events.jsonl"
        first = EventLog()
        first.record(0, 1, "fault", injector="noise_burst")
        first.record(1, 2, "state", to="DEGRADED", **{"from": "HEALTHY"})
        first.flush_jsonl(path)
        first.record(2, 2, "retry")
        first.flush_jsonl(path)

        resumed = EventLog.from_jsonl(first.to_jsonl())
        assert resumed.flush_jsonl(path) == 0    # restored == on disk
        resumed.record(3, 2, "recovery")
        resumed.record(4, 1, "probe")
        assert resumed.flush_jsonl(path) == 2

        final = EventLog.from_jsonl(path.read_text())
        assert [e.to_dict() for e in final] == [e.to_dict() for e in resumed]
        assert path.read_text() == resumed.to_jsonl()
        assert [e.seq for e in final] == [0, 1, 2, 3, 4]

    def test_divergent_file_refused(self, tmp_path):
        path = tmp_path / "events.jsonl"
        long_log = EventLog()
        for t in range(3):
            long_log.record(t, 1, "retry")
        long_log.flush_jsonl(path)
        short_log = EventLog()
        short_log.record(0, 1, "retry")
        with pytest.raises(ValueError, match="divergent"):
            short_log.flush_jsonl(path)

    def test_missing_file_gets_full_log(self, tmp_path):
        log = EventLog()
        log.record(0, 1, "fault")
        log.record(1, 1, "recovery")
        path = tmp_path / "deep" / "events.jsonl"
        assert log.flush_jsonl(path) == 2
        assert path.read_text() == log.to_jsonl()


class TestMetrics:
    def make_cycle_log(self):
        """HEALTHY until t=2, down (quarantined) until t=6, healthy to t=10."""
        log = EventLog()
        log.record(2, 7, "state", **{"from": "HEALTHY"}, to="QUARANTINED")
        log.record(6, 7, "state", **{"from": "QUARANTINED"}, to="HEALTHY")
        log.record(10, 7, "attempt")  # closes the observation window
        return log

    def test_state_intervals(self):
        log = self.make_cycle_log()
        intervals = log.state_intervals(7)
        assert intervals == [("QUARANTINED", 2.0, 6.0), ("HEALTHY", 6.0, 10.0)]

    def test_availability(self):
        log = self.make_cycle_log()
        # Observed from first transition (t=2) to end (t=10): 4 of 8 up.
        assert log.availability(7) == pytest.approx(0.5)

    def test_availability_no_transitions_is_one(self):
        log = EventLog()
        log.record(0, 1, "attempt")
        assert log.availability(1) == 1.0

    def test_mttr(self):
        log = self.make_cycle_log()
        assert log.mttr(7) == pytest.approx(4.0)

    def test_mttr_nan_without_a_complete_cycle(self):
        log = EventLog()
        log.record(2, 7, "state", **{"from": "HEALTHY"}, to="QUARANTINED")
        assert math.isnan(log.mttr(7))

    def test_degraded_counts_as_serving(self):
        log = EventLog()
        log.record(0, 1, "state", **{"from": "HEALTHY"}, to="DEGRADED")
        log.record(4, 1, "state", **{"from": "DEGRADED"}, to="HEALTHY")
        log.record(8, 1, "attempt")
        assert log.availability(1) == 1.0

    def test_node_report_counts(self):
        log = self.make_cycle_log()
        log.record(3, 7, "retry")
        log.record(4, 7, "exception")
        report = log.node_report(7)
        assert report["retries"] == 1
        assert report["exceptions"] == 1
        assert report["transitions"] == 2


class TestOutageEdges:
    """Zero-duration windows and campaigns that end mid-outage."""

    def test_zero_duration_window_ending_down_is_zero(self):
        # Only event: the node goes down at t=2; the default end_t
        # coincides with that transition, so the window has zero
        # duration — it must not round up to 100% available.
        log = EventLog()
        log.record(2, 7, "state", **{"from": "HEALTHY"}, to="QUARANTINED")
        assert log.availability(7) == 0.0

    def test_zero_duration_window_ending_up_is_one(self):
        log = EventLog()
        log.record(2, 7, "state", **{"from": "PROBING"}, to="HEALTHY")
        assert log.availability(7) == 1.0

    def test_campaign_ending_mid_outage_charges_the_tail(self):
        # Down at t=2, never repaired, observed through t=10: the open
        # outage is charged as downtime, not dropped.
        log = EventLog()
        log.record(2, 7, "state", **{"from": "HEALTHY"}, to="QUARANTINED")
        log.record(10, 7, "attempt")
        assert log.availability(7) == 0.0
        assert log.availability(7, end_t=12.0) == 0.0

    def test_open_outage_duration(self):
        log = EventLog()
        log.record(2, 7, "state", **{"from": "HEALTHY"}, to="QUARANTINED")
        log.record(10, 7, "attempt")
        assert log.open_outage(7) == pytest.approx(8.0)
        assert log.open_outage(7, end_t=15.0) == pytest.approx(13.0)

    def test_open_outage_none_after_repair(self):
        log = EventLog()
        log.record(2, 7, "state", **{"from": "HEALTHY"}, to="QUARANTINED")
        log.record(6, 7, "state", **{"from": "QUARANTINED"}, to="HEALTHY")
        log.record(10, 7, "attempt")
        assert log.open_outage(7) is None

    def test_open_outage_tracks_the_first_down_transition(self):
        # QUARANTINED -> PROBING is still down; the outage started at
        # the original departure, not the latest transition.
        log = EventLog()
        log.record(2, 7, "state", **{"from": "HEALTHY"}, to="QUARANTINED")
        log.record(6, 7, "state", **{"from": "QUARANTINED"}, to="PROBING")
        log.record(10, 7, "attempt")
        assert log.open_outage(7) == pytest.approx(8.0)

    def test_open_outage_none_without_transitions(self):
        log = EventLog()
        log.record(0, 7, "attempt")
        assert log.open_outage(7) is None

    def test_mttr_ignores_the_open_tail(self):
        # One completed 4-round cycle plus an open outage: MTTR only
        # averages the completed repair.
        log = EventLog()
        log.record(2, 7, "state", **{"from": "HEALTHY"}, to="QUARANTINED")
        log.record(6, 7, "state", **{"from": "QUARANTINED"}, to="HEALTHY")
        log.record(8, 7, "state", **{"from": "HEALTHY"}, to="QUARANTINED")
        log.record(20, 7, "attempt")
        assert log.mttr(7) == pytest.approx(4.0)
        assert log.open_outage(7) == pytest.approx(12.0)

    def test_node_report_surfaces_the_open_outage(self):
        log = EventLog()
        log.record(2, 7, "state", **{"from": "HEALTHY"}, to="QUARANTINED")
        log.record(10, 7, "attempt")
        report = log.node_report(7)
        assert report["open_outage"] == pytest.approx(8.0)
        log2 = EventLog()
        log2.record(0, 7, "attempt")
        assert log2.node_report(7)["open_outage"] is None
