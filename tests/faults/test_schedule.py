"""Tests for scripted fault scenarios."""

import pytest

from repro.faults import EventLog, FaultSchedule, ScheduledFaultInjector, TransportError


class OkResult:
    success = True


class OkTransport:
    def __init__(self):
        self.calls = 0

    def __call__(self, query):
        self.calls += 1
        return OkResult()


QUERY = object()


class TestFaultSchedule:
    def test_builder_chains(self):
        schedule = (
            FaultSchedule()
            .noise_burst(at=3, duration=4)
            .brownout(at=5, dark_for=10)
            .exception(at=7)
            .drop(at=0)
            .garble(at=1)
        )
        assert len(schedule) == 5
        assert schedule.horizon == 8

    def test_actions_at(self):
        schedule = FaultSchedule().drop(at=2).garble(at=2)
        actions = [a for a, _ in schedule.actions_at(2)]
        assert actions == ["drop", "garble"]
        assert schedule.actions_at(3) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule().drop(at=-1)
        with pytest.raises(ValueError):
            FaultSchedule().brownout(at=0, dark_for=0)
        with pytest.raises(ValueError):
            FaultSchedule().noise_burst(at=0, duration=0)


class TestScheduledInjector:
    def test_point_faults(self):
        schedule = FaultSchedule().drop(at=1).garble(at=3).exception(at=5)
        inj = ScheduledFaultInjector(OkTransport(), schedule)
        assert inj(QUERY).success
        assert inj(QUERY).fault == "drop"
        assert inj(QUERY).success
        garbled = inj(QUERY)
        assert garbled.fault == "garbled" and not garbled.demod.success
        assert inj(QUERY).success
        with pytest.raises(TransportError):
            inj(QUERY)

    def test_windows_persist(self):
        schedule = FaultSchedule().brownout(at=1, dark_for=3)
        inj = ScheduledFaultInjector(OkTransport(), schedule)
        outcomes = [inj(QUERY) for _ in range(6)]
        assert [r.success for r in outcomes] == [True, False, False, False, True, True]

    def test_severity_ordering(self):
        """Exception beats brownout beats noise on the same transaction."""
        schedule = (
            FaultSchedule()
            .noise_burst(at=0, duration=2)
            .brownout(at=0, dark_for=1)
            .exception(at=0)
        )
        inj = ScheduledFaultInjector(OkTransport(), schedule)
        with pytest.raises(TransportError):
            inj(QUERY)
        # Transaction 1: the noise window still applies (brownout ended).
        assert inj(QUERY).fault == "noise_burst"

    def test_deterministic_without_seed(self):
        def run():
            schedule = FaultSchedule().brownout(at=1, dark_for=2).garble(at=4)
            log = EventLog()
            inj = ScheduledFaultInjector(OkTransport(), schedule, node=3, log=log)
            for _ in range(6):
                inj(QUERY)
            return log.dump()

        assert run() == run()
