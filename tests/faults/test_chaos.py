"""The scripted chaos acceptance scenario.

Brownout + noise burst + transport exceptions across a 3-node network:
the full :class:`ReaderController` polling campaign must complete with
no uncaught exceptions, quarantine the dead node, downgrade the
degraded node's bitrate, and drive the complete
HEALTHY -> DEGRADED -> QUARANTINED -> PROBING -> HEALTHY cycle — all
reproducibly (same seed => byte-identical event log).
"""

import pytest

from repro.faults import (
    BrownoutInjector,
    EventLog,
    NoiseBurstInjector,
    TransportExceptionInjector,
)
from repro.net import (
    BITRATE_TABLE,
    Command,
    HealthPolicy,
    ReaderController,
    Response,
    RetryPolicy,
)

pytestmark = pytest.mark.faults


class FakeLinkResult:
    def __init__(self, packet):
        self.success = True

        class Demod:
            pass

        self.demod = Demod()
        self.demod.packet = packet
        self.demod.success = True


class GoodNode:
    """Answers every query correctly (firmware-less, deterministic stub)."""

    def __init__(self, address, temperature_c=20.0):
        self.address = address
        self.temperature_c = temperature_c
        self.bitrate = None

    def __call__(self, query):
        if query.command is Command.SET_BITRATE:
            self.bitrate = BITRATE_TABLE[query.argument]
            response = Response(source=self.address, command=query.command)
        elif query.command is Command.READ_TEMPERATURE:
            raw = int((self.temperature_c + 100.0) * 100.0)
            response = Response(
                source=self.address,
                command=query.command,
                data=bytes([(raw >> 8) & 0xFF, raw & 0xFF]),
            )
        else:
            response = Response(source=self.address, command=query.command)
        return FakeLinkResult(response.to_packet())


def run_scenario(seed):
    """Build the 3-node chaos campaign; returns (reader, report)."""
    log = EventLog()
    # Node 1: reader-side transport raises twice mid-campaign.
    node1 = TransportExceptionInjector(
        GoodNode(1), at=(5, 9), node=1, log=log, seed=seed
    )
    # Node 2: a noise burst collapses SNR for six transactions.
    node2 = NoiseBurstInjector(
        GoodNode(2), start=3, duration=6, node=2, log=log, seed=seed
    )
    # Node 3: supercap dips below threshold; dark for 16 transactions.
    node3 = BrownoutInjector(
        GoodNode(3), at=1, dark_for=16, node=3, log=log, seed=seed
    )
    reader = ReaderController(
        {1: node1, 2: node2, 3: node3},
        retry_policy=RetryPolicy(
            max_retries=1, base_backoff_s=0.1, jitter=0.25, seed=seed
        ),
        health_policy=HealthPolicy(
            degrade_after=2,
            quarantine_after=4,
            recover_after=2,
            probe_backoff_rounds=2,
        ),
        log=log,
    )
    for addr in (1, 2, 3):
        assert reader.set_bitrate(addr, 2_000.0)
    report = reader.run_campaign(Command.READ_TEMPERATURE, rounds=12)
    return reader, report


class TestChaosCampaign:
    def test_campaign_completes_without_uncaught_exceptions(self):
        reader, report = run_scenario(seed=0)
        assert report["rounds"] == 12
        # Transport exceptions were contained, not propagated.
        assert report["nodes"][1]["exceptions"] == 2
        assert report["nodes"][1]["health"] == "HEALTHY"

    def test_degraded_node_bitrate_downgraded(self):
        reader, report = run_scenario(seed=0)
        # Node 2 entered DEGRADED during the burst and was stepped one
        # rung down the Fig. 8 ladder (2000 -> 1000 bit/s), acknowledged
        # once the burst cleared.
        assert reader.nodes[2].bitrate == 1_000.0
        states = [
            dict(e.detail)["to"]
            for e in reader.log.filter(node=2, kind="state")
        ]
        assert "DEGRADED" in states
        assert states[-1] == "HEALTHY"
        downgrades = [
            e
            for e in reader.log.filter(node=2, kind="bitrate")
            if dict(e.detail).get("acked") == "True"
        ]
        assert len(downgrades) == 1

    def test_dead_node_quarantined_probed_and_recovered(self):
        reader, report = run_scenario(seed=0)
        states = [
            dict(e.detail)["to"]
            for e in reader.log.filter(node=3, kind="state")
        ]
        # The full resilience cycle, in order.
        cycle = ["DEGRADED", "QUARANTINED", "PROBING", "HEALTHY"]
        it = iter(states)
        assert all(s in it for s in cycle), f"cycle {cycle} not in {states}"
        assert report["nodes"][3]["health"] == "HEALTHY"
        # Quarantine saved airtime: rounds 4 and 6-8 sent nothing to node 3.
        probes = reader.log.filter(node=3, kind="probe")
        assert len(probes) == 2
        # Availability dipped and MTTR is finite.
        assert report["nodes"][3]["availability"] < 1.0
        assert report["nodes"][3]["mttr_rounds"] == pytest.approx(8.0)

    def test_healthy_node_unaffected(self):
        reader, report = run_scenario(seed=0)
        assert report["nodes"][1]["readings"] == 12
        assert reader.nodes[1].bitrate == 2_000.0

    def test_same_seed_byte_identical_event_log(self):
        reader_a, _ = run_scenario(seed=42)
        reader_b, _ = run_scenario(seed=42)
        dump_a = reader_a.log.dump()
        dump_b = reader_b.log.dump()
        assert dump_a.encode() == dump_b.encode()
        assert len(dump_a) > 0

    def test_reports_are_reproducible(self):
        _, report_a = run_scenario(seed=7)
        _, report_b = run_scenario(seed=7)
        # repr-compare: a healthy node's MTTR is nan, and nan != nan.
        assert repr(report_a) == repr(report_b)
