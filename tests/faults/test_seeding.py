"""RNG seeding audit: every stochastic module must be reproducible.

The chaos tests are only as good as their determinism: each stochastic
component (ambient noise, fading, fault injectors, retry jitter) must
accept an explicit ``seed`` (or ``rng``) and produce identical draws for
identical seeds.
"""

import numpy as np

from repro.acoustics.fading import FadingProcess
from repro.acoustics.noise import AmbientNoiseModel
from repro.faults import GilbertElliottInjector, NoiseBurstInjector
from repro.net import RetryPolicy


class OkResult:
    success = True


def ok_transport(query):
    return OkResult()


class TestAmbientNoiseSeeding:
    def test_same_seed_same_waveform(self):
        a = AmbientNoiseModel(spectrum="flat", flat_level_db=60.0, seed=5)
        b = AmbientNoiseModel(spectrum="flat", flat_level_db=60.0, seed=5)
        np.testing.assert_array_equal(a.generate(512, 96_000.0), b.generate(512, 96_000.0))

    def test_different_seed_differs(self):
        a = AmbientNoiseModel(spectrum="flat", flat_level_db=60.0, seed=5)
        b = AmbientNoiseModel(spectrum="flat", flat_level_db=60.0, seed=6)
        assert not np.array_equal(a.generate(512, 96_000.0), b.generate(512, 96_000.0))


class TestFadingSeeding:
    def test_same_seed_same_gain_series(self):
        a = FadingProcess(seed=9)
        b = FadingProcess(seed=9)
        np.testing.assert_array_equal(
            a.gain_series(256, 1_000.0), b.gain_series(256, 1_000.0)
        )


class TestInjectorSeeding:
    def test_rng_can_be_shared(self):
        rng = np.random.default_rng(3)
        inj = GilbertElliottInjector(ok_transport, rng=rng)
        assert inj.rng is rng

    def test_stochastic_injectors_reproducible(self):
        def run(seed):
            ge = GilbertElliottInjector(ok_transport, seed=seed)
            nb = NoiseBurstInjector(ge, duration=3, burst_prob=0.2, seed=seed)
            return [nb(None).success for _ in range(200)]

        assert run(13) == run(13)


class TestRetryJitterSeeding:
    def test_same_seed_same_backoffs(self):
        a = RetryPolicy(jitter=0.5, seed=21)
        b = RetryPolicy(jitter=0.5, seed=21)
        assert [a.backoff_s(i) for i in range(10)] == [
            b.backoff_s(i) for i in range(10)
        ]
