"""Deterministic-merge regression tests.

The parallel reader replays per-node staging logs into the shared
sinks; any merge that depends on operand order or insertion order
would make parallel campaigns diverge from sequential ones.  These
pin the ordering contracts.
"""

from repro.faults import EventLog
from repro.faults.events import EventKind


def _log_with(events):
    log = EventLog()
    for t, node, kind in events:
        log.record(t, node, kind)
    return log


class TestEventLogMerge:
    def test_merge_orders_by_time_node_seq(self):
        a = _log_with([(2.0, 1, "retry"), (1.0, 3, "fault")])
        b = _log_with([(1.0, 2, "attempt")])
        merged = a.merge(b)
        assert [(e.t, e.node) for e in merged] == [
            (1.0, 2), (1.0, 3), (2.0, 1)
        ]
        # Renumbered densely from zero.
        assert [e.seq for e in merged] == [0, 1, 2]

    def test_merge_commutes_with_equal_timestamps(self):
        # The regression: parallel-mode merges previously depended on
        # which operand recorded first.  With equal t the node address
        # breaks the tie, so operand order must not matter.
        a = _log_with([(5.0, 4, "retry"), (5.0, 2, "retry")])
        b = _log_with([(5.0, 3, "fault"), (5.0, 1, "attempt")])
        assert a.merge(b).to_lines() == b.merge(a).to_lines()

    def test_merge_leaves_operands_untouched(self):
        a = _log_with([(1.0, 1, "fault")])
        b = _log_with([(0.5, 2, "retry")])
        a.merge(b)
        assert len(a) == 1 and len(b) == 1
        assert a.events[0].kind is EventKind.FAULT
        assert a.events[0].seq == 0

    def test_merge_does_not_fire_metrics(self):
        class CountingRegistry:
            def __init__(self):
                self.incs = 0

            def counter(self, name, **labels):
                registry = self

                class C:
                    def inc(self, amount=1.0):
                        registry.incs += 1

                return C()

        registry = CountingRegistry()
        a = EventLog(metrics=registry)
        a.record(1.0, 1, "fault")
        before = registry.incs
        a.merge(_log_with([(2.0, 2, "retry")]))
        assert registry.incs == before

    def test_merge_several_operands(self):
        logs = [
            _log_with([(float(t), t, "attempt")]) for t in (3, 1, 2)
        ]
        merged = logs[0].merge(*logs[1:])
        assert [e.node for e in merged] == [1, 2, 3]

    def test_seq_breaks_exact_ties_stably(self):
        a = EventLog()
        a.record(1.0, 7, "retry", attempt=1)
        a.record(1.0, 7, "retry", attempt=2)
        merged = a.merge(EventLog())
        details = [dict(e.detail)["attempt"] for e in merged]
        assert details == ["1", "2"]
