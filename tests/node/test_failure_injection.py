"""Failure-injection tests: the node under faults.

A battery-free platform lives or dies by how it degrades: peripheral
faults, brownouts mid-exchange, and corrupted downlinks must leave the
node silent (so the reader's CRC/retry machinery handles it) rather than
replying with garbage.
"""

import numpy as np
import pytest

from repro.net.messages import Command, Query
from repro.node import FirmwareState, PABNode
from repro.node.node import Environment
from repro.sensing.i2c import I2CError
from repro.sensing.pressure import MS5837, WaterColumn


class TestPeripheralFaults:
    def make_powered_node(self):
        node = PABNode(address=7)
        node.force_power(True)
        return node

    def test_pressure_sensor_detached_mid_operation(self):
        """I2C NACK during a conversion leaves the node silent, not crashed."""
        node = self.make_powered_node()
        # First read succeeds.
        assert node.respond(
            Query(destination=7, command=Command.READ_PRESSURE_TEMP)
        ) is not None
        node.firmware.response_sent()
        # The sensor falls off the bus.
        node.i2c.detach(MS5837.address)
        response = node.respond(
            Query(destination=7, command=Command.READ_PRESSURE_TEMP)
        )
        assert response is None
        # The node is still alive and can answer other queries.
        assert node.firmware.state is FirmwareState.IDLE
        assert node.respond(Query(destination=7, command=Command.PING)) is not None

    def test_sensor_fault_does_not_leak_i2c_error(self):
        node = self.make_powered_node()
        node.i2c.detach(MS5837.address)
        try:
            node.respond(Query(destination=7, command=Command.READ_PRESSURE_TEMP))
        except I2CError:
            pytest.fail("I2C fault leaked out of the firmware")

    def test_reattached_sensor_recovers(self):
        node = self.make_powered_node()
        node.i2c.detach(MS5837.address)
        assert node.respond(
            Query(destination=7, command=Command.READ_PRESSURE_TEMP)
        ) is None
        node.i2c.attach(MS5837(node.environment.water))
        # The driver re-initialises (reset + PROM) transparently.
        node.firmware.pressure_driver._prom = None
        assert node.respond(
            Query(destination=7, command=Command.READ_PRESSURE_TEMP)
        ) is not None


class TestBrownout:
    def test_brownout_mid_response(self):
        node = PABNode(address=7)
        node.force_power(True)
        response = node.respond(Query(destination=7, command=Command.PING))
        assert response is not None
        assert node.firmware.state is FirmwareState.RESPONDING
        # The supply collapses before the reply finishes.
        node.force_power(False)
        assert node.firmware.state is FirmwareState.OFF
        # Everything is refused until the node powers up again.
        assert node.respond(Query(destination=7, command=Command.PING)) is None
        assert node.receive_query(np.ones(10), 96_000.0) is None

    def test_reboot_after_brownout(self):
        node = PABNode(address=7)
        node.force_power(True)
        node.force_power(False)
        f = node.channel_frequency_hz
        assert node.try_power_up(600.0, f)
        assert node.respond(Query(destination=7, command=Command.PING)) is not None


class TestCorruptedDownlink:
    def test_flipped_bits_yield_no_query(self):
        node = PABNode(address=7)
        node.force_power(True)
        query = Query(destination=7, command=Command.PING)
        from repro.node.firmware import DOWNLINK_FORMAT

        bits = query.to_packet().to_bits(DOWNLINK_FORMAT).copy()
        bits[len(DOWNLINK_FORMAT.preamble) + 3] ^= 1  # corrupt the header
        assert node.firmware.parse_query_bits(bits) is None

    def test_unknown_command_ignored(self):
        from repro.dsp.packets import Packet
        from repro.node.firmware import DOWNLINK_FORMAT

        node = PABNode(address=7)
        node.force_power(True)
        rogue = Packet(address=7, payload=b"\x77\x00")  # opcode 0x77 unknown
        bits = rogue.to_bits(DOWNLINK_FORMAT)
        assert node.firmware.parse_query_bits(bits) is None

    def test_truncated_downlink_ignored(self):
        node = PABNode(address=7)
        node.force_power(True)
        query = Query(destination=7, command=Command.PING)
        from repro.node.firmware import DOWNLINK_FORMAT

        bits = query.to_packet().to_bits(DOWNLINK_FORMAT)[:20]
        assert node.firmware.parse_query_bits(bits) is None
