"""Tests for the MCU firmware state machine and the composed PABNode."""

import numpy as np
import pytest

from repro.dsp.packets import PacketFormat, PREAMBLE_BANK
from repro.dsp.pwm import pwm_encode
from repro.net.addresses import NodeAddress
from repro.net.messages import BITRATE_TABLE, Command, Query, Response
from repro.node import (
    FirmwareConfig,
    FirmwareState,
    NodeFirmware,
    PABNode,
    PowerState,
)
from repro.node.firmware import DOWNLINK_FORMAT
from repro.node.node import Environment
from repro.sensing.pressure import ATMOSPHERE_MBAR, WaterColumn


def make_firmware(**kw):
    return NodeFirmware(FirmwareConfig(address=NodeAddress(7)), **kw)


class TestLifecycle:
    def test_starts_off(self):
        fw = make_firmware()
        assert fw.state is FirmwareState.OFF
        assert fw.power_state is PowerState.COLD

    def test_boot_and_brownout(self):
        fw = make_firmware()
        fw.boot()
        assert fw.state is FirmwareState.IDLE
        fw.brown_out()
        assert fw.state is FirmwareState.OFF

    def test_off_firmware_ignores_everything(self):
        fw = make_firmware()
        assert fw.handle_query(Query(destination=7, command=Command.PING)) is None
        assert fw.decode_downlink_envelope(np.ones(100), 96_000.0) is None


class TestQueryHandling:
    def test_ping(self):
        fw = make_firmware()
        fw.boot()
        resp = fw.handle_query(Query(destination=7, command=Command.PING))
        assert resp == Response(source=7, command=Command.PING)
        assert fw.state is FirmwareState.RESPONDING
        fw.response_sent()
        assert fw.state is FirmwareState.IDLE

    def test_address_filtering(self):
        fw = make_firmware()
        fw.boot()
        assert fw.handle_query(Query(destination=9, command=Command.PING)) is None
        assert fw.queries_ignored == 1

    def test_broadcast_accepted(self):
        fw = make_firmware()
        fw.boot()
        assert fw.handle_query(Query(destination=0xFF, command=Command.PING))

    def test_set_bitrate(self):
        fw = make_firmware()
        fw.boot()
        resp = fw.handle_query(
            Query(destination=7, command=Command.SET_BITRATE, argument=6)
        )
        assert resp is not None
        assert fw.config.bitrate == BITRATE_TABLE[6]

    def test_set_bitrate_bad_code(self):
        fw = make_firmware()
        fw.boot()
        resp = fw.handle_query(
            Query(destination=7, command=Command.SET_BITRATE, argument=200)
        )
        assert resp is None

    def test_set_resonance_mode(self):
        fw = make_firmware(n_resonance_modes=2)
        fw.boot()
        resp = fw.handle_query(
            Query(destination=7, command=Command.SET_RESONANCE_MODE, argument=1)
        )
        assert resp is not None
        assert fw.config.resonance_mode == 1

    def test_set_resonance_mode_out_of_range(self):
        fw = make_firmware(n_resonance_modes=1)
        fw.boot()
        assert fw.handle_query(
            Query(destination=7, command=Command.SET_RESONANCE_MODE, argument=3)
        ) is None

    def test_sensor_command_without_sensor(self):
        fw = make_firmware()  # no sensors attached
        fw.boot()
        assert fw.handle_query(Query(destination=7, command=Command.READ_PH)) is None

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            NodeFirmware(FirmwareConfig(address=NodeAddress(1)), n_resonance_modes=0)
        with pytest.raises(ValueError):
            NodeFirmware(
                FirmwareConfig(address=NodeAddress(1), resonance_mode=2),
                n_resonance_modes=1,
            )


class TestDownlinkDecode:
    def test_clean_envelope_roundtrip(self):
        fw = make_firmware()
        fw.boot()
        query = Query(destination=7, command=Command.PING)
        bits = query.to_packet().to_bits(DOWNLINK_FORMAT)
        fs = 96_000.0
        env = pwm_encode(bits, fw.config.pwm_code, fs)
        decoded = fw.decode_downlink_envelope(env, fs)
        assert decoded == query

    def test_envelope_with_noise(self):
        fw = make_firmware()
        fw.boot()
        query = Query(destination=7, command=Command.READ_PH, argument=0)
        bits = query.to_packet().to_bits(DOWNLINK_FORMAT)
        fs = 96_000.0
        env = pwm_encode(bits, fw.config.pwm_code, fs)
        env = env + np.random.default_rng(0).normal(0, 0.05, len(env))
        assert fw.decode_downlink_envelope(env, fs) == query

    def test_garbage_returns_none(self):
        fw = make_firmware()
        fw.boot()
        rng = np.random.default_rng(1)
        assert fw.decode_downlink_envelope(rng.normal(size=5000), 96_000.0) is None

    def test_parse_query_with_leading_noise_bits(self):
        fw = make_firmware()
        fw.boot()
        query = Query(destination=7, command=Command.PING)
        bits = query.to_packet().to_bits(DOWNLINK_FORMAT)
        noisy = np.concatenate([[1, 0, 0, 1, 1], bits])
        assert fw.parse_query_bits(noisy) == query


class TestUplink:
    def test_chips_are_fm0(self):
        fw = make_firmware()
        fw.boot()
        resp = Response(source=7, command=Command.PING)
        chips = fw.build_uplink_chips(resp)
        assert set(np.unique(chips)) <= {0, 1}
        bits = resp.to_packet().to_bits(fw.config.uplink_format)
        assert len(chips) == 2 * len(bits)

    def test_custom_uplink_format(self):
        cfg = FirmwareConfig(
            address=NodeAddress(7),
            uplink_format=PacketFormat(preamble=PREAMBLE_BANK[1]),
        )
        fw = NodeFirmware(cfg)
        fw.boot()
        chips = fw.build_uplink_chips(Response(source=7, command=Command.PING))
        assert len(chips) == 2 * (13 + 8 + 8 + 8 + 16)


class TestPABNode:
    def make_node(self, **kw):
        env = Environment(
            water=WaterColumn(depth_m=0.5, temperature_c=21.0), true_ph=7.4
        )
        return PABNode(address=7, environment=env, **kw)

    def test_initial_state(self):
        node = self.make_node()
        assert not node.is_powered
        assert node.channel_frequency_hz == pytest.approx(15_000.0, rel=0.01)

    def test_force_power(self):
        node = self.make_node()
        node.force_power(True)
        assert node.is_powered
        node.force_power(False)
        assert not node.is_powered

    def test_power_up_from_field(self):
        node = self.make_node()
        f = node.channel_frequency_hz
        assert node.try_power_up(600.0, f)
        assert not node.try_power_up(50.0, f)

    def test_unpowered_node_is_silent(self):
        node = self.make_node()
        assert node.respond(Query(destination=7, command=Command.PING)) is None
        assert node.receive_query(np.ones(100), 96_000.0) is None

    def test_ping_roundtrip(self):
        node = self.make_node()
        node.force_power(True)
        resp = node.respond(Query(destination=7, command=Command.PING))
        assert resp.source == 7

    def test_ph_sensing_through_node(self):
        node = self.make_node()
        node.force_power(True)
        resp = node.respond(Query(destination=7, command=Command.READ_PH))
        reading = resp.reading()
        assert reading.kind == "ph"
        assert reading.values[0] == pytest.approx(7.4, abs=0.15)

    def test_pressure_sensing_through_node(self):
        node = self.make_node()
        node.force_power(True)
        resp = node.respond(
            Query(destination=7, command=Command.READ_PRESSURE_TEMP)
        )
        pressure, temperature = resp.reading().values
        expected = ATMOSPHERE_MBAR + 98.1 * 0.5
        assert pressure == pytest.approx(expected, rel=0.01)
        assert temperature == pytest.approx(21.0, abs=0.2)

    def test_temperature_sensing_through_node(self):
        node = self.make_node()
        node.force_power(True)
        resp = node.respond(Query(destination=7, command=Command.READ_TEMPERATURE))
        assert resp.reading().values[0] == pytest.approx(21.0, abs=1.0)

    def test_reflection_trajectory(self):
        node = self.make_node()
        gamma_a, gamma_r, traj = node.reflection_trajectory(
            np.array([0, 1, 0]), node.channel_frequency_hz
        )
        assert abs(gamma_r) > abs(gamma_a)
        assert traj[1] == gamma_r
        assert traj[0] == traj[2] == gamma_a

    def test_multi_mode_node(self):
        node = PABNode(address=3, channel_frequencies_hz=(15_000.0, 18_000.0))
        assert len(node.bank) == 2
        node.force_power(True)
        node.respond(
            Query(destination=3, command=Command.SET_RESONANCE_MODE, argument=1)
        )
        assert node.channel_frequency_hz == 18_000.0

    def test_repr(self):
        assert "node-0x07" in repr(self.make_node())
