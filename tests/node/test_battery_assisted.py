"""Tests for the battery-assisted backscatter node (paper future work)."""

import numpy as np
import pytest

from repro.node import BatteryAssistedNode, PABNode, PowerState


def make_node(**kw):
    return BatteryAssistedNode(address=5, **kw)


class TestPowering:
    def test_alive_from_start(self):
        node = make_node()
        assert node.is_powered

    def test_powers_up_in_any_field(self):
        """The battery removes the harvesting constraint entirely."""
        node = make_node()
        assert node.try_power_up(0.001, node.channel_frequency_hz)
        free = PABNode(address=6)
        assert not free.try_power_up(0.001, free.channel_frequency_hz)

    def test_dies_when_battery_exhausted(self):
        node = make_node(battery_capacity_j=1e-3)
        node.drain(10_000.0, PowerState.BACKSCATTER, bitrate=1_000.0)
        assert node.battery_energy_j == 0.0
        assert not node.is_powered
        assert not node.try_power_up(1_000.0, node.channel_frequency_hz)

    def test_drain_accounting(self):
        node = make_node(battery_capacity_j=1.0)
        before = node.battery_energy_j
        node.drain(100.0, PowerState.IDLE)
        spent = before - node.battery_energy_j
        assert spent == pytest.approx(
            100.0 * node.power_model.power_w(PowerState.IDLE), rel=1e-6
        )

    def test_amplifier_power_counted_during_backscatter(self):
        node = make_node(battery_capacity_j=1.0, reflection_gain=4.0)
        n2 = make_node(battery_capacity_j=1.0, reflection_gain=1.0)
        node.drain(100.0, PowerState.BACKSCATTER, bitrate=1_000.0)
        n2.drain(100.0, PowerState.BACKSCATTER, bitrate=1_000.0)
        assert node.battery_energy_j < n2.battery_energy_j

    def test_lifetime_estimate(self):
        node = make_node(battery_capacity_j=100.0)
        life = node.expected_lifetime_s(duty_cycle=0.01)
        # ~100 J at ~280 uW mean draw: days-scale on a coin cell.
        assert life > 1e5
        assert node.expected_lifetime_s(duty_cycle=1.0) < life

    def test_validation(self):
        with pytest.raises(ValueError):
            make_node(reflection_gain=0.5)
        with pytest.raises(ValueError):
            make_node(battery_capacity_j=0.0)
        with pytest.raises(ValueError):
            make_node().drain(-1.0, PowerState.IDLE)
        with pytest.raises(ValueError):
            make_node().expected_lifetime_s(duty_cycle=2.0)


class TestAmplifiedReflection:
    def test_modulation_amplified(self):
        """The active stage multiplies the modulated reflection."""
        passive = PABNode(address=1)
        active = make_node(reflection_gain=4.0)
        f = passive.channel_frequency_hz
        chips = np.array([0, 1])
        _ga_p, gr_p, traj_p = passive.reflection_trajectory(chips, f)
        _ga_a, gr_a, traj_a = active.reflection_trajectory(chips, f)
        depth_passive = abs(traj_p[1] - traj_p[0])
        depth_active = abs(traj_a[1] - traj_a[0])
        assert depth_active == pytest.approx(4.0 * depth_passive, rel=1e-6)

    def test_absorb_state_unchanged(self):
        passive = PABNode(address=1)
        active = make_node()
        f = passive.channel_frequency_hz
        ga_p, _g, _t = passive.reflection_trajectory(np.array([0]), f)
        ga_a, _g2, _t2 = active.reflection_trajectory(np.array([0]), f)
        assert ga_a == ga_p

    def test_unit_gain_matches_passive(self):
        passive = PABNode(address=1)
        active = make_node(reflection_gain=1.0)
        f = passive.channel_frequency_hz
        chips = np.array([0, 1, 1, 0])
        _a, _b, traj_p = passive.reflection_trajectory(chips, f)
        _c, _d, traj_a = active.reflection_trajectory(chips, f)
        np.testing.assert_allclose(traj_a, traj_p)


class TestRangeExtension:
    def test_battery_assisted_works_where_battery_free_cannot(self):
        """The future-work claim: battery assistance extends the operating
        range beyond the power-up-limited envelope."""
        from repro.acoustics import POOL_B, Position
        from repro.core import BackscatterLink, Projector
        from repro.net.messages import Command, Query
        from repro.piezo import Transducer

        transducer = Transducer.from_cylinder_design()
        f = transducer.resonance_hz
        # A weak projector: too weak to power a battery-free node at 6 m.
        def build(node):
            projector = Projector(
                transducer=transducer, drive_voltage_v=20.0, carrier_hz=f
            )
            return BackscatterLink(
                POOL_B, projector, Position(0.3, 0.6, 0.5),
                node, Position(6.3, 0.6, 0.5), Position(1.0, 0.6, 0.5),
            )

        free = PABNode(address=1, channel_frequencies_hz=(f,), bitrate=200.0)
        result_free = build(free).run_query(
            Query(destination=1, command=Command.PING)
        )
        assert not result_free.powered_up

        assisted = BatteryAssistedNode(
            address=1, channel_frequencies_hz=(f,), bitrate=200.0,
            reflection_gain=4.0,
        )
        result_assisted = build(assisted).run_query(
            Query(destination=1, command=Command.PING)
        )
        assert result_assisted.powered_up
        assert result_assisted.query_decoded
        assert result_assisted.success
