"""Tests for the node power model (paper Sec. 6.4 / Fig. 11)."""

import pytest
from hypothesis import given, strategies as st

from repro.constants import MEASURED_IDLE_POWER_W
from repro.node import NodePowerModel, PowerState
from repro.node.power import MEASUREMENT_SUPPLY_V


class TestCurrents:
    def test_cold_draws_nothing(self):
        assert NodePowerModel().current_a(PowerState.COLD) == 0.0

    def test_idle_matches_paper_measurement(self):
        """The model is calibrated to the paper's 124 uW idle figure."""
        p = NodePowerModel().power_w(PowerState.IDLE)
        assert p == pytest.approx(MEASURED_IDLE_POWER_W, rel=1e-6)

    def test_backscatter_near_500uw(self):
        """Fig. 11: ~500 uW while backscattering."""
        for bitrate in (100.0, 1_000.0, 3_000.0):
            p = NodePowerModel().power_w(PowerState.BACKSCATTER, bitrate=bitrate)
            assert 400e-6 < p < 650e-6

    def test_backscatter_grows_slowly_with_bitrate(self):
        m = NodePowerModel()
        p100 = m.power_w(PowerState.BACKSCATTER, bitrate=100.0)
        p3000 = m.power_w(PowerState.BACKSCATTER, bitrate=3_000.0)
        assert p3000 > p100
        assert (p3000 - p100) / p100 < 0.2  # gentle trend, as in Fig. 11

    def test_ordering_of_states(self):
        m = NodePowerModel()
        idle = m.power_w(PowerState.IDLE)
        decode = m.power_w(PowerState.DECODING)
        backscatter = m.power_w(PowerState.BACKSCATTER, bitrate=1_000.0)
        sensing = m.power_w(PowerState.SENSING)
        assert idle < decode < backscatter < sensing

    def test_validation(self):
        m = NodePowerModel()
        with pytest.raises(ValueError):
            m.current_a(PowerState.IDLE, bitrate=-1.0)
        with pytest.raises(ValueError):
            m.current_a(PowerState.IDLE, supply_v=0.0)
        with pytest.raises(ValueError):
            NodePowerModel(mcu_active_a=-1.0)

    @given(bitrate=st.floats(0.0, 10_000.0))
    def test_power_scales_with_supply(self, bitrate):
        m = NodePowerModel()
        p1 = m.power_w(PowerState.BACKSCATTER, bitrate=bitrate, supply_v=1.8)
        p2 = m.power_w(PowerState.BACKSCATTER, bitrate=bitrate, supply_v=3.6)
        assert p2 == pytest.approx(2.0 * p1)


class TestFig11Sweep:
    def test_sweep_structure(self):
        sweep = NodePowerModel().fig11_sweep([500.0, 1_000.0])
        assert set(sweep) == {"idle", 500.0, 1_000.0}
        assert sweep["idle"] < sweep[500.0]

    def test_supply_voltage_constant(self):
        assert MEASUREMENT_SUPPLY_V == pytest.approx(2.1)


class TestEnergyPerBit:
    def test_lower_at_higher_bitrate(self):
        """Backscatter amortises the static draw over more bits."""
        m = NodePowerModel()
        assert m.energy_per_bit_j(3_000.0) < m.energy_per_bit_j(100.0)

    def test_magnitude(self):
        # ~500 uW / 1 kbps = 500 nJ/bit.
        m = NodePowerModel()
        assert m.energy_per_bit_j(1_000.0) == pytest.approx(540e-9, rel=0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            NodePowerModel().energy_per_bit_j(0.0)
