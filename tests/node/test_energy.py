"""Tests for the cold-start / power-up energy engine."""

import pytest

from repro.circuits import EnergyHarvester
from repro.constants import POWER_UP_THRESHOLD_V
from repro.node import PowerState, PowerUpSimulator
from repro.piezo import Transducer


def make_sim():
    t = Transducer.from_cylinder_design()
    harvester = EnergyHarvester(t)
    return PowerUpSimulator(harvester), t.resonance_hz


#: Incident pressure comfortably above the ~310 Pa power-up threshold.
STRONG_PA = 600.0
WEAK_PA = 100.0


class TestCanPowerUp:
    def test_strong_field_powers_up(self):
        sim, f0 = make_sim()
        assert sim.can_power_up(STRONG_PA, f0)

    def test_weak_field_does_not(self):
        sim, f0 = make_sim()
        assert not sim.can_power_up(WEAK_PA, f0)

    def test_off_channel_does_not(self):
        sim, f0 = make_sim()
        assert not sim.can_power_up(STRONG_PA, f0 * 1.5)

    def test_threshold_behaviour_is_monotone(self):
        sim, f0 = make_sim()
        results = [sim.can_power_up(p, f0) for p in (50.0, 150.0, 300.0, 600.0, 1200.0)]
        # Once power-up becomes possible it stays possible.
        first_true = results.index(True) if True in results else len(results)
        assert all(results[first_true:])


class TestColdStart:
    def test_successful_cold_start(self):
        sim, f0 = make_sim()
        result = sim.cold_start(STRONG_PA, f0)
        assert result.powered_up
        assert 0.0 < result.time_to_power_up_s < 60.0
        assert result.equilibrium_voltage_v >= POWER_UP_THRESHOLD_V

    def test_failed_cold_start(self):
        sim, f0 = make_sim()
        result = sim.cold_start(WEAK_PA, f0, timeout_s=2.0)
        assert not result.powered_up
        assert result.time_to_power_up_s == float("inf")

    def test_stronger_field_charges_faster(self):
        sim, f0 = make_sim()
        slow = sim.cold_start(400.0, f0).time_to_power_up_s
        fast = sim.cold_start(1_200.0, f0).time_to_power_up_s
        assert fast < slow

    def test_invalid_threshold(self):
        t = Transducer.from_cylinder_design()
        with pytest.raises(ValueError):
            PowerUpSimulator(EnergyHarvester(t), threshold_v=0.0)


class TestBoundaries:
    def test_cap_exactly_at_threshold_powers_up_instantly(self):
        sim, f0 = make_sim()
        result = sim.cold_start(
            STRONG_PA, f0, start_voltage_v=POWER_UP_THRESHOLD_V
        )
        assert result.powered_up
        assert result.time_to_power_up_s == 0.0

    def test_warm_start_charges_faster_than_cold(self):
        sim, f0 = make_sim()
        cold = sim.cold_start(STRONG_PA, f0).time_to_power_up_s
        warm = sim.cold_start(STRONG_PA, f0, start_voltage_v=1.5).time_to_power_up_s
        assert 0.0 < warm < cold

    def test_warm_start_books_the_jump_as_adjustment(self):
        from repro.obs import EnergyLedger

        t = Transducer.from_cylinder_design()
        ledger = EnergyLedger(node=1)
        sim = PowerUpSimulator(EnergyHarvester(t), ledger=ledger)
        sim.cold_start(STRONG_PA, t.resonance_hz, start_voltage_v=1.5)
        balance = ledger.balance()
        assert balance["adjusted_j"] > 0  # the warm residue is by fiat
        assert abs(balance["error_fraction"]) < 1e-9

    def test_harvest_equals_idle_load_knife_edge(self):
        """Sustainability flips exactly where DC harvest crosses the
        IDLE draw — bisect the incident pressure to the knife-edge and
        check both sides."""
        sim, f0 = make_sim()
        supply_v = max(sim.threshold_v, sim.regulator.minimum_input_v)
        draw = sim.power_model.power_w(PowerState.IDLE, supply_v=supply_v)

        def surplus(p):
            return sim.harvester.operating_point(p, f0).dc_power_w - draw

        lo, hi = 50.0, 1_200.0
        assert surplus(lo) < 0 < surplus(hi)
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if surplus(mid) >= 0:
                hi = mid
            else:
                lo = mid
        # Just under the knife-edge: not sustainable; just over: is.
        assert not sim.sustainable(lo * (1 - 1e-6), f0, PowerState.IDLE)
        assert sim.sustainable(hi * (1 + 1e-6), f0, PowerState.IDLE)
        assert hi - lo < 1e-6


class TestLedgerIntegration:
    def make_ledgered_sim(self):
        from repro.obs import EnergyLedger

        t = Transducer.from_cylinder_design()
        ledger = EnergyLedger(node=7)
        return PowerUpSimulator(EnergyHarvester(t), ledger=ledger), ledger, t.resonance_hz

    def test_successful_cold_start_lands_in_idle(self):
        sim, ledger, f0 = self.make_ledgered_sim()
        assert sim.cold_start(STRONG_PA, f0).powered_up
        assert ledger.state is PowerState.IDLE
        assert ledger.harvested_j > 0
        assert ledger.total("harvested", PowerState.COLD) > 0

    def test_failed_cold_start_stays_cold(self):
        sim, ledger, f0 = self.make_ledgered_sim()
        assert not sim.cold_start(WEAK_PA, f0, timeout_s=2.0).powered_up
        assert ledger.state is PowerState.COLD

    def test_brownout_recovery_moves_cold_then_idle(self):
        sim, ledger, f0 = self.make_ledgered_sim()
        t = sim.brownout_recovery_time(STRONG_PA, f0)
        assert t is not None and t > 0
        assert ledger.state is PowerState.IDLE
        assert ledger.brownouts >= 0  # drill starts cold, no false brownout

    def test_duty_cycle_buckets_the_burst(self):
        sim, ledger, f0 = self.make_ledgered_sim()
        assert sim.run_duty_cycle(STRONG_PA, f0, backscatter_s=0.2, bitrate=1_000.0)
        assert ledger.state is PowerState.IDLE
        assert ledger.total("consumed", PowerState.BACKSCATTER) > 0
        assert abs(ledger.balance()["error_fraction"]) < 1e-9

    def test_cold_start_probe_tap_when_enabled(self):
        from repro.obs import ProbeRegistry, use_probes

        sim, ledger, f0 = self.make_ledgered_sim()
        with use_probes(ProbeRegistry(stages=["node.energy"])) as probes:
            result = sim.cold_start(STRONG_PA, f0)
            tap = probes.latest("node.energy")
        assert result.powered_up
        assert tap is not None
        assert tap.diagnostics["powered_up"] is True
        assert tap.samples > 0
        # The trajectory ends at (or just past) the threshold.
        assert tap.waveform[-1] >= POWER_UP_THRESHOLD_V


class TestSustainability:
    def test_idle_sustainable_in_strong_field(self):
        sim, f0 = make_sim()
        assert sim.sustainable(STRONG_PA, f0, PowerState.IDLE)

    def test_nothing_sustainable_in_weak_field(self):
        sim, f0 = make_sim()
        assert not sim.sustainable(WEAK_PA, f0, PowerState.BACKSCATTER, bitrate=1_000.0)

    def test_backscatter_needs_more_than_idle(self):
        """Find a field strength where IDLE holds but backscatter doesn't."""
        sim, f0 = make_sim()
        found = False
        for p in (500.0, 600.0, 700.0, 800.0, 900.0, 1_000.0, 1_200.0):
            idle_ok = sim.sustainable(p, f0, PowerState.IDLE)
            tx_ok = sim.sustainable(p, f0, PowerState.BACKSCATTER, bitrate=1_000.0)
            if idle_ok and not tx_ok:
                found = True
            assert not (tx_ok and not idle_ok)  # never the reverse
        assert found


class TestDutyCycle:
    def test_burst_completes_in_strong_field(self):
        sim, f0 = make_sim()
        assert sim.run_duty_cycle(
            STRONG_PA, f0, backscatter_s=0.2, bitrate=1_000.0
        )

    def test_burst_fails_without_power_up(self):
        sim, f0 = make_sim()
        assert not sim.run_duty_cycle(
            WEAK_PA, f0, backscatter_s=0.2, bitrate=1_000.0
        )

    def test_supercap_rides_through_burst(self):
        """The 1000 uF supercap powers a short reply even when harvesting
        alone cannot sustain continuous backscatter."""
        sim, f0 = make_sim()
        # Field strong enough to power up but not to sustain continuous TX.
        p = 500.0
        assert sim.can_power_up(p, f0)
        assert not sim.sustainable(p, f0, PowerState.BACKSCATTER, bitrate=1_000.0)
        assert sim.run_duty_cycle(p, f0, backscatter_s=0.1, bitrate=1_000.0)
