"""Tests for transducer directivity patterns."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.piezo.directivity import (
    DirectivityPattern,
    line_source_pattern,
    piston_pattern,
    wavelength_m,
)


class TestWavelength:
    def test_15khz_in_water(self):
        assert wavelength_m(15_000.0) == pytest.approx(0.0987, abs=0.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            wavelength_m(0.0)


class TestLineSource:
    def test_unity_at_broadside(self):
        assert line_source_pattern(0.0, 0.04, 15_000.0) == pytest.approx(1.0)

    def test_papers_cylinder_nearly_omni(self):
        """A 4 cm cylinder at 15 kHz (lambda ~ 10 cm) barely narrows:
        the paper's omnidirectionality claim quantified."""
        worst = line_source_pattern(math.pi / 2, 0.04, 15_000.0)
        assert worst > 0.7

    def test_long_array_is_directional(self):
        worst = line_source_pattern(math.pi / 2, 0.5, 15_000.0)
        assert worst < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            line_source_pattern(0.1, -1.0, 15_000.0)

    @given(theta=st.floats(-math.pi / 2, math.pi / 2))
    def test_bounded(self, theta):
        g = line_source_pattern(theta, 0.1, 15_000.0)
        assert 0.0 <= g <= 1.0 + 1e-9


class TestPiston:
    def test_unity_on_axis(self):
        assert piston_pattern(0.0, 0.1, 15_000.0) == pytest.approx(1.0)

    def test_large_piston_narrow_beam(self):
        wide = piston_pattern(math.radians(30.0), 0.02, 15_000.0)
        narrow = piston_pattern(math.radians(30.0), 0.2, 15_000.0)
        assert narrow < wide

    def test_first_null_location(self):
        """First null of a piston at sin(t) = 0.61 lambda / a."""
        a, f = 0.2, 15_000.0
        lam = wavelength_m(f)
        theta_null = math.asin(0.61 * lam / a)
        assert piston_pattern(theta_null, a, f) < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            piston_pattern(0.1, 0.0, 15_000.0)


class TestDirectivityPattern:
    def test_omni_everything_unity(self):
        p = DirectivityPattern(kind="omni")
        assert p.gain(1.0) == 1.0
        assert p.directivity_index_db() == pytest.approx(0.0, abs=0.01)
        assert p.beamwidth_deg() == 360.0

    def test_piston_di_positive(self):
        p = DirectivityPattern(kind="piston", characteristic_m=0.15)
        assert p.directivity_index_db() > 3.0

    def test_bigger_piston_higher_di(self):
        small = DirectivityPattern(kind="piston", characteristic_m=0.05)
        large = DirectivityPattern(kind="piston", characteristic_m=0.2)
        assert large.directivity_index_db() > small.directivity_index_db()

    def test_beamwidth_shrinks_with_size(self):
        small = DirectivityPattern(kind="piston", characteristic_m=0.08)
        large = DirectivityPattern(kind="piston", characteristic_m=0.25)
        assert large.beamwidth_deg() < small.beamwidth_deg()

    def test_line_pattern_kind(self):
        p = DirectivityPattern(kind="line", characteristic_m=0.04)
        assert p.gain(0.0) == pytest.approx(1.0)
        assert 0.0 <= p.directivity_index_db() < 3.0  # nearly omni

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            DirectivityPattern(kind="horn")

    def test_vectorised_gain(self):
        p = DirectivityPattern(kind="piston", characteristic_m=0.1)
        gains = p.gain(np.linspace(0, math.pi / 2, 10))
        assert gains.shape == (10,)
