"""Tests for the full transducer model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.piezo import ButterworthVanDyke, Transducer


def make_transducer(**kw) -> Transducer:
    return Transducer.from_cylinder_design(**kw)


class TestBasics:
    def test_default_resonance_near_15khz(self):
        t = make_transducer()
        assert t.resonance_hz == pytest.approx(15_000.0, rel=0.03)

    def test_impedance_delegates_to_bvd(self):
        t = make_transducer()
        assert t.impedance(15_000.0) == t.bvd.impedance(15_000.0)

    def test_invalid_backscatter_loss(self):
        bvd = ButterworthVanDyke.from_resonance(15e3, 9.0, 25e-9, 0.28)
        with pytest.raises(ValueError):
            Transducer(bvd=bvd, backscatter_loss=0.0)
        with pytest.raises(ValueError):
            Transducer(bvd=bvd, backscatter_loss=1.5)


class TestTransmit:
    def test_tvr_at_resonance(self):
        t = make_transducer(tvr_db=140.0)
        f = t.resonance_hz
        # 140 dB re uPa*m/V = 10 Pa*m/V.
        assert t.transmit_pressure_per_volt(f) == pytest.approx(10.0, rel=1e-6)

    def test_pressure_linear_in_voltage(self):
        t = make_transducer()
        f = t.resonance_hz
        assert float(t.transmit_pressure(100.0, f)) == pytest.approx(
            10.0 * float(t.transmit_pressure(10.0, f))
        )

    def test_off_resonance_weaker(self):
        t = make_transducer()
        assert float(t.transmit_pressure(1.0, t.resonance_hz)) > float(
            t.transmit_pressure(1.0, t.resonance_hz * 1.3)
        )

    def test_source_level_reasonable(self):
        t = make_transducer(tvr_db=140.0)
        sl = t.source_level_db(350.0, t.resonance_hz)
        # 350 V on a 140 dB TVR projector: ~188 dB re uPa @ 1 m.
        assert 180.0 < sl < 195.0

    def test_source_level_zero_drive(self):
        t = make_transducer()
        assert t.source_level_db(0.0, t.resonance_hz) == float("-inf")


class TestReceive:
    def test_sensitivity_at_resonance(self):
        t = make_transducer(ocv_db=-178.0)
        v_per_pa = t.open_circuit_voltage_per_pascal(t.resonance_hz)
        assert v_per_pa == pytest.approx(10.0 ** (-178.0 / 20.0) * 1e6, rel=1e-6)

    def test_open_circuit_voltage_scales(self):
        t = make_transducer()
        f = t.resonance_hz
        assert float(t.open_circuit_voltage(200.0, f)) == pytest.approx(
            2.0 * float(t.open_circuit_voltage(100.0, f))
        )

    def test_available_power_positive_and_peaks_at_resonance(self):
        t = make_transducer()
        p_res = t.available_power_w(100.0, t.resonance_hz)
        p_off = t.available_power_w(100.0, t.resonance_hz * 1.2)
        assert p_res > p_off > 0.0

    def test_available_power_formula(self):
        t = make_transducer()
        f = t.resonance_hz
        v = float(t.open_circuit_voltage(50.0, f))
        r_s = float(np.real(t.impedance(f)))
        assert t.available_power_w(50.0, f) == pytest.approx(
            v**2 / 2.0 / (4.0 * r_s)
        )


class TestBackscatter:
    def test_short_circuit_full_reflection(self):
        t = make_transducer()
        f = t.resonance_hz
        gamma = t.reflection_coefficient(0.0, f)
        assert abs(gamma) == pytest.approx(1.0, rel=1e-9)

    def test_conjugate_match_absorbs(self):
        t = make_transducer()
        f = t.resonance_hz
        z_match = np.conjugate(t.impedance(f))
        gamma = t.reflection_coefficient(z_match, f)
        assert abs(gamma) < 1e-9

    def test_modulation_depth_positive_with_match(self):
        t = make_transducer()
        f = t.resonance_hz
        z_match = np.conjugate(t.impedance(f))
        depth = t.modulation_depth(z_match, f)
        assert depth > 0.5  # short vs matched: |Gamma| difference ~1

    def test_modulation_depth_falls_off_resonance(self):
        """Sec. 3.3.2 footnote: modulation depth decreases away from
        resonance because matching and efficiency degrade."""
        t = make_transducer()
        f0 = t.resonance_hz
        z_match = np.conjugate(t.impedance(f0))  # matched at f0 only
        on = t.modulation_depth(z_match, f0)
        off = t.modulation_depth(z_match, f0 * 1.2)
        assert off < on

    def test_reflected_pressure_includes_loss(self):
        t = make_transducer(backscatter_loss=0.7)
        f = t.resonance_hz
        p_ref = t.reflected_pressure(100.0, 0.0, f)
        assert abs(complex(p_ref)) == pytest.approx(70.0, rel=0.01)

    @given(r=st.floats(1.0, 1e5), x=st.floats(-1e5, 1e5))
    def test_passivity(self, r, x):
        """|Gamma| <= 1 for any passive load (Re Z_L >= 0)."""
        t = make_transducer()
        gamma = t.reflection_coefficient(complex(r, x), t.resonance_hz)
        assert abs(gamma) <= 1.0 + 1e-9
