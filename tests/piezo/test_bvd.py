"""Tests for the Butterworth-Van Dyke model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.piezo import BVDParameters, ButterworthVanDyke


def make_bvd(fs=15_000.0, q=9.0, c0=25e-9, k=0.28):
    return ButterworthVanDyke.from_resonance(fs, q, c0, k)


class TestConstruction:
    def test_from_resonance_roundtrip(self):
        bvd = make_bvd()
        assert bvd.series_resonance_hz == pytest.approx(15_000.0)
        assert bvd.quality_factor == pytest.approx(9.0)
        assert bvd.effective_coupling == pytest.approx(0.28, rel=1e-6)
        assert bvd.params.c0 == 25e-9

    def test_parallel_above_series(self):
        bvd = make_bvd()
        assert bvd.parallel_resonance_hz > bvd.series_resonance_hz

    def test_bandwidth(self):
        bvd = make_bvd(fs=15_000.0, q=10.0)
        assert bvd.bandwidth_hz == pytest.approx(1_500.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ButterworthVanDyke.from_resonance(-1.0, 9.0, 25e-9, 0.3)
        with pytest.raises(ValueError):
            ButterworthVanDyke.from_resonance(15e3, 0.0, 25e-9, 0.3)
        with pytest.raises(ValueError):
            ButterworthVanDyke.from_resonance(15e3, 9.0, 25e-9, 1.2)
        with pytest.raises(ValueError):
            ButterworthVanDyke.from_resonance(15e3, 9.0, -1e-9, 0.3)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BVDParameters(c0=0.0, r_m=1.0, l_m=1.0, c_m=1.0)

    @given(
        fs=st.floats(5_000.0, 50_000.0),
        q=st.floats(2.0, 100.0),
        k=st.floats(0.05, 0.6),
    )
    def test_roundtrip_property(self, fs, q, k):
        bvd = ButterworthVanDyke.from_resonance(fs, q, 25e-9, k)
        assert bvd.series_resonance_hz == pytest.approx(fs, rel=1e-9)
        assert bvd.quality_factor == pytest.approx(q, rel=1e-9)
        assert bvd.effective_coupling == pytest.approx(k, rel=1e-6)


class TestImpedance:
    def test_motional_minimum_at_series_resonance(self):
        bvd = make_bvd()
        freqs = np.linspace(10e3, 20e3, 2001)
        z = np.abs(bvd.motional_impedance(freqs))
        f_min = freqs[np.argmin(z)]
        assert f_min == pytest.approx(15_000.0, abs=10.0)

    def test_motional_impedance_at_resonance_is_rm(self):
        bvd = make_bvd()
        z = bvd.motional_impedance(bvd.series_resonance_hz)
        assert z == pytest.approx(bvd.params.r_m, rel=1e-6)

    def test_terminal_impedance_maximum_near_parallel_resonance(self):
        bvd = make_bvd()
        freqs = np.linspace(14e3, 17e3, 4001)
        z = np.abs(bvd.impedance(freqs))
        f_max = freqs[np.argmax(z)]
        # With a low in-water Q the loss shifts the |Z| peak slightly above
        # the lossless anti-resonance, so allow 5%.
        assert f_max == pytest.approx(bvd.parallel_resonance_hz, rel=0.05)
        assert f_max > bvd.series_resonance_hz

    def test_capacitive_far_below_resonance(self):
        bvd = make_bvd()
        f = 1_000.0
        z = bvd.impedance(f)
        expected = 1.0 / (
            2j * np.pi * f * (bvd.params.c0 + bvd.params.c_m)
        )
        assert z.imag == pytest.approx(expected.imag, rel=0.05)
        assert z.imag < 0

    def test_scalar_and_array_agree(self):
        bvd = make_bvd()
        z_scalar = bvd.impedance(15_000.0)
        z_array = bvd.impedance(np.array([15_000.0]))
        assert isinstance(z_scalar, complex)
        assert z_array[0] == pytest.approx(z_scalar)

    def test_admittance_inverse(self):
        bvd = make_bvd()
        f = 14_500.0
        assert bvd.admittance(f) * bvd.impedance(f) == pytest.approx(1.0)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            make_bvd().impedance(0.0)

    def test_positive_real_part_everywhere(self):
        bvd = make_bvd()
        freqs = np.linspace(1e3, 50e3, 500)
        assert np.all(np.real(bvd.impedance(freqs)) > 0)


class TestResonanceResponse:
    def test_unity_at_resonance(self):
        bvd = make_bvd()
        assert bvd.resonance_response(bvd.series_resonance_hz) == pytest.approx(1.0)

    def test_half_power_at_band_edges(self):
        bvd = make_bvd(fs=15_000.0, q=10.0)
        bw = bvd.bandwidth_hz
        # At f_s +- bw/2 the response is ~1/sqrt(2).
        edge = bvd.resonance_response(15_000.0 + bw / 2.0)
        assert edge == pytest.approx(1.0 / np.sqrt(2.0), rel=0.05)

    def test_symmetric_in_log_frequency(self):
        bvd = make_bvd()
        fs = bvd.series_resonance_hz
        assert bvd.resonance_response(fs * 1.2) == pytest.approx(
            bvd.resonance_response(fs / 1.2)
        )

    def test_higher_q_narrower(self):
        low_q = make_bvd(q=5.0)
        high_q = make_bvd(q=50.0)
        f_off = 16_000.0
        assert high_q.resonance_response(f_off) < low_q.resonance_response(f_off)

    @given(f=st.floats(1_000.0, 60_000.0))
    def test_bounded(self, f):
        r = make_bvd().resonance_response(f)
        assert 0.0 < r <= 1.0
