"""Tests for materials database and cylinder design."""

import pytest
from hypothesis import given, strategies as st

from repro.constants import CYLINDER_IN_AIR_RESONANCE_HZ
from repro.piezo import MATERIALS, PZT4, PZT5A, design_cylinder_transducer
from repro.piezo.cylinder import radial_resonance_hz, water_loading_factor
from repro.piezo.materials import PiezoMaterial


class TestMaterials:
    def test_database_contains_both(self):
        assert "PZT-4" in MATERIALS and "PZT-5A" in MATERIALS

    def test_soft_pzt_more_sensitive(self):
        # Soft PZT has larger |d31| (receive sensitivity) but lower Q.
        assert abs(PZT5A.d31) > abs(PZT4.d31)
        assert PZT5A.q_mechanical < PZT4.q_mechanical

    def test_bar_sound_speed_in_ceramic_range(self):
        # PZT bar speeds are ~2800-3400 m/s.
        for m in (PZT4, PZT5A):
            assert 2500.0 < m.bar_sound_speed < 3600.0

    def test_epsilon_t(self):
        assert PZT4.epsilon_t == pytest.approx(1300.0 * 8.8541878128e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            PiezoMaterial(
                name="bad", d31=-1e-12, d33=1e-12, epsilon_r=1000.0,
                s11_e=1e-11, k31=1.5, k33=0.7, q_mechanical=100.0,
                density=7500.0,
            )
        with pytest.raises(ValueError):
            PiezoMaterial(
                name="bad", d31=-1e-12, d33=1e-12, epsilon_r=1000.0,
                s11_e=1e-11, k31=0.3, k33=0.7, q_mechanical=-1.0,
                density=7500.0,
            )


class TestRadialResonance:
    def test_17khz_needs_3cm_radius(self):
        # The ring-frequency formula should give a radius of a few cm for
        # the paper's 17 kHz part.
        a = PZT4.bar_sound_speed / (2.0 * 3.14159265 * 17_000.0)
        assert 0.02 < a < 0.04
        assert radial_resonance_hz(PZT4, a) == pytest.approx(17_000.0, rel=1e-3)

    def test_inverse_with_radius(self):
        assert radial_resonance_hz(PZT4, 0.02) > radial_resonance_hz(PZT4, 0.04)

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError):
            radial_resonance_hz(PZT4, 0.0)


class TestWaterLoading:
    def test_positive(self):
        assert water_loading_factor(PZT4, 0.03, 0.0035) > 0.0

    def test_thicker_wall_less_loading(self):
        thin = water_loading_factor(PZT4, 0.03, 0.002)
        thick = water_loading_factor(PZT4, 0.03, 0.006)
        assert thin > thick

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            water_loading_factor(PZT4, 0.03, 0.0)
        with pytest.raises(ValueError):
            water_loading_factor(PZT4, 0.03, 0.003, radiation_mass_coefficient=-1.0)


class TestDesignCylinder:
    def test_paper_part_lands_near_15khz_in_water(self):
        """The paper's 17 kHz in-air cylinder operates at ~15 kHz in water."""
        d = design_cylinder_transducer()
        assert d.in_air_resonance_hz == pytest.approx(CYLINDER_IN_AIR_RESONANCE_HZ)
        assert d.in_water_resonance_hz == pytest.approx(15_000.0, rel=0.03)

    def test_capacitance_order_of_magnitude(self):
        # Tens of nF for a cylinder of this size.
        d = design_cylinder_transducer()
        assert 5e-9 < d.clamped_capacitance_f < 100e-9

    def test_bvd_conversion_consistent(self):
        d = design_cylinder_transducer()
        bvd = d.to_bvd()
        assert bvd.series_resonance_hz == pytest.approx(d.in_water_resonance_hz)
        assert bvd.quality_factor == pytest.approx(d.in_water_q)

    def test_geometry_driven_design(self):
        d = design_cylinder_transducer(target_in_air_resonance_hz=None)
        assert d.in_air_resonance_hz > 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            design_cylinder_transducer(outer_radius_m=-1.0)
        with pytest.raises(ValueError):
            design_cylinder_transducer(coupling_derating=0.0)
        with pytest.raises(ValueError):
            design_cylinder_transducer(target_in_air_resonance_hz=-5.0)

    @given(f_air=st.floats(8_000.0, 40_000.0))
    def test_water_resonance_below_air_resonance(self, f_air):
        d = design_cylinder_transducer(target_in_air_resonance_hz=f_air)
        assert d.in_water_resonance_hz < d.in_air_resonance_hz

    def test_effective_coupling_below_material_coupling(self):
        d = design_cylinder_transducer()
        assert d.effective_coupling < d.material.k31
