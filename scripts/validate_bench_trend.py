#!/usr/bin/env python
"""Commit-check for ``benchmarks/results/bench_trend.csv``.

The trend file is append-only: ``repro bench --trend-out`` refuses to
append under a stale header, so a row that reaches the repository must
match the canonical column layout exactly.  This validator is the CI
(lint job) end of that contract — it fails when:

* the header is not the canonical layout (columns renamed, reordered,
  or dropped — e.g. a row written by a pre-batch-engine checkout);
* a row has the wrong field count or a non-numeric field;
* the ``smoke`` column is not 0/1;
* a header line reappears mid-file (two files concatenated).

Usage: ``python scripts/validate_bench_trend.py [path]`` (defaults to
the committed trend file; exits non-zero with one line per problem).
"""

from __future__ import annotations

import pathlib
import sys

CANONICAL_HEADER = (
    "smoke,nodes,rounds,seed,parallel,sequential_s,cached_s,"
    "parallel_s,batch_s,speedup_cached,speedup_total,speedup_batch,"
    "frac_pwm_synthesis,frac_downlink_propagation,frac_node,"
    "frac_uplink_propagation,frac_hydrophone_dsp"
)

DEFAULT_PATH = pathlib.Path("benchmarks/results/bench_trend.csv")


def validate(path: pathlib.Path) -> list[str]:
    """All layout problems in ``path`` (empty list = valid)."""
    if not path.exists():
        return [f"{path}: missing"]
    text = path.read_text()
    if not text.endswith("\n"):
        return [f"{path}: missing trailing newline"]
    lines = text.splitlines()
    if not lines:
        return [f"{path}: empty"]
    problems = []
    if lines[0] != CANONICAL_HEADER:
        problems.append(
            f"{path}:1: header does not match the canonical layout "
            f"(got {lines[0]!r})"
        )
        return problems
    width = len(CANONICAL_HEADER.split(","))
    for lineno, line in enumerate(lines[1:], start=2):
        if line == CANONICAL_HEADER:
            problems.append(f"{path}:{lineno}: duplicate header row")
            continue
        fields = line.split(",")
        if len(fields) != width:
            problems.append(
                f"{path}:{lineno}: {len(fields)} fields (expected {width})"
            )
            continue
        for col, value in zip(CANONICAL_HEADER.split(","), fields):
            try:
                number = float(value)
            except ValueError:
                problems.append(
                    f"{path}:{lineno}: column {col} is not numeric "
                    f"({value!r})"
                )
                break
            if col == "smoke" and number not in (0.0, 1.0):
                problems.append(
                    f"{path}:{lineno}: smoke must be 0 or 1 (got {value})"
                )
                break
    return problems


def main(argv: list[str]) -> int:
    path = pathlib.Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    problems = validate(path)
    for problem in problems:
        print(problem)
    if not problems:
        rows = len(path.read_text().splitlines()) - 1
        print(f"{path}: OK ({rows} rows, canonical header)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
